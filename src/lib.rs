//! Facade crate for the ICDCS 2003 content-based pub-sub reproduction.
//!
//! Re-exports the public API of every workspace crate so applications can
//! depend on a single crate:
//!
//! * [`geom`] — event-space geometry (points, half-open rectangles, grids);
//! * [`stree`] — the S-tree spatial index and baseline indexes;
//! * [`netsim`] — transit-stub network simulation and multicast cost models;
//! * [`workload`] — stock-market subscription/publication generators;
//! * [`clustering`] — grid-based subscription clustering (Forgy k-means,
//!   pairwise grouping, minimum spanning tree);
//! * [`parallel`] — the persistent worker pool and deterministic
//!   block-cyclic fan-out behind batched matching and publishing;
//! * [`core`] — the matcher, the dynamic distribution-method scheme and the
//!   end-to-end [`core::Broker`];
//! * [`server`] — the staged serving front-end (transport-in / pipeline /
//!   transport-out) with admission control and a TCP wire protocol.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the ten-line happy path: generate a
//! topology and a workload, cluster subscriptions into multicast groups,
//! then publish events and let the broker decide unicast vs multicast.

#![deny(missing_docs)]

pub use pubsub_clustering as clustering;
pub use pubsub_core as core;
pub use pubsub_geom as geom;
pub use pubsub_netsim as netsim;
pub use pubsub_parallel as parallel;
pub use pubsub_server as server;
pub use pubsub_stree as stree;
pub use pubsub_workload as workload;

/// The types most applications touch, importable in one line:
/// `use pubsub::prelude::*;`.
pub mod prelude {
    pub use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
    pub use pubsub_core::{
        Broker, Decision, DeliveryMode, EventBuilder, Predicate, SubscriptionSpec,
    };
    pub use pubsub_geom::{Interval, Point, Rect, Space};
    pub use pubsub_netsim::{NodeId, TransitStubConfig};
    pub use pubsub_server::{ServingConfig, StagedServer};
    pub use pubsub_workload::{stock_space, Modes, SubscriptionConfig};
}
