//! The zero-allocation guarantee of the fused batch pipeline: once the
//! per-worker states are warm, `publish_batch_stats` in dense mode
//! performs **no heap allocation at all** — not per event, not per
//! batch — on both the inline and the pooled dispatch path.
//!
//! Verified with a counting global allocator. This test lives in its own
//! integration-test file so it owns the process: the only threads that
//! can allocate while the counter is armed are the ones under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pubsub::core::Broker;
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::parallel::WorkerPool;

/// Counts every `alloc`/`realloc`/`alloc_zeroed` (from any thread) while
/// armed; delegates all work to the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the tests in this file: the armed counter is global, so
/// two tests measuring at once would count each other's allocations.
static COUNTER_OWNER: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` with the allocation counter armed; returns how many heap
/// allocations happened inside.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), result)
}

#[test]
fn warm_batch_publish_is_allocation_free() {
    let _serial = COUNTER_OWNER.lock().unwrap();
    let pool = Arc::new(WorkerPool::new(2));
    let topo = TransitStubConfig::tiny().generate(11).unwrap();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let mut broker = Broker::builder(topo, space)
        .worker_pool(Arc::clone(&pool))
        .subscription(
            nodes[0],
            Rect::from_corners(&[0.0, 0.0], &[6.0, 6.0]).unwrap(),
        )
        .subscription(
            nodes[1],
            Rect::from_corners(&[2.0, 1.0], &[9.0, 8.0]).unwrap(),
        )
        .subscription(
            nodes[2],
            Rect::from_corners(&[5.0, 4.0], &[10.0, 10.0]).unwrap(),
        )
        .build()
        .unwrap();
    // Several blocks' worth of events so the pooled path actually fans out.
    let events: Vec<Point> = (0..256)
        .map(|i| Point::new(vec![(i % 10) as f64 + 0.3, ((i * 7) % 10) as f64 + 0.1]).unwrap())
        .collect();

    for threads in [1usize, 2] {
        // Warm-up: grows arenas, creates SPT rows, fills the scheme memo.
        for _ in 0..2 {
            broker.publish_batch_stats(&events, Some(threads)).unwrap();
        }
        let growths_before = broker.pipeline_counters().arena_growths;
        let before = broker.report().messages;

        let (allocations, report) =
            count_allocations(|| broker.publish_batch_stats(&events, Some(threads)).unwrap());

        assert_eq!(report.messages, before + events.len() as u64);
        assert_eq!(
            broker.pipeline_counters().arena_growths,
            growths_before,
            "warm states must not regrow (threads = {threads})"
        );
        assert_eq!(
            allocations, 0,
            "steady-state publish_batch_stats must not allocate (threads = {threads})"
        );
    }
}

/// The durable subscription journal must be zero-cost off the control
/// path: it hooks subscribe/unsubscribe/recompile only, so even a
/// broker *with* a journal attached keeps the warm publish path
/// allocation-free — and a journal-less broker (the default, exercised
/// by the test above) cannot regress by construction.
#[test]
fn journaled_broker_publish_path_is_still_allocation_free() {
    let _serial = COUNTER_OWNER.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("pubsub-alloc-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let topo = TransitStubConfig::tiny().generate(11).unwrap();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let mut broker = Broker::builder(topo, space)
        .journal(pubsub::core::JournalConfig::new(&dir))
        .subscription(
            nodes[0],
            Rect::from_corners(&[0.0, 0.0], &[6.0, 6.0]).unwrap(),
        )
        .subscription(
            nodes[1],
            Rect::from_corners(&[2.0, 1.0], &[9.0, 8.0]).unwrap(),
        )
        .build()
        .unwrap();
    let events: Vec<Point> = (0..256)
        .map(|i| Point::new(vec![(i % 10) as f64 + 0.3, ((i * 7) % 10) as f64 + 0.1]).unwrap())
        .collect();

    for _ in 0..2 {
        broker.publish_batch_stats(&events, Some(1)).unwrap();
    }
    let wal_before = broker.journal().unwrap().wal_len();
    let before = broker.report().messages;

    let (allocations, report) =
        count_allocations(|| broker.publish_batch_stats(&events, Some(1)).unwrap());

    assert_eq!(report.messages, before + events.len() as u64);
    assert_eq!(
        broker.journal().unwrap().wal_len(),
        wal_before,
        "publishing must not touch the journal"
    );
    assert_eq!(
        allocations, 0,
        "the journal must stay off the publish path entirely"
    );
    drop(broker);
    let _ = std::fs::remove_dir_all(&dir);
}
