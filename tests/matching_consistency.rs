//! Integration tests for the matching layer on the real workload: every
//! index agrees with a brute-force scan of the clamped subscriptions, and
//! the broker's matched set is exactly the brute-force interested set.

use pubsub::core::{Broker, Decision};
use pubsub::geom::{Point, Rect};
use pubsub::netsim::{NodeId, TransitStubConfig};
use pubsub::stree::{
    CountingIndex, CurveKind, Entry, EntryId, LinearScan, PackedConfig, PackedRTree, STree,
    STreeConfig, SpatialIndex,
};
use pubsub::workload::{stock_space, Modes, PlacedSubscription, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn workload() -> (Vec<PlacedSubscription>, Vec<Point>) {
    let topology = TransitStubConfig::riabov().generate(11).unwrap();
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, 12)
        .unwrap();
    let model = Modes::Four.model();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let events = (0..2000).map(|_| model.sample(&mut rng)).collect();
    (placed, events)
}

#[test]
fn every_index_agrees_with_brute_force_on_the_paper_workload() {
    let (placed, events) = workload();
    let space = stock_space();
    let entries: Vec<Entry> = placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(space.clamp(&p.rect), EntryId(i as u32)))
        .collect();

    let stree = STree::build(entries.clone(), STreeConfig::default()).unwrap();
    stree.validate().unwrap();
    let stree_small = STree::build(entries.clone(), STreeConfig::new(4, 0.25).unwrap()).unwrap();
    stree_small.validate().unwrap();
    let hilbert = PackedRTree::build(entries.clone(), PackedConfig::hilbert()).unwrap();
    let morton = PackedRTree::build(
        entries.clone(),
        PackedConfig::new(16, CurveKind::Morton, 8).unwrap(),
    )
    .unwrap();
    let counting = CountingIndex::new(entries.clone()).unwrap();
    let oracle = LinearScan::new(entries).unwrap();

    let indexes: [(&str, &dyn SpatialIndex); 5] = [
        ("stree-default", &stree),
        ("stree-m4", &stree_small),
        ("hilbert", &hilbert),
        ("morton", &morton),
        ("counting", &counting),
    ];
    for event in &events {
        let mut want = oracle.query_point(event);
        want.sort();
        for (name, index) in indexes {
            let mut got = index.query_point(event);
            got.sort();
            assert_eq!(got, want, "{name} at {event:?}");
        }
    }
}

#[test]
fn broker_interest_matches_brute_force_over_raw_subscriptions() {
    let (placed, events) = workload();
    let topology = TransitStubConfig::riabov().generate(11).unwrap();
    let space = stock_space();
    let model = Modes::Four.model();
    let mut broker = Broker::builder(topology, space.clone())
        .subscriptions(placed.iter().map(|p| (p.node, p.rect.clone())))
        .density(move |r| model.mass(r))
        .build()
        .unwrap();

    for event in events.iter().take(500) {
        let outcome = broker.publish(event).unwrap();
        // Brute force over the *clamped* subscriptions (the broker indexes
        // clamped geometry; events outside the space bounds match nothing,
        // which is the documented contract).
        let mut want: Vec<NodeId> = placed
            .iter()
            .filter(|p| space.clamp(&p.rect).contains_point(event))
            .map(|p| p.node)
            .collect();
        want.sort();
        want.dedup();
        assert_eq!(outcome.interested, want, "event {event:?}");
        // Drop decisions coincide with empty interest.
        assert_eq!(outcome.decision == Decision::Drop, want.is_empty());
    }
}

#[test]
fn group_containment_invariant_holds() {
    // The paper's §4 claim: "all subscribers interested in receiving
    // message ω are in the group S_q" — every matched subscriber of an
    // event falling in region S_q must be a member of M_q.
    let (placed, events) = workload();
    let topology = TransitStubConfig::riabov().generate(11).unwrap();
    let model = Modes::Four.model();
    let mut broker = Broker::builder(topology, stock_space())
        .subscriptions(placed.iter().map(|p| (p.node, p.rect.clone())))
        .density(move |r| model.mass(r))
        .build()
        .unwrap();

    let mut checked = 0;
    for event in &events {
        let outcome = broker.publish(event).unwrap();
        if let Some(q) = broker.partition().group_of_point(event) {
            let members = broker.groups().members(q);
            for node in &outcome.interested {
                assert!(
                    members.binary_search(node).is_ok(),
                    "interested node {node} missing from group {q}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 100, "the workload must exercise group regions");
}

#[test]
fn unclamped_matching_differs_only_outside_the_space() {
    // Sanity check on the clamping contract: for events inside the space
    // bounds, clamped and raw subscriptions match identically.
    let (placed, events) = workload();
    let space = stock_space();
    for event in &events {
        if !space.contains(event) {
            continue;
        }
        for p in placed.iter().take(100) {
            assert_eq!(
                p.rect.contains_point(event),
                space.clamp(&p.rect).contains_point(event),
                "clamping changed membership inside the space: {:?} {event:?}",
                p.rect
            );
        }
    }
}

#[test]
fn counting_index_matches_unclamped_brute_force() {
    // The counting index takes the *raw* (possibly unbounded)
    // subscriptions — verify it against brute force over the raw rects.
    let (placed, events) = workload();
    let entries: Vec<Entry> = placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(p.rect.clone(), EntryId(i as u32)))
        .collect();
    let idx = CountingIndex::new(entries).unwrap();
    for event in events.iter().take(500) {
        let mut got = idx.query_point(event);
        got.sort();
        let want: Vec<EntryId> = placed
            .iter()
            .enumerate()
            .filter(|(_, p)| p.rect.contains_point(event))
            .map(|(i, _)| EntryId(i as u32))
            .collect();
        assert_eq!(got, want, "event {event:?}");
    }
}

#[test]
fn region_queries_agree_across_indexes() {
    let (placed, _) = workload();
    let space = stock_space();
    let entries: Vec<Entry> = placed
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(space.clamp(&p.rect), EntryId(i as u32)))
        .collect();
    let stree = STree::build(entries.clone(), STreeConfig::default()).unwrap();
    let hilbert = PackedRTree::build(entries.clone(), PackedConfig::hilbert()).unwrap();
    let oracle = LinearScan::new(entries).unwrap();

    let queries = [
        Rect::from_corners(&[-1.0, 0.0, 5.0, 0.0], &[2.0, 10.0, 12.0, 15.0]).unwrap(),
        Rect::from_corners(&[0.0, 8.0, 8.0, 8.0], &[1.0, 10.0, 10.0, 10.0]).unwrap(),
        Rect::from_corners(&[-2.0, -15.0, -15.0, -15.0], &[4.0, 35.0, 35.0, 35.0]).unwrap(),
    ];
    for q in &queries {
        let mut want = oracle.query_region(q);
        want.sort();
        let mut a = stree.query_region(q);
        a.sort();
        let mut b = hilbert.query_region(q);
        b.sort();
        assert_eq!(a, want);
        assert_eq!(b, want);
    }
}
