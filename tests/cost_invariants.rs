//! Integration tests for the cost model: per-message invariants that must
//! hold for every publication regardless of configuration.

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, Decision, DeliveryMode};
use pubsub::geom::Point;
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn broker(threshold: f64, delivery: DeliveryMode) -> Broker {
    let topology = TransitStubConfig::riabov().generate(31).unwrap();
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, 32)
        .unwrap();
    let model = Modes::One.model();
    Broker::builder(topology, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .threshold(threshold)
        .delivery_mode(delivery)
        .density(move |r| model.mass(r))
        .build()
        .unwrap()
}

fn events(n: usize) -> Vec<Point> {
    let model = Modes::One.model();
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    (0..n).map(|_| model.sample(&mut rng)).collect()
}

#[test]
fn per_message_invariants_dense_mode() {
    let mut b = broker(0.15, DeliveryMode::DenseMode);
    for e in events(2000) {
        let out = b.publish(&e).unwrap();
        // The ideal (dedicated group) cost never exceeds unicast.
        assert!(out.costs.ideal <= out.costs.unicast + 1e-9);
        // No scheme can beat the ideal.
        assert!(out.costs.scheme >= out.costs.ideal - 1e-9);
        // Decisions price correctly.
        match out.decision {
            Decision::Drop => {
                assert!(out.interested.is_empty());
                assert_eq!(out.costs.scheme, 0.0);
                assert_eq!(out.costs.unicast, 0.0);
            }
            Decision::Unicast { .. } => {
                assert!((out.costs.scheme - out.costs.unicast).abs() < 1e-9);
                assert!(!out.interested.is_empty());
            }
            Decision::Multicast { group } => {
                // Multicasting a superset costs at least the ideal tree.
                assert!(!out.interested.is_empty());
                assert!(group < b.groups().len());
            }
            Decision::PartialMulticast { .. } => {
                panic!("partial multicast requires an installed fault plan")
            }
        }
        // All costs are finite (the topology is connected).
        assert!(out.costs.scheme.is_finite());
        assert!(out.costs.unicast.is_finite());
        assert!(out.costs.ideal.is_finite());
    }
}

#[test]
fn per_message_invariants_application_level() {
    let mut b = broker(0.15, DeliveryMode::ApplicationLevel);
    for e in events(300) {
        let out = b.publish(&e).unwrap();
        assert!(out.costs.ideal <= out.costs.unicast + 1e-9);
        assert!(out.costs.scheme >= out.costs.ideal - 1e-9);
        assert!(out.costs.scheme.is_finite());
    }
}

#[test]
fn static_scheme_never_unicasts_inside_group_regions() {
    let mut b = broker(0.0, DeliveryMode::DenseMode);
    for e in events(1000) {
        let out = b.publish(&e).unwrap();
        if let Decision::Unicast { reason } = out.decision {
            // With t = 0 the only unicast reason is the catch-all region.
            assert_eq!(reason, pubsub::core::UnicastReason::CatchAll);
        }
    }
}

#[test]
fn report_totals_match_per_message_sums() {
    let mut b = broker(0.15, DeliveryMode::DenseMode);
    let evs = events(500);
    let mut scheme = 0.0;
    let mut unicast = 0.0;
    let mut ideal = 0.0;
    for e in &evs {
        let out = b.publish(e).unwrap();
        scheme += out.costs.scheme;
        unicast += out.costs.unicast;
        ideal += out.costs.ideal;
    }
    let r = b.report();
    assert!((r.scheme_cost - scheme).abs() < 1e-6);
    assert!((r.unicast_cost - unicast).abs() < 1e-6);
    assert!((r.ideal_cost - ideal).abs() < 1e-6);
    assert_eq!(r.messages, 500);
}

#[test]
fn wasted_deliveries_only_from_multicasts() {
    let mut b = broker(1.0, DeliveryMode::DenseMode);
    for e in events(500) {
        b.publish(&e).unwrap();
    }
    // t = 1: multicast happens only for 100%-interested groups, so waste
    // must be zero.
    assert_eq!(b.report().wasted_deliveries, 0);
}
