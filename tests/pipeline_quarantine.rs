//! Worker-panic containment in the batch pipeline: a worker that dies
//! mid-batch is quarantined, its blocks are recomputed inline, and the
//! batch output stays bit-identical to an undisturbed run.

use std::sync::Arc;

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, DeliveryMode};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::parallel::WorkerPool;

fn build(mode: DeliveryMode) -> Broker {
    let topo = TransitStubConfig::tiny().generate(7).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(0.15)
        .delivery_mode(mode)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
        .grid_cells(4);
    for (i, &n) in nodes.iter().enumerate().take(8) {
        let r = if i % 2 == 0 {
            Rect::from_corners(&[0.0, 0.0], &[5.0, 10.0]).unwrap()
        } else {
            Rect::from_corners(&[5.0, 0.0], &[10.0, 10.0]).unwrap()
        };
        b = b.subscription(n, r);
    }
    b.build().unwrap()
}

fn events(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let x = (i * 37 % 100) as f64 / 10.0;
            let y = (i * 61 % 100) as f64 / 10.0;
            Point::new(vec![x, y]).unwrap()
        })
        .collect()
}

#[test]
fn quarantined_worker_output_is_bit_identical() {
    for mode in [DeliveryMode::DenseMode, DeliveryMode::ApplicationLevel] {
        let mut clean = build(mode);
        let mut trapped = build(mode);
        // Inject real 2-thread pools: the broker never spawns its own
        // pool on a single-core host, and this test must fan out.
        clean.set_worker_pool(Arc::new(WorkerPool::new(2)));
        trapped.set_worker_pool(Arc::new(WorkerPool::new(2)));
        // Long enough that a 2-worker batch takes the pooled path.
        let batch = events(200);

        trapped.arm_worker_panic(1);
        let clean_out = clean.publish_batch(&batch, Some(2)).unwrap();
        let trapped_out = trapped.publish_batch(&batch, Some(2)).unwrap();

        assert_eq!(trapped.pipeline_counters().pooled_batches, 1);
        assert_eq!(trapped.pipeline_counters().quarantined_workers, 1);
        assert_eq!(trapped.pipeline_counters().retried_batches, 1);
        assert_eq!(clean.pipeline_counters().quarantined_workers, 0);

        assert_eq!(clean_out.len(), trapped_out.len());
        for (a, b) in clean_out.iter().zip(&trapped_out) {
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.matched_subscriptions, b.matched_subscriptions);
            assert_eq!(a.interested, b.interested);
            assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
            assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
            assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
        }
        assert_eq!(clean.report(), trapped.report());

        // The pool survives the quarantine: a follow-up batch is clean
        // and still bit-identical.
        let clean_again = clean.publish_batch(&batch, Some(2)).unwrap();
        let trapped_again = trapped.publish_batch(&batch, Some(2)).unwrap();
        for (a, b) in clean_again.iter().zip(&trapped_again) {
            assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
        }
        assert_eq!(trapped.pipeline_counters().quarantined_workers, 1);
        assert_eq!(trapped.pipeline_counters().retried_batches, 1);
    }
}
