//! Property tests over the whole broker: random small topologies, random
//! subscription layouts, random thresholds — the per-message contracts
//! must hold for all of them.

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, Decision, UnicastReason};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    groups: usize,
    algorithm: ClusteringAlgorithm,
    subs: Vec<SubSpec>,
    events: Vec<(f64, f64)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let sub = (
        0usize..100,
        (0.0f64..9.0, 0.5f64..8.0),
        (0.0f64..9.0, 0.5f64..8.0),
    );
    (
        0u64..50,
        0.0f64..=1.0,
        1usize..5,
        0usize..4,
        prop::collection::vec(sub, 1..25),
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..30),
    )
        .prop_map(
            |(topo_seed, threshold, groups, alg, subs, events)| Scenario {
                topo_seed,
                threshold,
                groups,
                algorithm: ClusteringAlgorithm::ALL[alg],
                subs,
                events,
            },
        )
}

fn build(s: &Scenario) -> Broker {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(s.threshold)
        .clustering(ClusteringConfig::new(s.algorithm, s.groups).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in &s.subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn per_message_contracts_hold(s in scenario_strategy()) {
        let mut broker = build(&s);
        for &(x, y) in &s.events {
            let event = Point::new(vec![x, y]).unwrap();
            let out = broker.publish(&event).unwrap();

            // Cost ordering.
            prop_assert!(out.costs.ideal <= out.costs.unicast + 1e-9);
            prop_assert!(out.costs.scheme >= out.costs.ideal - 1e-9);
            prop_assert!(out.costs.scheme.is_finite());

            // Decision semantics.
            match &out.decision {
                Decision::Drop => {
                    prop_assert!(out.interested.is_empty());
                    prop_assert_eq!(out.costs.scheme, 0.0);
                }
                Decision::Unicast { reason } => {
                    prop_assert!(!out.interested.is_empty());
                    prop_assert!((out.costs.scheme - out.costs.unicast).abs() < 1e-9);
                    match reason {
                        UnicastReason::CatchAll => {
                            prop_assert_eq!(out.group_region, None);
                        }
                        UnicastReason::BelowThreshold => {
                            let q = out.group_region.expect("threshold unicast has a group");
                            let size = broker.groups().members(q).len();
                            let ratio = out.interested.len() as f64 / size.max(1) as f64;
                            prop_assert!(
                                ratio < broker.policy().threshold_for(q) || size == 0
                            );
                        }
                        UnicastReason::GroupSevered => {
                            prop_assert!(false, "severed groups need an installed fault plan");
                        }
                    }
                }
                Decision::Multicast { group } => {
                    prop_assert!(!out.interested.is_empty());
                    prop_assert_eq!(out.group_region, Some(*group));
                    let members = broker.groups().members(*group);
                    let ratio = out.interested.len() as f64 / members.len().max(1) as f64;
                    prop_assert!(
                        ratio >= broker.policy().threshold_for(*group)
                            || (members.is_empty() && broker.policy().threshold_for(*group) == 0.0)
                    );
                    // Containment: every interested node is a group member.
                    for n in &out.interested {
                        prop_assert!(members.binary_search(n).is_ok());
                    }
                }
                Decision::PartialMulticast { .. } => {
                    prop_assert!(false, "partial multicast needs an installed fault plan");
                }
            }

            // Matched subscriptions' owners are exactly the interested set.
            let mut owners: Vec<_> = out
                .matched_subscriptions
                .iter()
                .map(|&id| broker.matcher().owner(id))
                .collect();
            owners.sort();
            owners.dedup();
            prop_assert_eq!(owners, out.interested.clone());
        }

        // Report counters reconcile.
        let r = broker.report();
        prop_assert_eq!(r.messages as usize, s.events.len());
        prop_assert_eq!(r.messages, r.dropped + r.unicasts + r.multicasts);
    }

    #[test]
    fn publish_batch_matches_sequential_publish(
        s in scenario_strategy(),
        threads in prop::option::of(1usize..6),
    ) {
        // The batched pipeline (parallel matching, sequential fold) must
        // produce byte-identical outcomes and cost reports to publishing
        // the same events one at a time — for any thread count.
        let events: Vec<Point> = s
            .events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();

        let mut sequential = build(&s);
        let expected: Vec<_> = events
            .iter()
            .map(|e| sequential.publish(e).unwrap())
            .collect();

        let mut batched = build(&s);
        let got = batched.publish_batch(&events, threads).unwrap();

        prop_assert_eq!(got, expected);
        prop_assert_eq!(batched.report(), sequential.report());
    }

    #[test]
    fn threshold_monotonicity_in_multicast_count(s in scenario_strategy()) {
        // Raising the threshold can only reduce the number of multicasts
        // on the same event stream.
        let mut broker = build(&s);
        let events: Vec<Point> = s
            .events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();
        let mut last = u64::MAX;
        for t in [0.0, 0.25, 0.5, 1.0] {
            broker.set_threshold(t).unwrap();
            broker.reset_report();
            for e in &events {
                broker.publish(e).unwrap();
            }
            let multicasts = broker.report().multicasts;
            prop_assert!(multicasts <= last);
            last = multicasts;
        }
    }
}
