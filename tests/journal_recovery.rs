//! Kill-at-arbitrary-byte-offset property tests for the durable
//! subscription journal.
//!
//! The contract: a broker recovered from `snapshot + WAL prefix` is
//! bit-identical — registry live set, handle numbering, handle
//! liveness, and every publish outcome — to an in-memory oracle that
//! applied exactly the operations whose journal records survived and
//! then recompiled. Truncating the WAL at *any* byte offset (record
//! boundaries, mid-header, mid-payload) loses at most the single
//! operation in flight; everything acked before it is recovered.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, BrokerError, JournalConfig, SubscriptionHandle};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, Topology, TransitStubConfig};

/// Unique scratch directory per test case (proptest reruns included).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pubsub-jrec-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One abstract churn operation; unsubscribes pick from the live set by
/// index so the sequence is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Subscribe {
        node_pick: usize,
        rect: ((f64, f64), (f64, f64)),
    },
    /// Remove the `pick % live`-th live handle (no-op when none live).
    Unsubscribe {
        pick: usize,
    },
    Recompile,
}

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    ops: Vec<Op>,
    /// WAL truncation point as a fraction of the final WAL length.
    cut: f64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..8,
        0usize..100,
        ((0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
    )
        .prop_map(|(kind, pick, rect)| match kind {
            0..=4 => Op::Subscribe {
                node_pick: pick,
                rect,
            },
            5 | 6 => Op::Unsubscribe { pick },
            _ => Op::Recompile,
        })
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u64..20,
        prop::collection::vec(op_strategy(), 1..32),
        0.0f64..=1.0,
    )
        .prop_map(|(topo_seed, ops, cut)| Scenario {
            topo_seed,
            ops,
            cut,
        })
}

fn topo(seed: u64) -> Topology {
    TransitStubConfig::tiny().generate(seed).unwrap()
}

fn space() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn builder(topo_seed: u64) -> pubsub::core::BrokerBuilder {
    Broker::builder(topo(topo_seed), space())
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5)
}

fn make_rect(spec: &((f64, f64), (f64, f64))) -> Rect {
    let ((x, w), (y, h)) = *spec;
    Rect::from_corners(&[x, y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

/// Applies one op; returns the handle a subscribe issued so the driver
/// can mirror the live set.
fn apply(broker: &mut Broker, live: &mut Vec<SubscriptionHandle>, op: &Op, nodes: &[NodeId]) {
    match op {
        Op::Subscribe { node_pick, rect } => {
            let node = nodes[node_pick % nodes.len()];
            let handle = broker.subscribe(node, make_rect(rect)).unwrap();
            live.push(handle);
        }
        Op::Unsubscribe { pick } => {
            if !live.is_empty() {
                let handle = live.remove(pick % live.len());
                broker.unsubscribe(handle).unwrap();
            }
        }
        Op::Recompile => broker.recompile().unwrap(),
    }
}

/// The registry's live set as comparable raw data, in handle order.
fn live_set(broker: &Broker) -> Vec<(u32, u32, Rect)> {
    broker
        .registry()
        .live()
        .map(|(h, n, r)| (h.raw(), n.0, r.clone()))
        .collect()
}

/// Publishes a probe grid on both brokers and asserts identical
/// outcomes (matches, decisions, interested nodes, costs).
fn assert_same_outcomes(recovered: &mut Broker, oracle: &mut Broker) {
    for i in 0..5 {
        for j in 0..5 {
            let event =
                Point::new(vec![0.5 + 2.0 * f64::from(i), 0.5 + 2.0 * f64::from(j)]).unwrap();
            let got = recovered.publish(&event).unwrap();
            let want = oracle.publish(&event).unwrap();
            assert_eq!(got, want, "outcome diverges at probe ({i}, {j})");
        }
    }
}

/// Copies `snapshot.bin` (if present) and the first `wal_bytes` bytes of
/// `wal.bin` into a fresh directory — the crash image.
fn crash_copy(src: &Path, wal_bytes: u64, tag: &str) -> PathBuf {
    let dst = scratch_dir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    if src.join("snapshot.bin").exists() {
        std::fs::copy(src.join("snapshot.bin"), dst.join("snapshot.bin")).unwrap();
    }
    let wal = std::fs::read(src.join("wal.bin")).unwrap();
    let keep = (wal_bytes as usize).min(wal.len());
    std::fs::write(dst.join("wal.bin"), &wal[..keep]).unwrap();
    dst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash the journal at an arbitrary byte offset: the recovered
    /// broker equals the oracle that applied exactly the operations
    /// whose final record survived the cut, then recompiled.
    #[test]
    fn recovery_at_any_offset_matches_oracle_prefix(s in scenario_strategy()) {
        let dir = scratch_dir("live");
        let nodes = topo(s.topo_seed).stub_nodes().to_vec();

        // Drive the journaled broker, recording the WAL length after
        // each op — the byte boundary at which that op became durable.
        let config = JournalConfig::new(&dir).snapshot_every(1_000_000);
        let mut broker = builder(s.topo_seed).journal(config).build().unwrap();
        let mut live = Vec::new();
        let mut boundaries = Vec::with_capacity(s.ops.len());
        for op in &s.ops {
            apply(&mut broker, &mut live, op, &nodes);
            boundaries.push(broker.journal().unwrap().wal_len());
        }
        let final_len = broker.journal().unwrap().wal_len();
        drop(broker);

        // Cut the WAL at an arbitrary byte offset (fraction of the
        // final length, so 0 = lose everything, 1 = lose nothing).
        let offset = (s.cut * final_len as f64).round() as u64;
        let crash_dir = crash_copy(&dir, offset, "crash");

        let recovered = builder(s.topo_seed)
            .journal(JournalConfig::new(&crash_dir))
            .recover()
            .unwrap();
        let counters = recovered.recovery_counters();
        prop_assert!(counters.truncated_records <= 1,
            "a byte cut tears at most the record in flight");

        // The surviving prefix: ops whose *last* journal record fits
        // within the cut (an op may also emit a drift-recompile record
        // first; losing only the tail record loses the whole op).
        let survived = boundaries.iter().filter(|&&b| b <= offset).count();
        let mut oracle = builder(s.topo_seed).build().unwrap();
        let mut oracle_live = Vec::new();
        for op in &s.ops[..survived] {
            apply(&mut oracle, &mut oracle_live, op, &nodes);
        }
        oracle.recompile().unwrap();

        prop_assert_eq!(live_set(&recovered), live_set(&oracle));
        prop_assert_eq!(recovered.registry().issued(), oracle.registry().issued());
        // Dead handles stay dead, live handles stay live, on both.
        for h in &oracle_live {
            prop_assert!(recovered.registry().contains(*h));
        }
        let mut recovered = recovered;
        assert_same_outcomes(&mut recovered, &mut oracle);
        drop(recovered);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    /// Crash in the window *between* the snapshot rename and the WAL
    /// truncation: the surviving snapshot already folded every op still
    /// sitting in the WAL. Replay must recognize the stale records
    /// (handles are never reused) and land on the full-history oracle —
    /// for *any* byte cut of the stale WAL, since every prefix of it is
    /// covered by the snapshot.
    #[test]
    fn stale_wal_behind_fresh_snapshot_replays_idempotently(s in scenario_strategy()) {
        let dir = scratch_dir("stalewal");
        let nodes = topo(s.topo_seed).stub_nodes().to_vec();

        let config = JournalConfig::new(&dir).snapshot_every(1_000_000);
        let mut broker = builder(s.topo_seed).journal(config.clone()).build().unwrap();
        let mut live = Vec::new();
        for op in &s.ops {
            apply(&mut broker, &mut live, op, &nodes);
        }
        drop(broker);
        let stale_wal = std::fs::read(dir.join("wal.bin")).unwrap();

        // A first recovery folds the whole WAL into a fresh snapshot and
        // truncates; writing the old WAL bytes back reproduces exactly
        // the crash window (snapshot from op N, WAL holding ops <= N).
        drop(builder(s.topo_seed).journal(config.clone()).recover().unwrap());
        let cut = ((s.cut * stale_wal.len() as f64).round() as usize).min(stale_wal.len());
        std::fs::write(dir.join("wal.bin"), &stale_wal[..cut]).unwrap();

        let recovered = builder(s.topo_seed).journal(config).recover().unwrap();
        let counters = recovered.recovery_counters();
        prop_assert!(counters.truncated_records <= 1,
            "a byte cut tears at most the record in flight");
        prop_assert!(counters.stale_ops as usize <= s.ops.len());

        // The oracle applied the *full* history — the snapshot has it
        // all; no stale replay may subtract from or re-add to it.
        let mut oracle = builder(s.topo_seed).build().unwrap();
        let mut oracle_live = Vec::new();
        for op in &s.ops {
            apply(&mut oracle, &mut oracle_live, op, &nodes);
        }
        oracle.recompile().unwrap();

        prop_assert_eq!(live_set(&recovered), live_set(&oracle));
        prop_assert_eq!(recovered.registry().issued(), oracle.registry().issued());
        let mut recovered = recovered;
        assert_same_outcomes(&mut recovered, &mut oracle);
        drop(recovered);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// With an aggressive snapshot cadence the WAL keeps truncating;
    /// clean recovery (no crash) still lands on the oracle exactly, and
    /// a recovered broker keeps journaling — a second recovery works.
    #[test]
    fn snapshots_truncate_and_recovery_chains(s in scenario_strategy()) {
        let dir = scratch_dir("snap");
        let nodes = topo(s.topo_seed).stub_nodes().to_vec();

        let config = JournalConfig::new(&dir).snapshot_every(3);
        let mut broker = builder(s.topo_seed).journal(config.clone()).build().unwrap();
        let mut live = Vec::new();
        for op in &s.ops {
            apply(&mut broker, &mut live, op, &nodes);
        }
        if s.ops.len() > 3 {
            prop_assert!(broker.journal().unwrap().stats().snapshots > 0);
        }
        drop(broker);

        let mut oracle = builder(s.topo_seed).build().unwrap();
        let mut oracle_live = Vec::new();
        for op in &s.ops {
            apply(&mut oracle, &mut oracle_live, op, &nodes);
        }
        oracle.recompile().unwrap();

        let mut recovered = builder(s.topo_seed).journal(config.clone()).recover().unwrap();
        prop_assert_eq!(recovered.recovery_counters().truncated_records, 0);
        prop_assert_eq!(live_set(&recovered), live_set(&oracle));

        // Keep operating on the recovered broker, then recover again:
        // the journal chain survives its own recovery.
        let extra = Op::Subscribe { node_pick: 1, rect: ((1.0, 2.0), (3.0, 2.0)) };
        apply(&mut recovered, &mut live, &extra, &nodes);
        apply(&mut oracle, &mut oracle_live, &extra, &nodes);
        oracle.recompile().unwrap();
        drop(recovered);

        let mut second = builder(s.topo_seed).journal(config).recover().unwrap();
        prop_assert_eq!(live_set(&second), live_set(&oracle));
        assert_same_outcomes(&mut second, &mut oracle);
        drop(second);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recover_requires_journal_and_no_builder_subscriptions() {
    let err = builder(1).recover().unwrap_err();
    assert!(matches!(
        err,
        BrokerError::InvalidConfig {
            parameter: "journal",
            ..
        }
    ));

    let dir = scratch_dir("cfg");
    let node = topo(1).stub_nodes()[0];
    let err = builder(1)
        .journal(JournalConfig::new(&dir))
        .subscription(node, Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap())
        .recover()
        .unwrap_err();
    assert!(matches!(
        err,
        BrokerError::InvalidConfig {
            parameter: "subscriptions",
            ..
        }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_from_empty_journal_is_an_empty_broker() {
    let dir = scratch_dir("empty");
    drop(
        builder(3)
            .journal(JournalConfig::new(&dir))
            .build()
            .unwrap(),
    );
    let broker = builder(3)
        .journal(JournalConfig::new(&dir))
        .recover()
        .unwrap();
    assert!(broker.registry().is_empty());
    assert_eq!(broker.recovery_counters().replayed_ops, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic rename-vs-truncation crash: every stale record — a
/// subscribe below the restored next-slot and an unsubscribe of an
/// already-dead handle — is skipped and counted, and the recovered
/// broker keeps issuing fresh handles from the right slot.
#[test]
fn crash_between_rename_and_truncation_counts_stale_ops() {
    let dir = scratch_dir("stalecount");
    let nodes = topo(2).stub_nodes().to_vec();
    let rect = |spec| make_rect(&spec);
    let config = JournalConfig::new(&dir).snapshot_every(1_000_000);

    let mut broker = builder(2).journal(config.clone()).build().unwrap();
    let a = broker
        .subscribe(nodes[0], rect(((0.0, 2.0), (0.0, 2.0))))
        .unwrap();
    broker
        .subscribe(nodes[1 % nodes.len()], rect(((3.0, 2.0), (3.0, 2.0))))
        .unwrap();
    broker.unsubscribe(a).unwrap();
    drop(broker);
    let stale_wal = std::fs::read(dir.join("wal.bin")).unwrap();

    // Fold the WAL into a snapshot (next_slot 2, handle 0 dead), then
    // resurrect the pre-snapshot WAL: the crash window image.
    drop(builder(2).journal(config.clone()).recover().unwrap());
    std::fs::write(dir.join("wal.bin"), &stale_wal).unwrap();

    let mut recovered = builder(2).journal(config).recover().unwrap();
    let counters = recovered.recovery_counters();
    assert_eq!(counters.stale_ops, 3, "both subscribes and the unsubscribe");
    assert_eq!(counters.replayed_ops, 0);
    assert_eq!(counters.truncated_records, 0);
    assert_eq!(recovered.registry().issued(), 2);
    assert_eq!(recovered.registry().live().count(), 1);
    assert!(!recovered.registry().contains(a), "dead handles stay dead");

    // Handle numbering continues where the pre-crash broker left off.
    let next = recovered
        .subscribe(nodes[0], rect(((1.0, 1.0), (1.0, 1.0))))
        .unwrap();
    assert_eq!(next.raw(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_errors_on_topology_mismatch() {
    let dir = scratch_dir("mismatch");
    drop(
        builder(1)
            .journal(JournalConfig::new(&dir))
            .build()
            .unwrap(),
    );
    // A bigger topology has a different node count; the snapshot must
    // refuse to restore into it.
    let mut cfg = TransitStubConfig::tiny();
    cfg.stub_size *= 2;
    let bigger = cfg.generate(1).unwrap();
    assert_ne!(bigger.graph().node_count(), topo(1).graph().node_count());
    let err = Broker::builder(bigger, space())
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5)
        .journal(JournalConfig::new(&dir))
        .recover()
        .unwrap_err();
    assert!(matches!(err, BrokerError::Journal { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}
