//! Serde round-trip tests: every serializable artifact of an experiment
//! must survive JSON encoding unchanged, so `results/*.json` and archived
//! topologies are trustworthy.

use pubsub::clustering::{cluster, ClusteringAlgorithm, ClusteringConfig, GridModel};
use pubsub::core::CostReport;
use pubsub::geom::{Grid, Interval, Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::prelude::*;
use pubsub::workload::{IntervalDistribution, Modes, SubscriptionConfig};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn geometry_roundtrips() {
    let rect = Rect::new(vec![
        Interval::new(0.0, 5.0).unwrap(),
        Interval::at_least(3.0),
        Interval::unbounded(),
    ])
    .unwrap();
    assert_eq!(roundtrip(&rect), rect);

    let p = Point::new(vec![1.5, -2.5, 0.0]).unwrap();
    assert_eq!(roundtrip(&p), p);

    let space = Space::new(
        vec!["a".into(), "b".into()],
        Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
    )
    .unwrap();
    assert_eq!(roundtrip(&space), space);

    let grid = Grid::uniform(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(), 4).unwrap();
    let back = roundtrip(&grid);
    assert_eq!(back, grid);
    // Behaviour, not just equality: lookups agree after the round trip.
    let probe = Point::new(vec![3.3, 7.7]).unwrap();
    assert_eq!(back.cell_of_point(&probe), grid.cell_of_point(&probe));
}

#[test]
fn unbounded_interval_survives_json() {
    // serde_json maps f64::INFINITY to null by default — confirm our
    // types keep semantics through the round trip.
    let iv = Interval::unbounded();
    let back = roundtrip(&iv);
    assert_eq!(back.lo(), f64::NEG_INFINITY);
    assert_eq!(back.hi(), f64::INFINITY);
    assert!(back.contains(1e300));
}

#[test]
fn topology_roundtrips_with_behaviour() {
    let topo = TransitStubConfig::tiny().generate(9).unwrap();
    let back: pubsub::netsim::Topology = roundtrip(&topo);
    assert_eq!(back.stats(), topo.stats());
    assert_eq!(back.graph().total_cost(), topo.graph().total_cost());
    // Shortest paths agree.
    let a = pubsub::netsim::dijkstra(topo.graph(), NodeId(0));
    let b = pubsub::netsim::dijkstra(back.graph(), NodeId(0));
    for n in topo.graph().node_ids() {
        assert_eq!(a.dist(n), b.dist(n));
    }
}

#[test]
fn partition_roundtrips_with_lookup() {
    let grid = Grid::uniform(Rect::from_corners(&[0.0], &[8.0]).unwrap(), 8).unwrap();
    let subs = vec![
        (0usize, Rect::from_corners(&[0.0], &[4.0]).unwrap()),
        (1usize, Rect::from_corners(&[4.0], &[8.0]).unwrap()),
    ];
    let model = GridModel::build(grid, 2, &subs, |_| 0.125).unwrap();
    let part = cluster(
        &model,
        &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2),
    )
    .unwrap();
    let back: pubsub::clustering::SpacePartition = roundtrip(&part);
    assert_eq!(back, part);
    for x in [0.5f64, 3.5, 4.5, 7.5] {
        let p = Point::new(vec![x]).unwrap();
        assert_eq!(back.group_of_point(&p), part.group_of_point(&p));
    }
}

#[test]
fn configs_and_reports_roundtrip() {
    let sc = SubscriptionConfig::riabov();
    assert_eq!(roundtrip(&sc), sc);
    let id = IntervalDistribution::volume();
    assert_eq!(roundtrip(&id), id);
    let cc = ClusteringConfig::new(ClusteringAlgorithm::PairwiseGrouping, 7)
        .with_max_cells(50)
        .with_max_iterations(10);
    assert_eq!(roundtrip(&cc), cc);
    let tc = TransitStubConfig::riabov();
    assert_eq!(roundtrip(&tc), tc);
    let model = Modes::Nine.model();
    assert_eq!(roundtrip(&model), model);

    let mut report = CostReport::default();
    report.record(
        pubsub::core::MessageCosts {
            scheme: 1.0,
            unicast: 2.0,
            ideal: 0.5,
        },
        pubsub::core::Delivery::Multicast,
        3,
        0,
    );
    let back = roundtrip(&report);
    assert_eq!(back, report);
    assert_eq!(back.improvement_percent(), report.improvement_percent());
}
