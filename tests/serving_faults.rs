//! Fault plans through the staged serving front-end, at every executor
//! count: the concurrent executors stand down (fault state is fold-side,
//! per-event), so records — outcomes, aborts-as-errors, epochs — must be
//! bit-identical to a synchronous `publish` loop over the same plan, and
//! every accepted event must produce exactly one record even when the
//! engine aborts mid-stream.

use std::time::Duration;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::Broker;
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{FaultEvent, FaultPlan, TransitStubConfig};
use pubsub::server::{CollectorSink, ServingConfig, StagedServer};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

fn build(topo_seed: u64, threshold: f64, subs: &[SubSpec]) -> Broker {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(threshold)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

/// One scheduled fault: (step, event selector, node pick a, node pick b,
/// degrade factor).
type FaultSpec = (u64, u32, usize, usize, f64);

fn plan_from(topo_seed: u64, schedule: &[FaultSpec]) -> FaultPlan {
    let topo_nodes = TransitStubConfig::tiny()
        .generate(topo_seed)
        .unwrap()
        .stub_nodes()
        .to_vec();
    let mut plan = FaultPlan::new();
    let mut ats: Vec<u64> = schedule.iter().map(|s| s.0).collect();
    ats.sort_unstable();
    for (&at, &(_, sel, ai, bi, factor)) in ats.iter().zip(schedule) {
        let a = topo_nodes[ai % topo_nodes.len()];
        let b = topo_nodes[bi % topo_nodes.len()];
        let event = match sel % 5 {
            0 => FaultEvent::LinkCut { a, b },
            1 => FaultEvent::LinkRestore { a, b },
            2 => FaultEvent::LinkDegrade { a, b, factor },
            3 => FaultEvent::NodeDown { node: a },
            _ => FaultEvent::NodeUp { node: a },
        };
        plan.push(at, event);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Staged serving under an active fault plan is bit-identical —
    /// outcomes, abort errors, epochs, and the cumulative report — to a
    /// synchronous publish loop, at executor counts 1, 2, 3 and 7.
    #[test]
    fn staged_faults_match_the_synchronous_loop(
        topo_seed in 0u64..20,
        threshold in 0.0f64..=1.0,
        subs in prop::collection::vec(
            (0usize..100, (0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
            2..12,
        ),
        events in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..40),
        schedule in prop::collection::vec(
            (0u64..30, 0u32..5, 0usize..100, 0usize..100, 1.0f64..8.0),
            1..8,
        ),
        executors in (0usize..4).prop_map(|i| [1usize, 2, 3, 7][i]),
    ) {
        let mut broker = build(topo_seed, threshold, &subs);
        broker.install_fault_plan(plan_from(topo_seed, &schedule)).unwrap();
        let mut reference = build(topo_seed, threshold, &subs);
        reference.install_fault_plan(plan_from(topo_seed, &schedule)).unwrap();

        let sink = CollectorSink::new();
        let server = StagedServer::start(
            broker,
            // One shard keeps the submission order total; the fault path
            // degrades to per-event processing fold-side regardless of
            // how many executors race the dispatcher.
            ServingConfig {
                ingest_capacity: 256,
                egress_capacity: 256,
                max_batch: 4,
                flush_interval: Duration::from_micros(500),
                threads: Some(1),
                executors: Some(executors),
                shards: 1,
            },
            Box::new(sink.clone()),
        );
        let handle = server.handle();

        let points: Vec<Point> = events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();
        for (seq, p) in points.iter().enumerate() {
            handle
                .submit_now(0, seq as u64, p.clone())
                .map_err(|r| format!("submit rejected: {r}"))?;
        }
        let (folded, stats) = server.stop();
        prop_assert_eq!(stats.accepted, points.len() as u64);
        prop_assert_eq!(
            stats.delivered + stats.failed,
            stats.accepted,
            "every accepted event needs a record, aborts included"
        );

        // The synchronous reference: one publish per event, continuing
        // past aborts exactly like the staged per-event fault path.
        let expected: Vec<(u64, Result<_, String>)> = points
            .iter()
            .map(|p| {
                let epoch = reference.epoch();
                (epoch, reference.publish(p).map_err(|e| e.to_string()))
            })
            .collect();

        let mut records = sink.take();
        records.sort_by_key(|r| r.seq);
        prop_assert_eq!(records.len(), expected.len());
        for (r, (epoch, want)) in records.iter().zip(&expected) {
            prop_assert_eq!(
                r.epoch, *epoch,
                "seq {} (executors {}): epoch diverges", r.seq, executors
            );
            match (&r.outcome, want) {
                (Ok(out), Ok(exp)) => prop_assert_eq!(
                    out, exp,
                    "seq {} (executors {}): outcome diverges", r.seq, executors
                ),
                (Err(got), Err(exp)) => prop_assert_eq!(
                    got, exp,
                    "seq {} (executors {}): abort message diverges", r.seq, executors
                ),
                (got, want) => return Err(format!(
                    "seq {} (executors {executors}): fate diverges: staged {got:?} vs reference {want:?}",
                    r.seq
                )),
            }
        }
        // The fault clock advanced identically: same fault epoch, same
        // cumulative cost report, bit for bit.
        prop_assert_eq!(folded.fault_epoch(), reference.fault_epoch());
        prop_assert_eq!(folded.report(), reference.report());
    }
}
