//! The bounded-intermediate guarantee of the streaming covered compile:
//! `recompile()` on a broker with a covering layer streams the registry
//! straight into the interning pass and the grid model — it never
//! materializes an `O(N)` vector of `f64` rectangles. Verified with a
//! metering global allocator: the transient peak above the pre-recompile
//! live set must stay **well below** the measured cost of collecting the
//! registry into a `(NodeId, Rect)` list, for a population large enough
//! that the difference is unambiguous.
//!
//! This test lives in its own integration-test file so it owns the
//! process-global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pubsub::core::{Broker, CoveringConfig};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, TransitStubConfig};

/// Tracks live and peak heap bytes; delegates all work to the system
/// allocator. Always on — tests window it with [`live`] / [`reset_peak`].
struct MeterAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for MeterAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        new_ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }
}

#[global_allocator]
static ALLOCATOR: MeterAlloc = MeterAlloc;

fn live() -> usize {
    LIVE.load(Ordering::SeqCst)
}

fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::SeqCst), Ordering::SeqCst);
}

fn peak() -> usize {
    PEAK.load(Ordering::SeqCst)
}

/// Runs `f` and returns `(transient peak above entry live, result)`.
fn transient_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = live();
    reset_peak();
    let result = f();
    (peak().saturating_sub(before), result)
}

const SUBS: usize = 100_000;
const POOL: usize = 64;

fn space_2d() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

/// A duplicate-heavy population: `SUBS` subscriptions drawn round-robin
/// with a stride from a pool of `POOL` distinct rectangles.
fn population(nodes: &[NodeId]) -> Vec<(NodeId, Rect)> {
    let pool: Vec<Rect> = (0..POOL)
        .map(|i| {
            let lo = (i % 19) as f64 * 0.5;
            let w = 1.0 + (i % 7) as f64;
            Rect::from_corners(
                &[lo, lo * 0.4],
                &[(lo + w).min(10.0), (lo * 0.4 + 2.0).min(10.0)],
            )
            .unwrap()
        })
        .collect();
    (0..SUBS)
        .map(|i| {
            (
                nodes[(i * 31) % nodes.len()],
                pool[(i * 7919) % POOL].clone(),
            )
        })
        .collect()
}

#[test]
fn covered_recompile_never_holds_an_o_n_rect_intermediate() {
    let topo = TransitStubConfig::tiny().generate(17).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let mut broker = Broker::builder(topo, space_2d())
        .covering(CoveringConfig::default())
        .grid_cells(5)
        .subscriptions(population(&nodes))
        .build()
        .unwrap();

    let stats = *broker.covering_stats().expect("covering layer installed");
    assert_eq!(stats.concrete, SUBS);
    assert!(
        stats.representatives <= POOL,
        "pool population must collapse to at most {POOL} representatives, got {}",
        stats.representatives
    );

    // The yardstick: what materializing the registry as a concrete
    // `(node, rect)` list actually costs on this layout. The streaming
    // path must stay far under this.
    let (collect_bytes, collected) = transient_peak(|| {
        broker
            .registry()
            .live()
            .map(|(_, n, r)| (n, r.clone()))
            .collect::<Vec<(NodeId, Rect)>>()
    });
    assert_eq!(collected.len(), SUBS);
    drop(collected);
    assert!(
        collect_bytes >= SUBS * 32,
        "yardstick collect unexpectedly cheap: {collect_bytes} bytes"
    );

    // The streaming covered recompile: transient peak above the live set
    // must be a small fraction of the collect yardstick. The compiled
    // artifacts it may legitimately allocate are O(representatives) f64
    // bounds plus O(N) narrow (u32-sized) expansion entries.
    let (recompile_bytes, ()) = transient_peak(|| broker.recompile().unwrap());
    assert!(
        recompile_bytes * 2 < collect_bytes,
        "covered recompile transient ({recompile_bytes} bytes) is not well \
         below the O(N) rect collect ({collect_bytes} bytes)"
    );

    // And the recompiled broker still matches: an event inside pool
    // rectangle 0 reaches a nonempty subscriber set.
    let outcome = broker
        .publish(&Point::new(vec![0.5, 0.5]).unwrap())
        .unwrap();
    assert!(!outcome.matched_subscriptions.is_empty());

    // Steady state: a second recompile of the unchanged population must
    // not need more transient memory than the first (no growth drift).
    let (second_bytes, ()) = transient_peak(|| broker.recompile().unwrap());
    assert!(
        second_bytes <= recompile_bytes + (recompile_bytes >> 2),
        "second recompile transient grew: {second_bytes} vs {recompile_bytes}"
    );
}
