//! Chaos property tests for the fault-injection layer: arbitrary fault
//! plans (cuts, node failures, degradations, repairs) against an
//! independent from-scratch reachability oracle. The contract under any
//! fault state is *exactly-once-to-reachable*: every matched subscriber
//! the surviving network can reach is in `interested` (delivered once),
//! every other matched subscriber is in `unreachable`, and no cost is
//! ever infinite.

use std::collections::HashSet;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, BrokerError, Decision};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{FaultEvent, FaultPlan, NetError, NodeId, Topology, TransitStubConfig};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

/// One raw fault instruction: (step, kind, node pick a, node pick b).
/// `kind` maps onto cut / down / degrade / restore / up.
type FaultSpec = (u8, u8, usize, usize);

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    groups: usize,
    subs: Vec<SubSpec>,
    events: Vec<(f64, f64)>,
    faults: Vec<FaultSpec>,
    /// Churn instruction per event index: Some(spec) subscribes before
    /// that publish; an unsubscribe fires when the rect is degenerate.
    churn: Vec<(usize, SubSpec)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let sub = (
        0usize..100,
        (0.0f64..9.0, 0.5f64..8.0),
        (0.0f64..9.0, 0.5f64..8.0),
    );
    (
        0u64..30,
        0.0f64..=1.0,
        1usize..4,
        prop::collection::vec(sub.clone(), 2..20),
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..25),
        prop::collection::vec((0u8..25, 0u8..5, 0usize..100, 0usize..100), 0..12),
        prop::collection::vec((0usize..25, sub), 0..4),
    )
        .prop_map(
            |(topo_seed, threshold, groups, subs, events, faults, churn)| Scenario {
                topo_seed,
                threshold,
                groups,
                subs,
                events,
                faults,
                churn,
            },
        )
}

fn build(s: &Scenario) -> (Broker, Topology) {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo.clone(), space)
        .threshold(s.threshold)
        .clustering(
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, s.groups).with_max_cells(30),
        )
        .grid_cells(5);
    for (n, (x, w), (y, h)) in &s.subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    (b.build().unwrap(), topo)
}

/// Resolves a raw fault spec against the topology. Node picks index the
/// full node range, so cuts may name non-adjacent pairs (a no-op for the
/// overlay and for the oracle alike).
fn resolve_fault(spec: &FaultSpec, nodes: usize) -> (u64, FaultEvent) {
    let (at, kind, a, b) = *spec;
    let a = NodeId((a % nodes) as u32);
    let b = NodeId((b % nodes) as u32);
    let event = match kind {
        0 => FaultEvent::LinkCut { a, b },
        1 => FaultEvent::NodeDown { node: a },
        2 => FaultEvent::LinkDegrade {
            a,
            b,
            factor: 2.0 + (at as f64),
        },
        3 => FaultEvent::LinkRestore { a, b },
        _ => FaultEvent::NodeUp { node: a },
    };
    (at as u64, event)
}

/// The from-scratch oracle: cut pairs and down nodes accumulated by
/// replaying the plan, with reachability recomputed by BFS over the
/// pristine graph minus the faulted parts on every query.
#[derive(Default)]
struct Oracle {
    cut: HashSet<(u32, u32)>,
    down: HashSet<u32>,
}

impl Oracle {
    fn apply(&mut self, event: &FaultEvent) {
        match *event {
            FaultEvent::LinkCut { a, b } => {
                self.cut.insert((a.0.min(b.0), a.0.max(b.0)));
            }
            FaultEvent::LinkRestore { a, b } => {
                self.cut.remove(&(a.0.min(b.0), a.0.max(b.0)));
            }
            // Degradations change costs, never connectivity.
            FaultEvent::LinkDegrade { .. } => {}
            FaultEvent::NodeDown { node } => {
                self.down.insert(node.0);
            }
            FaultEvent::NodeUp { node } => {
                self.down.remove(&node.0);
            }
        }
    }

    fn reachable_from(&self, topo: &Topology, source: NodeId) -> HashSet<u32> {
        let mut seen = HashSet::new();
        if self.down.contains(&source.0) {
            return seen;
        }
        let mut stack = vec![source];
        seen.insert(source.0);
        while let Some(n) = stack.pop() {
            for (m, _) in topo.graph().neighbors(n) {
                let key = (n.0.min(m.0), n.0.max(m.0));
                if self.down.contains(&m.0) || self.cut.contains(&key) || seen.contains(&m.0) {
                    continue;
                }
                seen.insert(m.0);
                stack.push(m);
            }
        }
        seen
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once-to-reachable under arbitrary fault plans, including
    /// subscriptions churning mid-plan.
    #[test]
    fn delivery_covers_exactly_the_reachable_matched_set(s in scenario_strategy()) {
        let (mut broker, topo) = build(&s);
        let nodes = topo.graph().node_count();
        let stub_nodes = topo.stub_nodes().to_vec();
        let publisher = broker.publisher();

        let mut plan = FaultPlan::new();
        let mut schedule: Vec<(u64, FaultEvent)> = Vec::new();
        for spec in &s.faults {
            let (at, event) = resolve_fault(spec, nodes);
            plan.push(at, event);
            schedule.push((at, event));
        }
        schedule.sort_by_key(|&(at, _)| at);
        broker.install_fault_plan(plan).unwrap();

        let mut oracle = Oracle::default();
        let mut fired = 0usize;
        let mut live_handles = Vec::new();

        for (step, &(x, y)) in s.events.iter().enumerate() {
            // Mid-plan churn: mutate the live subscription set.
            for (at, (n, (sx, w), (sy, h))) in &s.churn {
                if *at != step {
                    continue;
                }
                if step % 2 == 0 || live_handles.is_empty() {
                    let node = stub_nodes[n % stub_nodes.len()];
                    let rect = Rect::from_corners(
                        &[*sx, *sy],
                        &[(sx + w).min(10.0), (sy + h).min(10.0)],
                    )
                    .unwrap();
                    live_handles.push(broker.subscribe(node, rect).unwrap());
                } else {
                    let h = live_handles.remove(n % live_handles.len());
                    broker.unsubscribe(h).unwrap();
                }
            }

            // Mirror the broker's fault clock: events due at `step` fire
            // before the publication.
            while fired < schedule.len() && schedule[fired].0 <= step as u64 {
                oracle.apply(&schedule[fired].1);
                fired += 1;
            }
            let reachable = oracle.reachable_from(&topo, publisher);

            let event = Point::new(vec![x, y]).unwrap();
            let (_, matched) = broker.match_only(&event);
            match broker.publish(&event) {
                Err(BrokerError::Net(NetError::Unreachable { node })) => {
                    // Only a downed publisher aborts a publish.
                    prop_assert_eq!(node, publisher.0);
                    prop_assert!(oracle.down.contains(&publisher.0));
                    continue;
                }
                Err(e) => return Err(format!("unexpected error: {e}")),
                Ok(out) => {
                    prop_assert!(!oracle.down.contains(&publisher.0));
                    // Partition: interested ∪ unreachable == matched,
                    // split exactly by oracle reachability.
                    let mut got: Vec<NodeId> =
                        out.interested.iter().chain(out.unreachable.iter()).copied().collect();
                    got.sort_by_key(|n| n.0);
                    let mut want = matched.clone();
                    want.sort_by_key(|n| n.0);
                    prop_assert_eq!(&got, &want);
                    for n in &out.interested {
                        prop_assert!(
                            reachable.contains(&n.0),
                            "delivered to oracle-unreachable node {}", n.0
                        );
                    }
                    for n in &out.unreachable {
                        prop_assert!(
                            !reachable.contains(&n.0),
                            "skipped oracle-reachable node {}", n.0
                        );
                    }
                    // Degraded costs are always finite.
                    prop_assert!(out.costs.scheme.is_finite());
                    prop_assert!(out.costs.unicast.is_finite());
                    prop_assert!(out.costs.ideal.is_finite());
                    if out.interested.is_empty() {
                        prop_assert!(matches!(out.decision, Decision::Drop));
                    }
                }
            }
        }

        // The report reconciles across every delivery flavor.
        let r = broker.report();
        prop_assert_eq!(
            r.messages,
            r.dropped + r.unicasts + r.multicasts + r.partial_multicasts
        );
    }
}
