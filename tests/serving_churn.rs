//! Epoch-handoff regression tests for the staged serving front-end:
//! churn and recompiles interleaved with in-flight async batches.
//!
//! Control operations (subscribe / unsubscribe / recompile) travel
//! through the *same ordered queue* as event batches — `control()`
//! flushes every ingest shard before enqueueing the op — so a batch
//! submitted before a recompile is matched against the pre-recompile
//! engine and stamped with the pre-recompile epoch, even if the
//! recompile lands while the batch is still buffered in a shard
//! batcher. These tests pin that ordering: every record's outcome and
//! epoch must be bit-identical to a synchronous reference broker
//! applying the same operation sequence.

use std::time::Duration;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::Broker;
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::server::{CollectorSink, ServingConfig, StagedServer};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

fn build(topo_seed: u64, threshold: f64, subs: &[SubSpec]) -> Broker {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(threshold)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

fn rect(x: f64, w: f64, y: f64, h: f64) -> Rect {
    Rect::from_corners(&[x, y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

const BASE_SUBS: &[SubSpec] = &[
    (0, (0.0, 5.0), (0.0, 5.0)),
    (3, (2.0, 6.0), (1.0, 7.0)),
    (7, (5.0, 4.0), (4.0, 5.0)),
];

/// A recompile landing while a batch is still buffered in a shard
/// batcher must not see it: the flush-before-control ordering processes
/// the in-flight events against the pre-recompile engine, and their
/// records carry the pre-recompile epoch. The epoch barrier must hold
/// at every executor count — concurrent executors wait for exactly
/// their batch's view version, so racing threads cannot leak a
/// post-recompile engine into a pre-recompile batch.
#[test]
fn in_flight_batch_processes_before_the_recompile() {
    for executors in [1usize, 2, 3, 7] {
        in_flight_batch_case(executors);
    }
}

fn in_flight_batch_case(executors: usize) {
    let broker = build(11, 0.3, BASE_SUBS);
    let sink = CollectorSink::new();
    let server = StagedServer::start(
        broker,
        // A huge batch size and a long flush interval keep submitted
        // events buffered in the shard batcher: only the control op's
        // shard flush (or shutdown) can move them.
        ServingConfig {
            ingest_capacity: 64,
            egress_capacity: 64,
            max_batch: 1 << 20,
            flush_interval: Duration::from_secs(3600),
            threads: Some(1),
            executors: Some(executors),
            shards: 1,
        },
        Box::new(sink.clone()),
    );
    let handle = server.handle();

    let events: Vec<Point> = (0..10)
        .map(|i| Point::new(vec![0.5 + 0.9 * i as f64, 0.4 + 0.9 * i as f64]).unwrap())
        .collect();

    let epoch_before = handle.metrics().unwrap().epoch;
    // These five sit in the batcher — nothing has flushed them.
    for (i, e) in events[..5].iter().enumerate() {
        handle.submit_now(0, i as u64, e.clone()).unwrap();
    }
    // Subscribe (into the overlay) then fold it down with a recompile.
    // Both are ordered AFTER the five buffered events.
    let added = handle
        .subscribe(pubsub::netsim::NodeId(2), rect(1.0, 3.0, 1.0, 3.0))
        .unwrap();
    handle.recompile().unwrap();
    let epoch_after = handle.metrics().unwrap().epoch;
    assert!(epoch_after > epoch_before, "recompile must bump the epoch");
    for (i, e) in events[5..].iter().enumerate() {
        handle.submit_now(0, (5 + i) as u64, e.clone()).unwrap();
    }
    let (_broker, stats) = server.stop();
    assert_eq!(stats.accepted, 10);
    assert_eq!(stats.delivered, 10);

    // The synchronous reference applies the identical sequence.
    let mut reference = build(11, 0.3, BASE_SUBS);
    let mut expected = Vec::new();
    for e in &events[..5] {
        expected.push((reference.epoch(), reference.publish(e).unwrap()));
    }
    let ref_added = reference
        .subscribe(pubsub::netsim::NodeId(2), rect(1.0, 3.0, 1.0, 3.0))
        .unwrap();
    assert_eq!(ref_added, added, "handles must allocate identically");
    reference.recompile().unwrap();
    for e in &events[5..] {
        expected.push((reference.epoch(), reference.publish(e).unwrap()));
    }

    let mut records = sink.take();
    records.sort_by_key(|r| r.seq);
    assert_eq!(records.len(), 10);
    for (r, (epoch, outcome)) in records.iter().zip(&expected) {
        assert_eq!(
            r.epoch, *epoch,
            "seq {}: epoch {} but the reference was at {}",
            r.seq, r.epoch, epoch
        );
        assert_eq!(
            r.outcome.as_ref().unwrap(),
            outcome,
            "seq {} diverges",
            r.seq
        );
    }
    // The first five carry the pre-recompile epoch, the rest the bumped
    // one — the in-flight batch did not see the new engine.
    for r in &records[..5] {
        assert_eq!(r.epoch, epoch_before, "executors={executors}");
    }
    for r in &records[5..] {
        assert_eq!(r.epoch, epoch_after, "executors={executors}");
    }
}

/// One raw op: kind picks publish / subscribe / unsubscribe / recompile.
type OpSpec = (u8, usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    ops: Vec<OpSpec>,
    /// Concurrent pipeline executors — churn interleavings must stay
    /// bit-identical whether one thread or seven race the dispatcher.
    executors: usize,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u64..20,
        0.0f64..=1.0,
        prop::collection::vec(
            (
                0u8..8,
                0usize..100,
                (0.0f64..9.0, 0.5f64..8.0),
                (0.0f64..9.0, 0.5f64..8.0),
            ),
            5..40,
        ),
        (0usize..4).prop_map(|i| [1usize, 2, 3, 7][i]),
    )
        .prop_map(|(topo_seed, threshold, ops, executors)| Scenario {
            topo_seed,
            threshold,
            ops,
            executors,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of publishes, churn and recompiles through
    /// the async front-end stay bit-identical (outcomes AND epochs) to a
    /// synchronous broker applying the same sequence.
    #[test]
    fn interleaved_churn_matches_the_synchronous_reference(s in scenario_strategy()) {
        let broker = build(s.topo_seed, s.threshold, BASE_SUBS);
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            broker,
            // One shard keeps the submission order total; roomy queues
            // keep this a semantics test, not a backpressure test.
            ServingConfig {
                ingest_capacity: 256,
                egress_capacity: 256,
                max_batch: 4,
                flush_interval: Duration::from_micros(500),
                threads: Some(1),
                executors: Some(s.executors),
                shards: 1,
            },
            Box::new(sink.clone()),
        );
        let handle = server.handle();
        let mut reference = build(s.topo_seed, s.threshold, BASE_SUBS);

        let topo_nodes = TransitStubConfig::tiny()
            .generate(s.topo_seed)
            .unwrap()
            .stub_nodes()
            .to_vec();
        let mut expected = Vec::new();
        let mut live = Vec::new();
        let mut seq = 0u64;
        for (kind, pick, (x, w), (y, h)) in &s.ops {
            match kind % 8 {
                // Publishes dominate the mix.
                0..=4 => {
                    let event = Point::new(vec![*x, *y]).unwrap();
                    match handle.submit_now((*pick % 5) as u32, seq, event.clone()) {
                        Ok(()) => {
                            expected.push((seq, reference.epoch(), reference.publish(&event).unwrap()));
                        }
                        Err(r) => return Err(format!("submit rejected: {r}")),
                    }
                    seq += 1;
                }
                5 => {
                    let node = topo_nodes[pick % topo_nodes.len()];
                    let r = rect(*x, *w, *y, *h);
                    let staged = handle.subscribe(node, r.clone()).unwrap();
                    let referenced = reference.subscribe(node, r).unwrap();
                    prop_assert_eq!(staged, referenced, "handle allocation diverges");
                    live.push(staged);
                }
                6 if !live.is_empty() => {
                    let h = live.remove(pick % live.len());
                    handle.unsubscribe(h).unwrap();
                    reference.unsubscribe(h).unwrap();
                }
                _ => {
                    handle.recompile().unwrap();
                    reference.recompile().unwrap();
                }
            }
        }
        let (_broker, stats) = server.stop();
        prop_assert_eq!(stats.accepted, expected.len() as u64);
        prop_assert_eq!(stats.delivered, expected.len() as u64);

        let mut records = sink.take();
        records.sort_by_key(|r| r.seq);
        prop_assert_eq!(records.len(), expected.len());
        for (r, (seq, epoch, outcome)) in records.iter().zip(&expected) {
            prop_assert_eq!(r.seq, *seq);
            prop_assert_eq!(
                r.epoch, *epoch,
                "seq {}: record epoch {} vs reference {}", r.seq, r.epoch, epoch
            );
            match &r.outcome {
                Ok(out) => prop_assert_eq!(
                    out, outcome,
                    "staged outcome diverges from the synchronous broker at seq {}", r.seq
                ),
                Err(e) => return Err(format!("outcome failed without faults: {e}")),
            }
        }
    }
}
