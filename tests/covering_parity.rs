//! The covering-parity property: a broker compiled through the
//! subscription covering layer (duplicate interning, rectangle
//! subsumption, optional quantized merge) must be **bit-identical** in
//! every observable to the same broker compiled flat — matched
//! subscription ids, interested nodes, decisions, message costs down to
//! the last bit, and the cumulative `CostReport` — across `publish`,
//! `publish_batch`, and subscribe/unsubscribe churn followed by a
//! `recompile()`. Covering is a pure matcher-index transformation; if
//! any of these diverge, the expansion table lost or invented a
//! subscription.

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, CoveringConfig, PublishOutcome, SubscriptionHandle};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, TransitStubConfig};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
enum ChurnOp {
    Subscribe(SubSpec),
    /// Unsubscribes the live handle at this index (mod the live count).
    Unsubscribe(usize),
    /// Re-subscribes a duplicate of the live subscription at this index
    /// (mod the live count) — feeds the interning path during churn.
    Duplicate(usize),
}

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    groups: usize,
    algorithm: ClusteringAlgorithm,
    /// Index into [`covering_configs`].
    covering: usize,
    initial: Vec<SubSpec>,
    ops: Vec<ChurnOp>,
    events: Vec<(f64, f64)>,
}

/// The covering configurations under test: plain interning+subsumption,
/// aggressive subsumption, and the quantized merge pass.
fn covering_configs() -> [CoveringConfig; 3] {
    [
        CoveringConfig::default(),
        CoveringConfig {
            max_covers: 16,
            min_cover_members: 2,
            merge_cells: 0,
        },
        CoveringConfig {
            max_covers: 32,
            min_cover_members: 2,
            merge_cells: 24,
        },
    ]
}

fn sub_spec() -> impl Strategy<Value = SubSpec> {
    (
        0usize..100,
        // Coarse 0.5-grid origins/sizes so distinct specs often produce
        // the *same* rectangle — exercising interning and subsumption —
        // while fractional events still land on predicate boundaries.
        (0u8..18, 1u8..16),
        (0u8..18, 1u8..16),
    )
        .prop_map(|(node, (xo, xw), (yo, yw))| {
            (
                node,
                (f64::from(xo) * 0.5, f64::from(xw) * 0.5),
                (f64::from(yo) * 0.5, f64::from(yw) * 0.5),
            )
        })
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // 3:1:1 subscribe/unsubscribe/duplicate mix, encoded as a mapped
    // tuple (the vendored proptest shim has no `prop_oneof!`).
    let op = (0usize..5, sub_spec(), 0usize..64).prop_map(|(kind, spec, idx)| match kind {
        0..=2 => ChurnOp::Subscribe(spec),
        3 => ChurnOp::Unsubscribe(idx),
        _ => ChurnOp::Duplicate(idx),
    });
    (
        0u64..50,
        0.0f64..=1.0,
        1usize..5,
        0usize..4,
        0usize..3,
        prop::collection::vec(sub_spec(), 4..30),
        prop::collection::vec(op, 1..25),
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..20),
    )
        .prop_map(
            |(topo_seed, threshold, groups, alg, covering, initial, ops, events)| Scenario {
                topo_seed,
                threshold,
                groups,
                algorithm: ClusteringAlgorithm::ALL[alg],
                covering,
                initial,
                ops,
                events,
            },
        )
}

fn space_2d() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn spec_rect((_, (x, w), (y, h)): &SubSpec) -> Rect {
    Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

fn builder(s: &Scenario, subs: Vec<(NodeId, Rect)>, covering: Option<CoveringConfig>) -> Broker {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    let mut b = Broker::builder(topo, space_2d())
        .threshold(s.threshold)
        .clustering(ClusteringConfig::new(s.algorithm, s.groups).with_max_cells(30))
        .grid_cells(5)
        .subscriptions(subs);
    if let Some(config) = covering {
        b = b.covering(config);
    }
    b.build().unwrap()
}

fn assert_outcomes_eq(a: &PublishOutcome, b: &PublishOutcome) -> Result<(), String> {
    prop_assert_eq!(&a.matched_subscriptions, &b.matched_subscriptions);
    prop_assert_eq!(&a.interested, &b.interested);
    prop_assert_eq!(&a.decision, &b.decision);
    prop_assert_eq!(a.group_region, b.group_region);
    prop_assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
    prop_assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
    prop_assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// End-to-end parity of the covered and flat compiles: identical
    /// delivered sets and cost reports for per-event publishes, for the
    /// fused batch pipeline, and again after churn + recompile (the
    /// streaming registry compile path).
    #[test]
    fn covered_broker_is_bit_identical_to_flat(s in scenario_strategy()) {
        let config = covering_configs()[s.covering];
        let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
        let nodes = topo.stub_nodes().to_vec();
        let initial: Vec<(NodeId, Rect)> = s
            .initial
            .iter()
            .map(|spec| (nodes[spec.0 % nodes.len()], spec_rect(spec)))
            .collect();
        let mut flat = builder(&s, initial.clone(), None);
        let mut covered = builder(&s, initial, Some(config));

        prop_assert!(covered.covering_stats().is_some());
        prop_assert!(flat.covering_stats().is_none());
        let stats = *covered.covering_stats().unwrap();
        prop_assert_eq!(stats.concrete, s.initial.len());
        prop_assert!(stats.representatives <= stats.uniques);
        prop_assert!(stats.uniques <= stats.concrete);

        let events: Vec<Point> = s
            .events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();

        // Per-event publish parity.
        for event in &events {
            let a = covered.publish(event).unwrap();
            let b = flat.publish(event).unwrap();
            assert_outcomes_eq(&a, &b)?;
        }
        prop_assert_eq!(covered.report(), flat.report());

        // Fused batch pipeline parity (single- and multi-worker).
        for threads in [Some(1), Some(2)] {
            let a = covered.publish_batch(&events, threads).unwrap();
            let b = flat.publish_batch(&events, threads).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_outcomes_eq(x, y)?;
            }
            prop_assert_eq!(covered.report(), flat.report());
        }

        // Identical churn on both sides. Handles stay in lockstep
        // because both registries saw the same insertion sequence.
        let mut covered_handles: Vec<SubscriptionHandle> =
            covered.registry().live().map(|(h, _, _)| h).collect();
        let mut flat_handles: Vec<SubscriptionHandle> =
            flat.registry().live().map(|(h, _, _)| h).collect();
        for op in &s.ops {
            match op {
                ChurnOp::Subscribe(spec) => {
                    let node = nodes[spec.0 % nodes.len()];
                    covered_handles.push(covered.subscribe(node, spec_rect(spec)).unwrap());
                    flat_handles.push(flat.subscribe(node, spec_rect(spec)).unwrap());
                }
                ChurnOp::Unsubscribe(i) => {
                    if covered_handles.is_empty() {
                        continue;
                    }
                    let i = i % covered_handles.len();
                    covered.unsubscribe(covered_handles.swap_remove(i)).unwrap();
                    flat.unsubscribe(flat_handles.swap_remove(i)).unwrap();
                }
                ChurnOp::Duplicate(i) => {
                    if covered_handles.is_empty() {
                        continue;
                    }
                    let i = i % covered_handles.len();
                    let (node, rect) = {
                        let r = covered.registry();
                        let (_, node, rect) = r
                            .live()
                            .find(|(h, _, _)| *h == covered_handles[i])
                            .unwrap();
                        (node, rect.clone())
                    };
                    covered_handles.push(covered.subscribe(node, rect.clone()).unwrap());
                    flat_handles.push(flat.subscribe(node, rect).unwrap());
                }
            }
        }

        // Recompile both: covered takes the streaming covered registry
        // path, flat the collected bulk-load path. Still bit-identical.
        covered.recompile().unwrap();
        flat.recompile().unwrap();
        covered.reset_report();
        flat.reset_report();
        for event in &events {
            let a = covered.publish(event).unwrap();
            let b = flat.publish(event).unwrap();
            assert_outcomes_eq(&a, &b)?;
        }
        prop_assert_eq!(covered.report(), flat.report());

        // The covering stats survive the recompile and still describe
        // the post-churn population.
        let stats = covered.covering_stats().unwrap();
        prop_assert_eq!(stats.concrete, covered.registry().len());
    }

    /// Duplicate-heavy populations actually aggregate: with every
    /// subscription drawn from a pool much smaller than the population,
    /// the representative count must collapse to at most the pool size,
    /// while matching stays bit-identical to the flat build.
    #[test]
    fn duplicates_collapse_without_changing_matches(
        seed in 0u64..30,
        picks in prop::collection::vec((0usize..8, 0usize..100), 32..120),
        events in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..12),
    ) {
        let topo = TransitStubConfig::tiny().generate(seed).unwrap();
        let nodes = topo.stub_nodes().to_vec();
        // A pool of 8 distinct rectangles; every subscription picks one.
        let pool: Vec<Rect> = (0..8u8)
            .map(|i| {
                let lo = f64::from(i) * 0.7;
                Rect::from_corners(&[lo, lo * 0.5], &[lo + 3.0, lo * 0.5 + 2.5]).unwrap()
            })
            .collect();
        let subs: Vec<(NodeId, Rect)> = picks
            .iter()
            .map(|&(p, n)| (nodes[n % nodes.len()], pool[p].clone()))
            .collect();

        let scenario = Scenario {
            topo_seed: seed,
            threshold: 0.5,
            groups: 2,
            algorithm: ClusteringAlgorithm::ALL[0],
            covering: 0,
            initial: Vec::new(),
            ops: Vec::new(),
            events: Vec::new(),
        };
        let mut flat = builder(&scenario, subs.clone(), None);
        let mut covered = builder(&scenario, subs, Some(CoveringConfig::default()));

        let stats = covered.covering_stats().unwrap();
        prop_assert_eq!(stats.concrete, picks.len());
        prop_assert!(stats.uniques <= 8, "uniques = {}", stats.uniques);
        prop_assert!(stats.representatives <= stats.uniques);

        for &(x, y) in &events {
            let event = Point::new(vec![x, y]).unwrap();
            let a = covered.publish(&event).unwrap();
            let b = flat.publish(&event).unwrap();
            assert_outcomes_eq(&a, &b)?;
        }
        prop_assert_eq!(covered.report(), flat.report());
    }
}
