//! Model-based property tests for subscription-handle safety: random
//! interleavings of subscribe / unsubscribe / recompile, checked against
//! a plain list model. Stale and double-freed handles must always be
//! rejected, live handles must always resolve, and the registry must
//! agree with the model after every step.

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, BrokerError, SubscriptionHandle};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, TransitStubConfig};

fn build(topo_seed: u64) -> (Broker, Vec<NodeId>) {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let broker = Broker::builder(topo, space)
        .threshold(0.15)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5)
        .subscription(
            nodes[0],
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
        )
        .build()
        .unwrap();
    (broker, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn handles_stay_safe_under_random_churn(
        topo_seed in 0u64..20,
        ops in prop::collection::vec(
            (0u8..4, 0usize..100, (0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
            1..40,
        ),
        probe in (0.0f64..10.0, 0.0f64..10.0),
    ) {
        let (mut broker, nodes) = build(topo_seed);
        // The model: live handles with their (node, rect), plus every
        // handle ever freed.
        let mut live: Vec<(SubscriptionHandle, NodeId, Rect)> = broker
            .registry()
            .live()
            .map(|(h, n, r)| (h, n, r.clone()))
            .collect();
        let mut dead: Vec<SubscriptionHandle> = Vec::new();

        for (kind, pick, (x, w), (y, h)) in &ops {
            match kind {
                0 | 3 => {
                    let node = nodes[pick % nodes.len()];
                    let rect = Rect::from_corners(
                        &[*x, *y],
                        &[(x + w).min(10.0), (y + h).min(10.0)],
                    )
                    .unwrap();
                    let handle = broker.subscribe(node, rect.clone()).unwrap();
                    // A fresh handle never aliases a live or dead one.
                    prop_assert!(live.iter().all(|(hh, _, _)| *hh != handle));
                    prop_assert!(dead.iter().all(|hh| *hh != handle));
                    live.push((handle, node, rect));
                    if *kind == 3 {
                        broker.recompile().unwrap();
                    }
                }
                1 if !live.is_empty() => {
                    let (handle, _, _) = live.remove(pick % live.len());
                    broker.unsubscribe(handle).unwrap();
                    dead.push(handle);
                }
                _ if !dead.is_empty() => {
                    // Stale handle: must fail, must not disturb state.
                    let handle = dead[pick % dead.len()];
                    let err = broker.unsubscribe(handle).unwrap_err();
                    prop_assert!(matches!(err, BrokerError::UnknownHandle { .. }));
                }
                _ => {}
            }

            // Registry agrees with the model after every operation.
            let got: Vec<(SubscriptionHandle, NodeId)> = broker
                .registry()
                .live()
                .map(|(hh, n, _)| (hh, n))
                .collect();
            let mut want: Vec<(SubscriptionHandle, NodeId)> =
                live.iter().map(|(hh, n, _)| (*hh, *n)).collect();
            // `live()` iterates in insertion order; model removal keeps
            // relative order, so both sides match element-wise after a
            // stable sort by handle.
            let mut got_sorted = got.clone();
            got_sorted.sort_by_key(|(hh, _)| hh.raw());
            want.sort_by_key(|(hh, _)| hh.raw());
            prop_assert_eq!(got_sorted, want);
        }

        // Matching only ever reaches live subscribers.
        let event = Point::new(vec![probe.0, probe.1]).unwrap();
        let (subs, matched) = broker.match_only(&event);
        for n in &matched {
            prop_assert!(live.iter().any(|(_, node, _)| node == n));
        }
        // And matched subscription ids resolve to live handles.
        for id in &subs {
            if let Some(handle) = broker.handle_of(*id) {
                prop_assert!(live.iter().any(|(hh, _, _)| *hh == handle));
            }
        }
    }
}
