//! Process-level chaos tests for the supervised staged server.
//!
//! The contract under stage crashes: an accepted event (`Ok` from
//! `submit`) produces **exactly one** sink record no matter which stage
//! threads die, when, or how often — the supervisor salvages in-flight
//! work, rebuilds the broker from its durable journal, and replays.
//! Control operations (subscribe through the serving front) survive the
//! same way: their effects are journaled before the ack, so a recovered
//! broker carries every acked subscription.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, JournalConfig};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::server::{
    CollectorSink, CrashKind, CrashPlan, IngestHandle, RejectReason, ServingConfig,
    SuperviseOptions, SupervisedServer,
};

/// Unique scratch directory per test case (proptest reruns included).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pubsub-srec-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn space() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn builder(topo_seed: u64) -> pubsub::core::BrokerBuilder {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    Broker::builder(topo, space())
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5)
}

/// A journaled broker with one wide-open subscription (journaled, so
/// recovery reproduces it), plus the recover closure the supervisor
/// uses to rebuild from the same journal directory.
fn journaled_broker(topo_seed: u64, dir: &PathBuf) -> (Broker, SuperviseOptions) {
    let mut broker = builder(topo_seed)
        .journal(JournalConfig::new(dir))
        .build()
        .unwrap();
    let node = {
        let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
        topo.stub_nodes()[0]
    };
    broker
        .subscribe(
            node,
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
        )
        .unwrap();
    let recover_dir = dir.clone();
    let options = SuperviseOptions {
        recover: Some(Box::new(move || {
            builder(topo_seed)
                .journal(JournalConfig::new(&recover_dir))
                .recover()
        })),
        chaos: CrashPlan::new(),
    };
    (broker, options)
}

/// Submits until accepted, absorbing shed rejections (the crash window
/// backs the ingest queue up; the shed hint says when to come back).
fn submit_patiently(handle: &IngestHandle, seq: u64, point: Point) -> Result<(), String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        match handle.submit_now(0, seq, point.clone()) {
            Ok(()) => return Ok(()),
            Err(RejectReason::Shed { retry_after_ms }) => {
                if std::time::Instant::now() > deadline {
                    return Err(format!("seq {seq} still shed after 20s"));
                }
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(5)));
            }
            Err(r) => return Err(format!("seq {seq} rejected: {r}")),
        }
    }
}

fn small_config(executors: usize, max_batch: usize) -> ServingConfig {
    ServingConfig {
        ingest_capacity: 16,
        egress_capacity: 16,
        max_batch,
        flush_interval: Duration::from_micros(500),
        threads: Some(1),
        executors: Some(executors),
        shards: 1,
    }
}

#[derive(Debug, Clone)]
struct Chaos {
    topo_seed: u64,
    crash_seed: u64,
    crashes: usize,
    executors: usize,
    max_batch: usize,
    events: Vec<(f64, f64)>,
    /// Every `control_every`-th submit also pushes a subscribe control
    /// op through the pipeline (they must survive crashes too).
    control_every: usize,
}

fn chaos_strategy() -> impl Strategy<Value = Chaos> {
    (
        0u64..10,
        0u64..u64::MAX,
        1usize..4,
        (0usize..3).prop_map(|i| [1usize, 2, 3][i]),
        1usize..3,
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 40..90),
        7usize..20,
    )
        .prop_map(
            |(topo_seed, crash_seed, crashes, executors, max_batch, events, control_every)| Chaos {
                topo_seed,
                crash_seed,
                crashes,
                executors,
                max_batch,
                events,
                control_every,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Seeded kills of arbitrary stages at arbitrary progress points:
    /// every accepted event still reaches the sink exactly once, every
    /// acked control op survives into the recovered broker, and the
    /// supervisor's counters agree with the broker's.
    #[test]
    fn chaos_crashes_preserve_accepted_events(s in chaos_strategy()) {
        let dir = scratch_dir("chaos");
        let (broker, mut options) = journaled_broker(s.topo_seed, &dir);
        options.chaos = CrashPlan::seeded(s.crash_seed, s.crashes, s.executors);
        let plan_len = options.chaos.events().len();

        let sink = CollectorSink::new();
        let server = SupervisedServer::start(
            broker,
            small_config(s.executors, s.max_batch),
            Box::new(sink.clone()),
            options,
        );
        let handle = server.handle();

        let node = TransitStubConfig::tiny()
            .generate(s.topo_seed)
            .unwrap()
            .stub_nodes()[1];
        let mut control_acks = 0u64;
        for (i, &(x, y)) in s.events.iter().enumerate() {
            let seq = i as u64 + 1;
            let point = Point::new(vec![x, y]).unwrap();
            submit_patiently(&handle, seq, point)?;
            if i % s.control_every == s.control_every - 1 {
                // A blocking control op racing the crash schedule: its
                // ack means the subscription is journaled and durable.
                let rect = Rect::from_corners(&[0.0, 0.0], &[1.0 + (i % 9) as f64, 2.0])
                    .unwrap();
                handle
                    .subscribe(node, rect)
                    .map_err(|e| format!("control op failed: {e}"))?;
                control_acks += 1;
            }
        }

        let (broker, stats) = server
            .stop()
            .map_err(|e| format!("supervised stop failed: {e}"))?;
        let records = sink.take();

        // Exactly-once: each accepted seq produced one record.
        prop_assert_eq!(stats.accepted, s.events.len() as u64);
        prop_assert_eq!(stats.delivered + stats.failed, stats.accepted);
        prop_assert_eq!(stats.failed, 0, "no faults installed");
        prop_assert_eq!(records.len() as u64, stats.accepted);
        let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(
            seqs.len() as u64, stats.accepted,
            "a crash duplicated or dropped a sink record"
        );

        // Every acked control op survived into the final broker (the
        // initial wide-open subscription plus one per control ack).
        prop_assert_eq!(
            broker.registry().live().count() as u64,
            1 + control_acks
        );

        // Counters line up across the supervisor and the broker.
        prop_assert!(stats.restarts <= plan_len as u64);
        prop_assert!(stats.replayed_batches <= stats.restarts);
        prop_assert_eq!(broker.recovery_counters().restarts, stats.restarts);
        prop_assert_eq!(
            broker.recovery_counters().replayed_batches,
            stats.replayed_batches
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A plan that provably fires on all three stages: the pipeline loses
/// an executor, the fold (broker owner), and the egress thread, and
/// still delivers every accepted event exactly once.
#[test]
fn every_stage_crash_is_survived_exactly_once() {
    let dir = scratch_dir("stages");
    let (broker, mut options) = journaled_broker(5, &dir);
    options.chaos = CrashPlan::new()
        .kill(CrashKind::KillExecutor(0), 1)
        .kill(CrashKind::KillFold, 2)
        .kill(CrashKind::KillEgress, 2);

    let sink = CollectorSink::new();
    let server =
        SupervisedServer::start(broker, small_config(1, 1), Box::new(sink.clone()), options);
    let handle = server.handle();
    let total = 30u64;
    for seq in 1..=total {
        let point = Point::new(vec![(seq % 10) as f64, 5.0]).unwrap();
        submit_patiently(&handle, seq, point).unwrap();
    }
    let (broker, stats) = server.stop().unwrap();

    assert_eq!(stats.restarts, 3, "all three scheduled kills fired");
    assert_eq!(
        stats.replayed_batches, 3,
        "each kill fired with an item in flight, each was replayed"
    );
    assert_eq!(stats.accepted, total);
    assert_eq!(stats.delivered, total);
    let mut seqs: Vec<u64> = sink.take().iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=total).collect::<Vec<_>>(), "exactly once each");
    assert_eq!(broker.recovery_counters().restarts, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Whole-process "crash": bring a journaled serving stack down, rebuild
/// the broker from the journal alone, and serve again — the recovered
/// server still matches against every subscription acked before the
/// crash.
#[test]
fn whole_server_restart_recovers_subscriptions_from_journal() {
    let dir = scratch_dir("restart");
    let (broker, options) = journaled_broker(7, &dir);

    let sink = CollectorSink::new();
    let server =
        SupervisedServer::start(broker, small_config(2, 2), Box::new(sink.clone()), options);
    let handle = server.handle();
    let node = TransitStubConfig::tiny().generate(7).unwrap().stub_nodes()[2];
    handle
        .subscribe(node, Rect::from_corners(&[2.0, 2.0], &[8.0, 8.0]).unwrap())
        .unwrap();
    submit_patiently(&handle, 1, Point::new(vec![5.0, 5.0]).unwrap()).unwrap();
    let (_gone, stats) = server.stop().unwrap();
    assert_eq!(stats.delivered, 1);
    // The pre-crash broker is dropped here without any farewell: the
    // journal directory is all that survives.

    let recovered = builder(7)
        .journal(JournalConfig::new(&dir))
        .recover()
        .unwrap();
    assert_eq!(
        recovered.registry().live().count(),
        2,
        "both acked subscriptions recovered"
    );
    let sink2 = CollectorSink::new();
    let server = SupervisedServer::start(
        recovered,
        small_config(2, 2),
        Box::new(sink2.clone()),
        SuperviseOptions::default(),
    );
    let handle = server.handle();
    submit_patiently(&handle, 1, Point::new(vec![5.0, 5.0]).unwrap()).unwrap();
    let (_broker, stats) = server.stop().unwrap();
    assert_eq!(stats.delivered, 1);
    let record = &sink2.take()[0];
    let outcome = record.outcome.as_ref().expect("matched cleanly");
    assert!(
        !outcome.interested.is_empty(),
        "recovered subscriptions still match events"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
