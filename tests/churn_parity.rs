//! The churn-parity property: any interleaving of subscribe/unsubscribe,
//! followed by `recompile()`, leaves the broker bit-identical to a fresh
//! `BrokerBuilder::build()` over the surviving subscriptions — same
//! subscription ids, same match sets, same decisions, same message costs
//! to the last bit. Before the recompile, the overlay-merged matching
//! path must already agree with a fresh build on who is interested.

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, SubscriptionHandle};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, TransitStubConfig};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
enum ChurnOp {
    Subscribe(SubSpec),
    /// Unsubscribes the live handle at this index (mod the live count).
    Unsubscribe(usize),
}

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    groups: usize,
    algorithm: ClusteringAlgorithm,
    initial: Vec<SubSpec>,
    ops: Vec<ChurnOp>,
    events: Vec<(f64, f64)>,
}

fn sub_spec() -> impl Strategy<Value = SubSpec> {
    (
        0usize..100,
        (0.0f64..9.0, 0.5f64..8.0),
        (0.0f64..9.0, 0.5f64..8.0),
    )
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // 3:2 subscribe/unsubscribe mix, encoded as a mapped tuple (the
    // vendored proptest shim has no `prop_oneof!`).
    let op = (0usize..5, sub_spec(), 0usize..64).prop_map(|(kind, spec, idx)| {
        if kind < 3 {
            ChurnOp::Subscribe(spec)
        } else {
            ChurnOp::Unsubscribe(idx)
        }
    });
    (
        0u64..50,
        0.0f64..=1.0,
        1usize..5,
        0usize..4,
        prop::collection::vec(sub_spec(), 1..15),
        prop::collection::vec(op, 1..25),
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..20),
    )
        .prop_map(
            |(topo_seed, threshold, groups, alg, initial, ops, events)| Scenario {
                topo_seed,
                threshold,
                groups,
                algorithm: ClusteringAlgorithm::ALL[alg],
                initial,
                ops,
                events,
            },
        )
}

fn space_2d() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn spec_rect((_, (x, w), (y, h)): &SubSpec) -> Rect {
    Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

fn builder(s: &Scenario, subs: Vec<(NodeId, Rect)>) -> Broker {
    builder_refresh(s, subs, 64)
}

fn builder_refresh(s: &Scenario, subs: Vec<(NodeId, Rect)>, every: usize) -> Broker {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    Broker::builder(topo, space_2d())
        .threshold(s.threshold)
        .clustering(ClusteringConfig::new(s.algorithm, s.groups).with_max_cells(30))
        .grid_cells(5)
        .local_refresh_every(every)
        .subscriptions(subs)
        .build()
        .unwrap()
}

/// The group members implied by the live subscriptions under the
/// broker's current partition: node `n` belongs to group `q` iff some
/// live subscription of `n` (clamped to the space) touches a cell of
/// `q`. This is the refcount-derived member set that `recompile`'s
/// debug_assert checks internally.
fn derived_members(b: &Broker) -> Vec<Vec<NodeId>> {
    let part = b.partition();
    let mut members = vec![std::collections::BTreeSet::new(); b.groups().len()];
    for (_, node, rect) in b.registry().live() {
        let clamped = b.space().clamp(rect);
        for cell in part.grid().cells_intersecting(&clamped) {
            if let Some(q) = part.group_of_cell(cell) {
                members[q].insert(node);
            }
        }
    }
    members
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn churn_then_recompile_is_bit_identical_to_fresh_build(s in scenario_strategy()) {
        let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
        let nodes = topo.stub_nodes().to_vec();
        let initial: Vec<(NodeId, Rect)> = s
            .initial
            .iter()
            .map(|spec| (nodes[spec.0 % nodes.len()], spec_rect(spec)))
            .collect();
        let mut live = builder(&s, initial);

        // Apply the interleaving, tracking live handles ourselves.
        let mut handles: Vec<SubscriptionHandle> =
            live.registry().live().map(|(h, _, _)| h).collect();
        for op in &s.ops {
            match op {
                ChurnOp::Subscribe(spec) => {
                    let node = nodes[spec.0 % nodes.len()];
                    handles.push(live.subscribe(node, spec_rect(spec)).unwrap());
                }
                ChurnOp::Unsubscribe(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let h = handles.swap_remove(i % handles.len());
                    live.unsubscribe(h).unwrap();
                }
            }
        }
        prop_assert_eq!(live.registry().len(), handles.len());

        // A fresh broker over the survivors, in registry (insertion)
        // order — the order recompile compiles them in.
        let survivors: Vec<(NodeId, Rect)> = live
            .registry()
            .live()
            .map(|(_, n, r)| (n, r.clone()))
            .collect();
        let mut fresh = builder(&s, survivors);

        // Overlay-merged matching already agrees on the interested sets
        // (subscription ids and groups may differ until the recompile).
        for &(x, y) in &s.events {
            let event = Point::new(vec![x, y]).unwrap();
            let (live_subs, live_nodes) = live.match_only(&event);
            let (fresh_subs, fresh_nodes) = fresh.match_only(&event);
            prop_assert_eq!(&live_nodes, &fresh_nodes);
            prop_assert_eq!(live_subs.len(), fresh_subs.len());
            // Every matched id maps back to a live handle.
            for &id in &live_subs {
                prop_assert!(live.handle_of(id).is_some());
            }
        }

        // After the recompile every probed epoch must be bit-identical:
        // ids, decisions, and all three costs.
        live.recompile().unwrap();
        live.reset_report();
        for &(x, y) in &s.events {
            let event = Point::new(vec![x, y]).unwrap();
            let a = live.publish(&event).unwrap();
            let b = fresh.publish(&event).unwrap();
            prop_assert_eq!(&a.matched_subscriptions, &b.matched_subscriptions);
            prop_assert_eq!(&a.interested, &b.interested);
            prop_assert_eq!(&a.decision, &b.decision);
            prop_assert_eq!(a.group_region, b.group_region);
            prop_assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
            prop_assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
            prop_assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
        }
        prop_assert_eq!(live.report(), fresh.report());

        // The groups and partition themselves match the fresh compile.
        prop_assert_eq!(live.groups().len(), fresh.groups().len());
        for q in 0..live.groups().len() {
            prop_assert_eq!(live.groups().members(q), fresh.groups().members(q));
        }
    }

    /// The exact-groups invariant at local-refresh boundaries: with
    /// `local_refresh_every(1)` every churn op runs the local-refresh
    /// path, and after each op the snapshot's multicast groups must
    /// equal the members derived from the live subscriptions and the
    /// current partition — the op's own membership delta must survive
    /// the refresh.
    #[test]
    fn groups_stay_exact_across_local_refreshes(s in scenario_strategy()) {
        let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
        let nodes = topo.stub_nodes().to_vec();
        let initial: Vec<(NodeId, Rect)> = s
            .initial
            .iter()
            .map(|spec| (nodes[spec.0 % nodes.len()], spec_rect(spec)))
            .collect();
        let mut live = builder_refresh(&s, initial, 1);

        let mut handles: Vec<SubscriptionHandle> =
            live.registry().live().map(|(h, _, _)| h).collect();
        for op in &s.ops {
            match op {
                ChurnOp::Subscribe(spec) => {
                    let node = nodes[spec.0 % nodes.len()];
                    handles.push(live.subscribe(node, spec_rect(spec)).unwrap());
                }
                ChurnOp::Unsubscribe(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let h = handles.swap_remove(i % handles.len());
                    live.unsubscribe(h).unwrap();
                }
            }
            let derived = derived_members(&live);
            for (q, expected) in derived.iter().enumerate() {
                prop_assert_eq!(
                    live.groups().members(q),
                    &expected[..],
                    "group {} members drifted from the live subscriptions",
                    q
                );
            }
        }
    }
}
