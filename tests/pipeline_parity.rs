//! The fused-pipeline parity property: `publish_batch` on the persistent
//! worker pool is bit-identical to a sequential `publish` loop — same
//! subscription ids, interested nodes, decisions and message costs to
//! the last bit, and the same cumulative report — for any worker count,
//! on a freshly compiled snapshot AND mid-churn with a non-empty overlay
//! and tombstones. Also exercises pool sharing (two brokers, one pool)
//! and clean shutdown on drop.

use std::sync::Arc;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, CostReport, DeliveryMode, PublishOutcome};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{NodeId, TransitStubConfig};
use pubsub::parallel::WorkerPool;

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    groups: usize,
    algorithm: ClusteringAlgorithm,
    delivery: usize,
    subs: Vec<SubSpec>,
    /// Overlay churn applied before the mid-churn probe: subscriptions
    /// to add live and how many of the compiled ones to tombstone.
    added: Vec<SubSpec>,
    removed: usize,
    events: Vec<(f64, f64)>,
}

fn sub_spec() -> impl Strategy<Value = SubSpec> {
    (
        0usize..100,
        (0.0f64..9.0, 0.5f64..8.0),
        (0.0f64..9.0, 0.5f64..8.0),
    )
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u64..50,
        0.0f64..=1.0,
        1usize..5,
        0usize..4,
        0usize..3,
        prop::collection::vec(sub_spec(), 2..12),
        prop::collection::vec(sub_spec(), 1..6),
        1usize..3,
        // Straddles BLOCK (64): small batches exercise the inline path,
        // large ones the pooled multi-block path.
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..220),
    )
        .prop_map(
            |(topo_seed, threshold, groups, alg, delivery, subs, added, removed, events)| {
                Scenario {
                    topo_seed,
                    threshold,
                    groups,
                    algorithm: ClusteringAlgorithm::ALL[alg],
                    delivery,
                    subs,
                    added,
                    removed,
                    events,
                }
            },
        )
}

fn space_2d() -> Space {
    Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap()
}

fn spec_rect((_, (x, w), (y, h)): &SubSpec) -> Rect {
    Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap()
}

fn build_broker(s: &Scenario, pool: Option<Arc<WorkerPool>>) -> (Broker, Vec<NodeId>) {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let delivery = match s.delivery {
        0 => DeliveryMode::DenseMode,
        1 => DeliveryMode::SparseMode {
            rendezvous: *topo.transit_nodes().first().unwrap(),
        },
        _ => DeliveryMode::ApplicationLevel,
    };
    let subs: Vec<(NodeId, Rect)> = s
        .subs
        .iter()
        .map(|spec| (nodes[spec.0 % nodes.len()], spec_rect(spec)))
        .collect();
    // High drift threshold: the mid-churn probe needs the overlay and
    // tombstones to survive the scenario's churn, not be recompiled away.
    let mut builder = Broker::builder(topo, space_2d())
        .threshold(s.threshold)
        .clustering(ClusteringConfig::new(s.algorithm, s.groups).with_max_cells(30))
        .grid_cells(5)
        .delivery_mode(delivery)
        .recluster_fraction(100.0)
        .subscriptions(subs);
    if let Some(pool) = pool {
        builder = builder.worker_pool(pool);
    }
    (builder.build().unwrap(), nodes)
}

/// Applies the scenario's churn so the broker has a non-empty overlay
/// AND non-empty tombstones (live brokers only; recompiles triggered by
/// drift would clear both, so churn volume is kept small by strategy).
fn apply_churn(broker: &mut Broker, s: &Scenario, nodes: &[NodeId]) {
    let handles: Vec<_> = broker.registry().live().map(|(h, _, _)| h).collect();
    for spec in &s.added {
        broker
            .subscribe(nodes[spec.0 % nodes.len()], spec_rect(spec))
            .unwrap();
    }
    for h in handles.iter().take(s.removed) {
        broker.unsubscribe(*h).unwrap();
    }
}

fn events_of(s: &Scenario) -> Vec<Point> {
    s.events
        .iter()
        .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
        .collect()
}

fn assert_outcomes_identical(batch: &[PublishOutcome], sequential: &[PublishOutcome]) {
    assert_eq!(batch.len(), sequential.len());
    for (a, b) in batch.iter().zip(sequential) {
        assert_eq!(a.matched_subscriptions, b.matched_subscriptions);
        assert_eq!(a.interested, b.interested);
        assert_eq!(a.decision, b.decision);
        assert_eq!(a.group_region, b.group_region);
        assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
        assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
        assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
    }
}

fn assert_reports_identical(a: &CostReport, b: &CostReport) {
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.scheme_cost.to_bits(), b.scheme_cost.to_bits());
    assert_eq!(a.unicast_cost.to_bits(), b.unicast_cost.to_bits());
    assert_eq!(a.ideal_cost.to_bits(), b.ideal_cost.to_bits());
    assert_eq!(a.wasted_deliveries, b.wasted_deliveries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Pooled `publish_batch` == sequential `publish` loop, bit for bit,
    /// for thread counts below, at, and above the pool size — compiled
    /// snapshot and mid-churn (non-empty overlay + tombstones), across
    /// all three delivery modes.
    #[test]
    fn pooled_batch_is_bit_identical_to_sequential_publish(s in scenario_strategy()) {
        let pool = Arc::new(WorkerPool::new(4));
        let events = events_of(&s);
        for threads in [1usize, 2, 3, 7, pool.threads()] {
            for churned in [false, true] {
                let (mut batch_broker, nodes) = build_broker(&s, Some(Arc::clone(&pool)));
                let (mut seq_broker, _) = build_broker(&s, None);
                if churned {
                    apply_churn(&mut batch_broker, &s, &nodes);
                    apply_churn(&mut seq_broker, &s, &nodes);
                    prop_assert_eq!(
                        batch_broker.churn_counters().overlay_len,
                        s.added.len()
                    );
                    prop_assert!(batch_broker.churn_counters().tombstone_len > 0);
                }
                let batch = batch_broker.publish_batch(&events, Some(threads)).unwrap();
                let sequential: Vec<_> = events
                    .iter()
                    .map(|e| seq_broker.publish(e).unwrap())
                    .collect();
                assert_outcomes_identical(&batch, &sequential);
                assert_reports_identical(batch_broker.report(), seq_broker.report());
                prop_assert_eq!(
                    batch_broker.scheme_cost_walks(),
                    seq_broker.scheme_cost_walks()
                );
            }
        }
    }

    /// `publish_batch_stats` advances the report exactly as
    /// `publish_batch` does — same bits — without materializing
    /// outcomes, and repeated batches stop growing the arenas.
    #[test]
    fn stats_path_matches_outcome_path(s in scenario_strategy()) {
        let events = events_of(&s);
        let (mut with_outcomes, _) = build_broker(&s, None);
        let (mut stats_only, _) = build_broker(&s, None);
        for _ in 0..3 {
            with_outcomes.publish_batch(&events, Some(2)).unwrap();
            let report = stats_only.publish_batch_stats(&events, Some(2)).unwrap();
            assert_reports_identical(&report, with_outcomes.report());
        }
        let counters = stats_only.pipeline_counters();
        prop_assert_eq!(counters.batches, 3);
        prop_assert_eq!(counters.events, 3 * events.len() as u64);
        // Identical batches: only the first can grow the arenas.
        prop_assert!(counters.arena_growths <= 1);
    }
}

/// One pool serving two brokers concurrently-in-sequence: the pool
/// serializes whole jobs, so interleaved batches from different brokers
/// stay correct and bit-identical to sequential publishing.
#[test]
fn one_pool_serves_two_brokers() {
    let pool = Arc::new(WorkerPool::new(3));
    let topo_a = TransitStubConfig::tiny().generate(7).unwrap();
    let topo_b = TransitStubConfig::tiny().generate(8).unwrap();
    let rect = |a: f64, b: f64| Rect::from_corners(&[a, a], &[b, b]).unwrap();
    let mut broker_a = Broker::builder(topo_a.clone(), space_2d())
        .worker_pool(Arc::clone(&pool))
        .subscription(topo_a.stub_nodes()[0], rect(0.0, 6.0))
        .subscription(topo_a.stub_nodes()[1], rect(2.0, 9.0))
        .build()
        .unwrap();
    let mut broker_b = Broker::builder(topo_b.clone(), space_2d())
        .worker_pool(Arc::clone(&pool))
        .subscription(topo_b.stub_nodes()[2], rect(1.0, 5.0))
        .build()
        .unwrap();
    let events: Vec<Point> = (0..300)
        .map(|i| Point::new(vec![(i % 10) as f64, (i % 7) as f64 + 0.5]).unwrap())
        .collect();
    for _ in 0..2 {
        let out_a = broker_a.publish_batch(&events, Some(3)).unwrap();
        let out_b = broker_b.publish_batch(&events, Some(3)).unwrap();
        assert_eq!(out_a.len(), events.len());
        assert_eq!(out_b.len(), events.len());
    }
    let mut seq_a = Broker::builder(topo_a.clone(), space_2d())
        .subscription(topo_a.stub_nodes()[0], rect(0.0, 6.0))
        .subscription(topo_a.stub_nodes()[1], rect(2.0, 9.0))
        .build()
        .unwrap();
    for _ in 0..2 {
        for event in &events {
            seq_a.publish(event).unwrap();
        }
    }
    assert_eq!(broker_a.report(), seq_a.report());
    assert!(broker_a.pipeline_counters().pooled_batches >= 1);
}

/// Dropping brokers and the last pool handle joins all workers cleanly
/// (shutdown is observable as the drop returning at all — a leaked or
/// deadlocked worker would hang the test binary).
#[test]
fn pool_shutdown_joins_cleanly_after_broker_drop() {
    let pool = Arc::new(WorkerPool::new(2));
    let topo = TransitStubConfig::tiny().generate(3).unwrap();
    let node = topo.stub_nodes()[0];
    let mut broker = Broker::builder(topo, space_2d())
        .worker_pool(Arc::clone(&pool))
        .subscription(node, Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).unwrap())
        .build()
        .unwrap();
    let events: Vec<Point> = (0..200)
        .map(|i| Point::new(vec![(i % 10) as f64, 2.0]).unwrap())
        .collect();
    broker.publish_batch(&events, Some(2)).unwrap();
    drop(broker);
    assert_eq!(Arc::strong_count(&pool), 1);
    drop(pool); // joins the workers; must not hang or panic
}
