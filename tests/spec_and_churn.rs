//! Integration tests for the extension features: the predicate language
//! feeding the broker, incremental clustering tracking a churning
//! population, and the adaptive controller beating a fixed threshold.

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig, IncrementalClusterer};
use pubsub::core::{AdaptiveConfig, AdaptiveController, Broker, Predicate, SubscriptionSpec};
use pubsub::geom::{Grid, Interval, Point};
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn specs_compile_and_match_through_the_broker() {
    let topology = TransitStubConfig::tiny().generate(3).unwrap();
    let space = stock_space();
    let nodes = topology.stub_nodes().to_vec();

    // "Buy or sell events for name in (9,10], quote between 8 and 10,
    // any volume" — the bst disjunction decomposes into two rectangles.
    let spec = SubscriptionSpec::new()
        .attr(
            "bst",
            Predicate::any_of(vec![
                Interval::new(-1.0, 0.0).unwrap(), // B
                Interval::new(0.0, 1.0).unwrap(),  // S
            ]),
        )
        .attr("name", Predicate::range(9.0, 10.0))
        .attr("quote", Predicate::range(8.0, 10.0));
    assert_eq!(spec.rectangle_count(), 2);
    let rects = spec.compile(&space).unwrap();

    let mut builder = Broker::builder(topology, space);
    for r in rects {
        builder = builder.subscription(nodes[0], r);
    }
    let mut broker = builder.build().unwrap();

    // A matching "buy" event.
    let hit = broker
        .publish(&Point::new(vec![0.0, 9.5, 9.0, 3.0]).unwrap())
        .unwrap();
    assert_eq!(hit.interested, vec![nodes[0]]);
    // Only one of the decomposed rectangles matches (they are disjoint).
    assert_eq!(hit.matched_subscriptions.len(), 1);

    // A "transaction" event (bst = 2) matches neither rectangle.
    let miss = broker
        .publish(&Point::new(vec![2.0, 9.5, 9.0, 3.0]).unwrap())
        .unwrap();
    assert!(miss.interested.is_empty());
}

#[test]
fn incremental_clusterer_tracks_the_full_recluster() {
    // After arbitrary churn, a *fresh* full clustering over the same
    // subscriptions and the incremental model must see identical cell
    // memberships (the partition may differ - maintenance is heuristic -
    // but the underlying model must be exact).
    let topology = TransitStubConfig::riabov().generate(51).unwrap();
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, 52)
        .unwrap();
    let space = stock_space();
    let mut nodes: Vec<_> = topology.stub_nodes().to_vec();
    nodes.sort_unstable();
    let index_of = |n| nodes.binary_search(&n).unwrap();

    let grid = Grid::uniform(space.bounds().clone(), 8).unwrap();
    let mut inc = IncrementalClusterer::new(
        grid.clone(),
        nodes.len(),
        |_| 0.01,
        ClusteringConfig::new(ClusteringAlgorithm::MinimumSpanningTree, 7),
        0.5,
    )
    .unwrap();

    let mut handles = Vec::new();
    for p in &placed {
        handles.push(inc.insert(index_of(p.node), space.clamp(&p.rect)).unwrap());
    }
    // Remove every third subscription.
    let mut kept = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        if i % 3 == 0 {
            inc.remove(h).unwrap();
        } else {
            kept.push(i);
        }
    }
    assert_eq!(inc.len(), kept.len());

    // Reference model built from scratch over the survivors.
    let survivors: Vec<(usize, pubsub::geom::Rect)> = kept
        .iter()
        .map(|&i| (index_of(placed[i].node), space.clamp(&placed[i].rect)))
        .collect();
    let reference =
        pubsub::clustering::GridModel::build(grid, nodes.len(), &survivors, |_| 0.01).unwrap();
    let incremental = inc.model();
    for c in 0..reference.grid().cell_count() {
        let cell = pubsub::geom::CellId(c);
        assert_eq!(
            incremental.members(cell),
            reference.members(cell),
            "cell {c} memberships diverged"
        );
    }
}

#[test]
fn adaptive_thresholds_do_not_regress_below_global_best() {
    // On the paper workload, learned per-group thresholds must perform at
    // least as well as the global t = 0.15 they start from.
    let topology = TransitStubConfig::riabov().generate(1903).unwrap();
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, 2003)
        .unwrap();
    let model = Modes::Nine.model();
    let density = model.clone();
    let mut broker = Broker::builder(topology, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 11))
        .threshold(0.15)
        .density(move |r| density.mass(r))
        .build()
        .unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let train: Vec<Point> = (0..3000).map(|_| model.sample(&mut rng)).collect();
    let eval: Vec<Point> = (0..3000).map(|_| model.sample(&mut rng)).collect();

    let mut controller = AdaptiveController::for_broker(&broker, AdaptiveConfig::default());
    for e in &train {
        let out = broker.publish(e).unwrap();
        controller.observe(&out);
    }
    broker.reset_report();
    for e in &eval {
        broker.publish(e).unwrap();
    }
    let fixed = broker.report().improvement_percent();

    controller.apply(&mut broker).unwrap();
    broker.reset_report();
    for e in &eval {
        broker.publish(e).unwrap();
    }
    let adaptive = broker.report().improvement_percent();
    assert!(
        adaptive >= fixed - 1.0,
        "adaptive {adaptive:.1}% must not regress below fixed {fixed:.1}%"
    );
}
