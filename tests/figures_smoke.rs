//! Smoke tests for the experiment harness: miniature versions of every
//! figure pipeline must produce sane, finite results. These guard the
//! reproduction machinery itself — a broken harness would silently
//! invalidate EXPERIMENTS.md.

use pubsub::clustering::ClusteringAlgorithm;
use pubsub::core::DeliveryMode;
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::nyse::{NyseConfig, ReplayConfig};
use pubsub::workload::stats::{fit_loglog_slope, fit_normal, fit_pareto_alpha, rank_frequency};
use pubsub::workload::Modes;
use pubsub_bench::{
    build_broker, build_testbed, drive, sample_events, scenario, threshold_sweep, Seeds,
};

#[test]
fn fig3_pipeline_topology_shape() {
    let topo = TransitStubConfig::riabov()
        .generate(Seeds::default().topology)
        .unwrap();
    let s = topo.stats();
    assert!(s.connected);
    assert_eq!(s.blocks, 3);
    assert!(s.nodes > 300);
    let dot = topo.to_dot();
    assert!(dot.contains("cluster_block2"));
}

#[test]
fn fig4_fig5_pipeline_distribution_fits() {
    let day = NyseConfig::tiny().generate(1999).unwrap();
    let prices: Vec<f64> = day.all_prices().collect();
    let (mean, sd) = fit_normal(&prices).unwrap();
    assert!((mean - 1.0).abs() < 0.05 && sd > 0.0);
    let rf = rank_frequency(&day.trades_per_stock());
    let pts: Vec<(f64, f64)> = rf
        .iter()
        .take(20)
        .map(|&(r, c)| (r as f64, c as f64))
        .collect();
    let slope = fit_loglog_slope(&pts).unwrap();
    assert!(
        slope < -0.4,
        "popularity must be heavy-headed, slope {slope}"
    );
    let amounts: Vec<f64> = day.all_amounts().collect();
    assert!(fit_pareto_alpha(&amounts).unwrap() > 0.5);
    // Figure 5: the top stock's own trades show a bell too.
    let top = day.top_stocks(1)[0];
    let (m2, s2) = fit_normal(&day.prices_of(top)).unwrap();
    assert!((m2 - 1.0).abs() < 0.1 && s2 > 0.0);
}

#[test]
fn fig6_pipeline_miniature_sweep() {
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let events = sample_events(&model, 400, 7);
    let mut broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.0,
        DeliveryMode::DenseMode,
    );
    let sweep = threshold_sweep(&mut broker, &events, &[0.0, 0.1, 0.5]);
    assert_eq!(sweep.len(), 3);
    for p in &sweep {
        assert!(p.improvement_percent.is_finite());
        assert!(p.improvement_percent <= 100.0 + 1e-9);
        assert!((0.0..=1.0).contains(&p.multicast_fraction));
    }
    // Multicast usage decays with the threshold; t=0.5 is near-unicast.
    assert!(sweep[0].multicast_fraction >= sweep[2].multicast_fraction);
    assert!(sweep[2].improvement_percent.abs() < 10.0);
}

#[test]
fn replay_pipeline_produces_usable_events() {
    let day = NyseConfig::tiny().generate(1999).unwrap();
    let events = day.replay_events(&ReplayConfig::default(), 5);
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Nine);
    let mut broker = build_broker(
        &testbed,
        &model,
        ClusteringAlgorithm::ForgyKMeans,
        11,
        0.15,
        DeliveryMode::DenseMode,
    );
    let report = drive(&mut broker, &events[..events.len().min(500)]);
    assert_eq!(report.messages as usize, events.len().min(500));
    assert!(report.scheme_cost.is_finite());
    // The replayed feed must actually reach subscribers.
    assert!(report.dropped < report.messages);
}

#[test]
fn harness_is_seed_stable() {
    // The exact invariant EXPERIMENTS.md relies on: identical seeds give
    // identical improvement numbers.
    let testbed = build_testbed(Seeds::default());
    let model = scenario(Modes::Four);
    let events = sample_events(&model, 300, 9);
    let run = || {
        let mut b = build_broker(
            &testbed,
            &model,
            ClusteringAlgorithm::MinimumSpanningTree,
            11,
            0.15,
            DeliveryMode::DenseMode,
        );
        drive(&mut b, &events).improvement_percent()
    };
    assert_eq!(run(), run());
}
