//! Fault plans must not change what a batch computes, only how: an
//! *empty* plan is a perfect no-op against a plan-free broker, and any
//! *non-empty* plan publishing through the segmented batch pipeline
//! (pooled or inline) is bit-identical — outcomes, costs, hysteresis
//! state and the cumulative report — to a sequential loop of
//! `publish` calls over the same plan.

use std::sync::Arc;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, PublishOutcome};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{FaultEvent, FaultPlan, TransitStubConfig};
use pubsub::parallel::WorkerPool;

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

fn build(topo_seed: u64, threshold: f64, subs: &[SubSpec]) -> Broker {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(threshold)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

fn assert_bit_identical(a: &PublishOutcome, b: &PublishOutcome) -> Result<(), String> {
    prop_assert_eq!(&a.decision, &b.decision);
    prop_assert_eq!(&a.group_region, &b.group_region);
    prop_assert_eq!(&a.matched_subscriptions, &b.matched_subscriptions);
    prop_assert_eq!(&a.interested, &b.interested);
    prop_assert_eq!(&a.unreachable, &b.unreachable);
    prop_assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
    prop_assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
    prop_assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn empty_plan_is_bitwise_invisible(
        topo_seed in 0u64..30,
        threshold in 0.0f64..=1.0,
        subs in prop::collection::vec(
            (0usize..100, (0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
            2..20,
        ),
        events in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..20),
        threads in 1usize..4,
    ) {
        let mut plain = build(topo_seed, threshold, &subs);
        let mut faulty = build(topo_seed, threshold, &subs);
        faulty.install_fault_plan(FaultPlan::new()).unwrap();
        prop_assert!(faulty.faults_active());
        prop_assert_eq!(faulty.fault_epoch(), 0);

        let points: Vec<Point> = events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();

        // Sequential parity, bit for bit.
        for p in &points {
            let a = plain.publish(p).unwrap();
            let b = faulty.publish(p).unwrap();
            assert_bit_identical(&a, &b)?;
        }

        // Batch parity: the faulted broker reroutes batches through the
        // sequential path; outcomes and reports must not notice.
        let a = plain.publish_batch(&points, Some(threads)).unwrap();
        let b = faulty.publish_batch(&points, Some(threads)).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_bit_identical(x, y)?;
        }

        let ra = plain.publish_batch_stats(&points, Some(threads)).unwrap();
        let rb = faulty.publish_batch_stats(&points, Some(threads)).unwrap();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(plain.report(), faulty.report());
    }

    /// A *non-empty* plan publishing through the segmented batch
    /// pipeline is bit-identical to the sequential `publish` loop over
    /// the same plan — including mid-batch publisher-down aborts — and
    /// the batch really does run through the pipeline (no sequential
    /// reroute).
    #[test]
    fn faulted_batch_is_bitwise_identical_to_sequential_loop(
        topo_seed in 0u64..30,
        threshold in 0.0f64..=1.0,
        subs in prop::collection::vec(
            (0usize..100, (0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
            2..20,
        ),
        events in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..40),
        schedule in prop::collection::vec(
            (0u64..30, 0u32..5, 0usize..100, 0usize..100, 1.0f64..8.0),
            1..8,
        ),
        threads in 1usize..4,
    ) {
        let mut seq = build(topo_seed, threshold, &subs);
        let mut batch = build(topo_seed, threshold, &subs);
        let mut stats = build(topo_seed, threshold, &subs);
        // A real pool, so degraded segments exercise pooled dispatch
        // even on single-core hosts.
        let pool = Arc::new(WorkerPool::new(2));
        batch.set_worker_pool(Arc::clone(&pool));
        stats.set_worker_pool(pool);

        let topo_nodes = TransitStubConfig::tiny()
            .generate(topo_seed)
            .unwrap()
            .stub_nodes()
            .to_vec();
        let mut plan = FaultPlan::new();
        let mut ats: Vec<u64> = schedule.iter().map(|s| s.0).collect();
        ats.sort_unstable();
        for (&at, &(_, sel, ai, bi, factor)) in ats.iter().zip(&schedule) {
            let a = topo_nodes[ai % topo_nodes.len()];
            let b = topo_nodes[bi % topo_nodes.len()];
            let event = match sel {
                0 => FaultEvent::LinkCut { a, b },
                1 => FaultEvent::LinkRestore { a, b },
                2 => FaultEvent::LinkDegrade { a, b, factor },
                3 => FaultEvent::NodeDown { node: a },
                _ => FaultEvent::NodeUp { node: a },
            };
            plan.push(at, event);
        }
        seq.install_fault_plan(plan.clone()).unwrap();
        batch.install_fault_plan(plan.clone()).unwrap();
        stats.install_fault_plan(plan).unwrap();

        let points: Vec<Point> = events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();

        let mut seq_outs = Vec::new();
        let mut seq_err = None;
        for p in &points {
            match seq.publish(p) {
                Ok(out) => seq_outs.push(out),
                Err(e) => {
                    seq_err = Some(format!("{e:?}"));
                    break;
                }
            }
        }

        match batch.publish_batch(&points, Some(threads)) {
            Ok(outs) => {
                prop_assert!(seq_err.is_none(), "batch succeeded, loop failed");
                prop_assert_eq!(outs.len(), seq_outs.len());
                for (a, b) in seq_outs.iter().zip(&outs) {
                    assert_bit_identical(a, b)?;
                }
            }
            Err(e) => {
                let se = seq_err.clone().expect("loop must fail when the batch does");
                prop_assert_eq!(format!("{e:?}"), se);
            }
        }
        prop_assert_eq!(seq.report(), batch.report());
        // The faulted batch must have gone through the pipeline, not a
        // per-event sequential reroute.
        let counters = batch.pipeline_counters();
        prop_assert!(counters.fault_segments >= 1);
        prop_assert_eq!(counters.batches, counters.fault_segments);

        match stats.publish_batch_stats(&points, Some(threads)) {
            Ok(report) => {
                prop_assert!(seq_err.is_none());
                prop_assert_eq!(&report, seq.report());
            }
            Err(e) => {
                let se = seq_err.expect("loop must fail when the stats batch does");
                prop_assert_eq!(format!("{e:?}"), se);
            }
        }
        prop_assert_eq!(stats.report(), seq.report());
    }
}
