//! Installing an *empty* fault plan must be a perfect no-op: every
//! outcome, every cost bit, and the cumulative report stay identical to
//! a broker that never heard of faults — for sequential publishes and
//! for the batch entry points (which reroute through the sequential path
//! once a plan is installed).

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, PublishOutcome};
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::{FaultPlan, TransitStubConfig};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

fn build(topo_seed: u64, threshold: f64, subs: &[SubSpec]) -> Broker {
    let topo = TransitStubConfig::tiny().generate(topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(threshold)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

fn assert_bit_identical(a: &PublishOutcome, b: &PublishOutcome) -> Result<(), String> {
    prop_assert_eq!(&a.decision, &b.decision);
    prop_assert_eq!(&a.group_region, &b.group_region);
    prop_assert_eq!(&a.matched_subscriptions, &b.matched_subscriptions);
    prop_assert_eq!(&a.interested, &b.interested);
    prop_assert_eq!(&a.unreachable, &b.unreachable);
    prop_assert_eq!(a.costs.scheme.to_bits(), b.costs.scheme.to_bits());
    prop_assert_eq!(a.costs.unicast.to_bits(), b.costs.unicast.to_bits());
    prop_assert_eq!(a.costs.ideal.to_bits(), b.costs.ideal.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn empty_plan_is_bitwise_invisible(
        topo_seed in 0u64..30,
        threshold in 0.0f64..=1.0,
        subs in prop::collection::vec(
            (0usize..100, (0.0f64..9.0, 0.5f64..8.0), (0.0f64..9.0, 0.5f64..8.0)),
            2..20,
        ),
        events in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..20),
        threads in 1usize..4,
    ) {
        let mut plain = build(topo_seed, threshold, &subs);
        let mut faulty = build(topo_seed, threshold, &subs);
        faulty.install_fault_plan(FaultPlan::new()).unwrap();
        prop_assert!(faulty.faults_active());
        prop_assert_eq!(faulty.fault_epoch(), 0);

        let points: Vec<Point> = events
            .iter()
            .map(|&(x, y)| Point::new(vec![x, y]).unwrap())
            .collect();

        // Sequential parity, bit for bit.
        for p in &points {
            let a = plain.publish(p).unwrap();
            let b = faulty.publish(p).unwrap();
            assert_bit_identical(&a, &b)?;
        }

        // Batch parity: the faulted broker reroutes batches through the
        // sequential path; outcomes and reports must not notice.
        let a = plain.publish_batch(&points, Some(threads)).unwrap();
        let b = faulty.publish_batch(&points, Some(threads)).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_bit_identical(x, y)?;
        }

        let ra = plain.publish_batch_stats(&points, Some(threads)).unwrap();
        let rb = faulty.publish_batch_stats(&points, Some(threads)).unwrap();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(plain.report(), faulty.report());
    }
}
