//! Cross-crate integration tests: the full pipeline (topology →
//! subscriptions → clustering → broker → costs) on the paper's testbed,
//! asserting the headline *shapes* of the evaluation at fixed seeds.

use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::{Broker, CostReport};
use pubsub::geom::Point;
use pubsub::netsim::TransitStubConfig;
use pubsub::workload::{stock_space, Modes, SubscriptionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn build_broker(algorithm: ClusteringAlgorithm, groups: usize, threshold: f64) -> Broker {
    let topology = TransitStubConfig::riabov().generate(1903).unwrap();
    let placed = SubscriptionConfig::riabov()
        .generate(&topology, 2003)
        .unwrap();
    let model = Modes::Nine.model();
    Broker::builder(topology, stock_space())
        .subscriptions(placed.into_iter().map(|p| (p.node, p.rect)))
        .clustering(ClusteringConfig::new(algorithm, groups))
        .threshold(threshold)
        .density(move |r| model.mass(r))
        .build()
        .unwrap()
}

fn events(n: usize, seed: u64) -> Vec<Point> {
    let model = Modes::Nine.model();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| model.sample(&mut rng)).collect()
}

fn run(broker: &mut Broker, events: &[Point]) -> CostReport {
    broker.reset_report();
    for e in events {
        broker.publish(e).unwrap();
    }
    *broker.report()
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let evs = events(500, 7);
    let r1 = run(
        &mut build_broker(ClusteringAlgorithm::ForgyKMeans, 11, 0.15),
        &evs,
    );
    let r2 = run(
        &mut build_broker(ClusteringAlgorithm::ForgyKMeans, 11, 0.15),
        &evs,
    );
    assert_eq!(r1, r2);
}

#[test]
fn dynamic_threshold_beats_static_on_the_paper_workload() {
    // The paper's core claim (Figure 6): some interior threshold beats the
    // static scheme (t = 0). The peak's exact location shifts with the
    // sampled workload, so scan the interior instead of pinning one value.
    let evs = events(2000, 7);
    let mut broker = build_broker(ClusteringAlgorithm::ForgyKMeans, 11, 0.0);
    let static_report = run(&mut broker, &evs);
    let mut best = f64::NEG_INFINITY;
    for threshold in [0.05, 0.08, 0.1, 0.12, 0.15, 0.2] {
        broker.set_threshold(threshold).unwrap();
        best = best.max(run(&mut broker, &evs).improvement_percent());
    }
    assert!(
        best > static_report.improvement_percent(),
        "best dynamic {:.1}% must beat static {:.1}%",
        best,
        static_report.improvement_percent()
    );
    // And the improvement is substantial and within the metric's range.
    assert!(best > 10.0);
    assert!(best <= 100.0);
}

#[test]
fn high_threshold_degrades_to_pure_unicast() {
    let evs = events(1000, 7);
    let mut broker = build_broker(ClusteringAlgorithm::ForgyKMeans, 11, 1.0);
    let report = run(&mut broker, &evs);
    // With t = 1 essentially everything is unicast, so the scheme pays
    // (almost exactly) the unicast cost.
    assert!(report.improvement_percent().abs() < 2.0);
    assert_eq!(report.wasted_deliveries, 0);
}

#[test]
fn more_groups_improve_the_static_scheme() {
    // Figure 6's other axis: 61 groups outperform 11 at the peak.
    let evs = events(2000, 7);
    let r11 = run(
        &mut build_broker(ClusteringAlgorithm::ForgyKMeans, 11, 0.1),
        &evs,
    );
    let r61 = run(
        &mut build_broker(ClusteringAlgorithm::ForgyKMeans, 61, 0.1),
        &evs,
    );
    assert!(
        r61.improvement_percent() > r11.improvement_percent(),
        "61 groups {:.1}% must beat 11 groups {:.1}%",
        r61.improvement_percent(),
        r11.improvement_percent()
    );
}

#[test]
fn all_clustering_algorithms_produce_positive_improvement_at_the_peak() {
    let evs = events(2000, 7);
    for alg in ClusteringAlgorithm::ALL {
        let report = run(&mut build_broker(alg, 11, 0.12), &evs);
        assert!(
            report.improvement_percent() > 0.0,
            "{alg}: {:.1}%",
            report.improvement_percent()
        );
    }
}

#[test]
fn delivery_counts_are_consistent() {
    let evs = events(1000, 9);
    let mut broker = build_broker(ClusteringAlgorithm::MinimumSpanningTree, 11, 0.15);
    let report = run(&mut broker, &evs);
    assert_eq!(
        report.messages,
        report.dropped + report.unicasts + report.multicasts
    );
    assert_eq!(report.messages, 1000);
    // The stream hits all three outcomes on this workload.
    assert!(report.dropped > 0);
    assert!(report.unicasts > 0);
    assert!(report.multicasts > 0);
    // Costs are ordered.
    assert!(report.ideal_cost <= report.scheme_cost + 1e-6);
    assert!(report.ideal_cost <= report.unicast_cost);
}
