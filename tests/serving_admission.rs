//! Admission-control property tests for the staged serving front-end.
//!
//! The backpressure contract under overload: every submission gets
//! exactly one fate. An accepted event (`Ok` from `submit`) produces
//! exactly one sink record whose outcome is bit-identical to a
//! synchronous reference broker publishing the same event; a rejected
//! submission (`Err(Shed { .. })`) produces nothing at the sink. No event
//! is silently dropped, double-delivered, or invented — even with
//! capacity-1 queues and a sink slow enough to stall the whole pipeline
//! back to the ingest edge.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use proptest::prelude::*;
use pubsub::clustering::{ClusteringAlgorithm, ClusteringConfig};
use pubsub::core::Broker;
use pubsub::geom::{Point, Rect, Space};
use pubsub::netsim::TransitStubConfig;
use pubsub::server::{CollectorSink, DeliverySink, RejectReason, ServingConfig, StagedServer};

/// (node pick, (x origin, width), (y origin, height)).
type SubSpec = (usize, (f64, f64), (f64, f64));

#[derive(Debug, Clone)]
struct Scenario {
    topo_seed: u64,
    threshold: f64,
    subs: Vec<SubSpec>,
    events: Vec<(f64, f64)>,
    ingest_capacity: usize,
    max_batch: usize,
    shards: usize,
    /// Concurrent pipeline executors — the ack partition must be exact
    /// whether one thread or seven race through the dispatcher.
    executors: usize,
    /// Sink stall per record, microseconds — drives the backpressure.
    sink_delay_us: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let sub = (
        0usize..100,
        (0.0f64..9.0, 0.5f64..8.0),
        (0.0f64..9.0, 0.5f64..8.0),
    );
    (
        0u64..20,
        0.0f64..=1.0,
        prop::collection::vec(sub, 2..12),
        prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 8..80),
        (
            1usize..4,
            1usize..6,
            1usize..4,
            (0usize..4).prop_map(|i| [1usize, 2, 3, 7][i]),
            prop::collection::vec(0u64..2_000, 1..2),
        ),
    )
        .prop_map(|(topo_seed, threshold, subs, events, knobs)| {
            let (ingest_capacity, max_batch, shards, executors, delay) = knobs;
            Scenario {
                topo_seed,
                threshold,
                subs,
                events,
                ingest_capacity,
                max_batch,
                shards,
                executors,
                sink_delay_us: delay[0],
            }
        })
}

fn build(s: &Scenario) -> Broker {
    let topo = TransitStubConfig::tiny().generate(s.topo_seed).unwrap();
    let nodes = topo.stub_nodes().to_vec();
    let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap()).unwrap();
    let mut b = Broker::builder(topo, space)
        .threshold(s.threshold)
        .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(30))
        .grid_cells(5);
    for (n, (x, w), (y, h)) in &s.subs {
        let node = nodes[n % nodes.len()];
        let rect = Rect::from_corners(&[*x, *y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap();
        b = b.subscription(node, rect);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under overload, acks partition submissions exactly: accepted ⇒
    /// exactly one record with the reference outcome, rejected ⇒ no
    /// record, and the server's own counters agree with the client's.
    #[test]
    fn overload_acks_partition_submissions_exactly(s in scenario_strategy()) {
        let broker = build(&s);
        let mut reference = build(&s);

        let collector = CollectorSink::new();
        let mut tap = collector.clone();
        let delay = Duration::from_micros(s.sink_delay_us);
        let sink = move |record| {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            tap.on_record(record);
        };
        let server = StagedServer::start(
            broker,
            ServingConfig {
                ingest_capacity: s.ingest_capacity,
                egress_capacity: s.ingest_capacity,
                max_batch: s.max_batch,
                flush_interval: Duration::from_micros(500),
                threads: Some(1),
                executors: Some(s.executors),
                shards: s.shards,
            },
            Box::new(sink),
        );
        let handle = server.handle();

        let mut accepted: HashSet<u64> = HashSet::new();
        let mut rejected = 0u64;
        for (seq, &(x, y)) in s.events.iter().enumerate() {
            let event = Point::new(vec![x, y]).unwrap();
            match handle.submit_now((seq % 7) as u32, seq as u64, event) {
                Ok(()) => {
                    accepted.insert(seq as u64);
                }
                Err(RejectReason::Shed { retry_after_ms }) => {
                    prop_assert!(retry_after_ms >= 1, "shed hint must be positive");
                    rejected += 1;
                }
                Err(RejectReason::QueueFull) => rejected += 1,
                Err(r) => return Err(format!("unexpected reject reason: {r}")),
            }
        }
        let (_broker, stats) = server.stop();
        let records = collector.take();

        // The server's counters agree with the acks the client saw.
        prop_assert_eq!(stats.accepted, accepted.len() as u64);
        prop_assert_eq!(stats.rejected, rejected);
        prop_assert_eq!(stats.accepted + stats.rejected, s.events.len() as u64);
        // Every accepted event reached the sink with some fate; nothing
        // else did.
        prop_assert_eq!(stats.delivered + stats.failed, stats.accepted);
        prop_assert_eq!(records.len() as u64, stats.accepted);
        prop_assert_eq!(stats.failed, 0, "no faults are installed");

        let mut seen: HashMap<u64, ()> = HashMap::new();
        for r in &records {
            prop_assert!(
                accepted.contains(&r.seq),
                "sink record for seq {} which was never accepted", r.seq
            );
            prop_assert!(
                seen.insert(r.seq, ()).is_none(),
                "duplicate sink record for seq {}", r.seq
            );
            let (x, y) = s.events[r.seq as usize];
            let event = Point::new(vec![x, y]).unwrap();
            let expect = reference.publish(&event).unwrap();
            match &r.outcome {
                Ok(out) => prop_assert_eq!(
                    out, &expect,
                    "staged outcome diverges from the synchronous broker at seq {}", r.seq
                ),
                Err(e) => return Err(format!("outcome failed without faults: {e}")),
            }
        }
        prop_assert_eq!(seen.len(), accepted.len());
    }
}
