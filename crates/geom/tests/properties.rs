//! Property-based tests for the geometric substrate.

use proptest::prelude::*;
use pubsub_geom::{Grid, Interval, Point, Rect};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, 0.0f64..50.0)
        .prop_map(|(lo, len)| Interval::new(lo, lo + len).expect("ordered bounds"))
}

fn rect_strategy(dims: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), dims)
        .prop_map(|sides| Rect::new(sides).expect("non-empty dims"))
}

fn point_strategy(dims: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(-120.0f64..120.0, dims)
        .prop_map(|coords| Point::new(coords).expect("finite coords"))
}

proptest! {
    #[test]
    fn interval_intersection_is_commutative_and_contained(
        a in interval_strategy(),
        b in interval_strategy(),
    ) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_interval(&i));
            prop_assert!(b.contains_interval(&i));
            prop_assert!(i.length() <= a.length() + 1e-12);
        }
    }

    #[test]
    fn interval_hull_contains_both(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn interval_membership_matches_intersection(
        a in interval_strategy(),
        b in interval_strategy(),
        samples in prop::collection::vec(-150.0f64..150.0, 20),
    ) {
        for x in samples {
            let in_both = a.contains(x) && b.contains(x);
            let in_intersection = a.intersection(&b).is_some_and(|i| i.contains(x));
            prop_assert_eq!(in_both, in_intersection);
        }
    }

    #[test]
    fn rect_intersects_iff_common_point_found(
        a in rect_strategy(3),
        b in rect_strategy(3),
    ) {
        // intersects() must agree with intersection() being non-empty.
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        if let Some(i) = a.intersection(&b) {
            prop_assert!(!i.is_empty());
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            // The closed corner of a non-empty half-open rect is a member.
            let corner = Point::new(i.sides().iter().map(|s| s.hi()).collect()).unwrap();
            prop_assert!(a.contains_point(&corner));
            prop_assert!(b.contains_point(&corner));
        }
    }

    #[test]
    fn rect_mbr_contains_operands_and_is_monotone_in_volume(
        a in rect_strategy(2),
        b in rect_strategy(2),
    ) {
        let m = a.mbr_with(&b);
        prop_assert!(m.contains_rect(&a));
        prop_assert!(m.contains_rect(&b));
        prop_assert!(m.volume() + 1e-9 >= a.volume().max(b.volume()));
    }

    #[test]
    fn rect_point_membership_implies_mbr_membership(
        a in rect_strategy(3),
        b in rect_strategy(3),
        p in point_strategy(3),
    ) {
        if a.contains_point(&p) || b.contains_point(&p) {
            prop_assert!(a.mbr_with(&b).contains_point(&p));
        }
    }

    #[test]
    fn clamp_always_contained_in_bounds(r in rect_strategy(3)) {
        let bounds = Rect::from_corners(&[-20.0, -20.0, -20.0], &[20.0, 20.0, 20.0]).unwrap();
        let c = r.clamp_to(&bounds);
        prop_assert!(bounds.contains_rect(&c));
    }

    #[test]
    fn grid_point_cell_roundtrip(
        coords in prop::collection::vec(0.0001f64..10.0, 3),
        cells in 1usize..7,
    ) {
        let bounds = Rect::from_corners(&[0.0, 0.0, 0.0], &[10.0, 10.0, 10.0]).unwrap();
        let grid = Grid::uniform(bounds, cells).unwrap();
        let p = Point::new(coords).unwrap();
        let id = grid.cell_of_point(&p).expect("interior point");
        prop_assert!(grid.cell_rect(id).contains_point(&p));
        // And no *other* cell contains it (half-open tiling is a partition).
        for other in 0..grid.cell_count() {
            if other != id.0 {
                prop_assert!(!grid.cell_rect(pubsub_geom::CellId(other)).contains_point(&p));
            }
        }
    }

    #[test]
    fn grid_cells_intersecting_matches_bruteforce(
        r in rect_strategy(2),
        cells in 1usize..9,
    ) {
        let bounds = Rect::from_corners(&[-50.0, -50.0], &[50.0, 50.0]).unwrap();
        let grid = Grid::uniform(bounds, cells).unwrap();
        let got = grid.cells_intersecting(&r);
        let brute: Vec<_> = (0..grid.cell_count())
            .map(pubsub_geom::CellId)
            .filter(|&id| grid.cell_rect(id).intersects(&r))
            .collect();
        prop_assert_eq!(got, brute);
    }

    #[test]
    fn grid_cell_of_point_matches_geometry(
        coords in prop::collection::vec(-49.9f64..49.9, 2),
        cells in 1usize..9,
    ) {
        let bounds = Rect::from_corners(&[-50.0, -50.0], &[50.0, 50.0]).unwrap();
        let grid = Grid::uniform(bounds, cells).unwrap();
        let p = Point::new(coords).unwrap();
        let by_lookup = grid.cell_of_point(&p);
        let by_geometry = (0..grid.cell_count())
            .map(pubsub_geom::CellId)
            .find(|&id| grid.cell_rect(id).contains_point(&p));
        prop_assert_eq!(by_lookup, by_geometry);
    }
}
