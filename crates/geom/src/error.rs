use std::error::Error;
use std::fmt;

/// Errors produced while constructing or combining geometric objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A coordinate or bound was NaN.
    NotANumber,
    /// An interval was constructed with `lo > hi`.
    InvertedInterval {
        /// The offending lower bound, rendered as a string (f64 is not `Eq`).
        lo: String,
        /// The offending upper bound.
        hi: String,
    },
    /// Two objects that must share a dimensionality did not.
    DimensionMismatch {
        /// Dimensions of the receiver / first operand.
        expected: usize,
        /// Dimensions of the argument / second operand.
        got: usize,
    },
    /// An object that must have at least one dimension had none.
    ZeroDimensional,
    /// A grid was configured with a zero cell count in some dimension.
    EmptyGridAxis {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// A grid requires finite bounds in every dimension.
    UnboundedGrid {
        /// Index of the offending dimension.
        dim: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NotANumber => write!(f, "coordinate or bound was NaN"),
            GeomError::InvertedInterval { lo, hi } => {
                write!(f, "interval lower bound {lo} exceeds upper bound {hi}")
            }
            GeomError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            GeomError::ZeroDimensional => write!(f, "object must have at least one dimension"),
            GeomError::EmptyGridAxis { dim } => {
                write!(f, "grid has zero cells along dimension {dim}")
            }
            GeomError::UnboundedGrid { dim } => {
                write!(f, "grid bounds are not finite along dimension {dim}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GeomError::NotANumber,
            GeomError::InvertedInterval {
                lo: "2".into(),
                hi: "1".into(),
            },
            GeomError::DimensionMismatch {
                expected: 4,
                got: 3,
            },
            GeomError::ZeroDimensional,
            GeomError::EmptyGridAxis { dim: 2 },
            GeomError::UnboundedGrid { dim: 0 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
