//! A structure-of-arrays event batch: one contiguous column per
//! dimension, built incrementally as events arrive.
//!
//! The SIMD matching kernels consume events in dimension-major blocks
//! (`EventBlock` in `pubsub-stree`): lane `l` of dimension `d` sits at
//! `d * LANES + l`. A batch that arrives as `&[Point]` (array of
//! structs) has to be *transposed* into that layout once per block on
//! the hot path. [`EventSoA`] moves the transpose to ingest time: the
//! batcher appends each event's coordinates into per-dimension columns
//! as it buffers them, and the pipeline fills its blocks with straight
//! contiguous copies from the columns — no per-lane gather.
//!
//! The SoA is a *mirror*, not a replacement: overlay queries, covering
//! expansion and grid-cell lookup still want a per-event [`Point`]
//! view, so batches carry both. The two are kept consistent by
//! construction (both are appended from the same submission).

use crate::Point;

/// Dimension-major columns of an event batch: `col(d)[i]` is coordinate
/// `d` of the `i`-th event.
#[derive(Clone, Debug, Default)]
pub struct EventSoA {
    /// One column per dimension, all the same length.
    cols: Vec<Vec<f64>>,
    /// Number of events appended.
    len: usize,
}

impl EventSoA {
    /// An empty batch over `dims` dimensions.
    pub fn new(dims: usize) -> EventSoA {
        EventSoA {
            cols: vec![Vec::new(); dims],
            len: 0,
        }
    }

    /// Number of dimensions (columns).
    pub fn dims(&self) -> usize {
        self.cols.len()
    }

    /// Number of events appended.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column for dimension `d`: one `f64` per event, in append
    /// order.
    ///
    /// # Panics
    ///
    /// If `d >= self.dims()`.
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// Appends one event's coordinates to every column.
    ///
    /// # Panics
    ///
    /// If the point's dimensionality differs from `self.dims()` — the
    /// caller (the ingest batcher) validates dimensionality before
    /// accepting a submission, so a mismatch here is a bug, not bad
    /// input.
    pub fn push(&mut self, point: &Point) {
        let coords = point.as_slice();
        assert_eq!(
            coords.len(),
            self.cols.len(),
            "EventSoA::push: {} coords into {} columns",
            coords.len(),
            self.cols.len()
        );
        for (col, &c) in self.cols.iter_mut().zip(coords) {
            col.push(c);
        }
        self.len += 1;
    }

    /// Clears all columns, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.len = 0;
    }

    /// Re-dimensions the batch (clearing it) — used when a recycled
    /// buffer is reused for a space with a different dimensionality.
    pub fn reset(&mut self, dims: usize) {
        if self.cols.len() != dims {
            self.cols.resize(dims, Vec::new());
        }
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_mirror_points() {
        let points: Vec<Point> = (0..5)
            .map(|i| Point::new(vec![i as f64, 10.0 - i as f64, 0.5 * i as f64]).unwrap())
            .collect();
        let mut soa = EventSoA::new(3);
        for p in &points {
            soa.push(p);
        }
        assert_eq!(soa.len(), 5);
        assert_eq!(soa.dims(), 3);
        for (i, p) in points.iter().enumerate() {
            for d in 0..3 {
                assert_eq!(soa.col(d)[i], p.coord(d));
            }
        }
    }

    #[test]
    fn clear_keeps_dims_and_empties_columns() {
        let mut soa = EventSoA::new(2);
        soa.push(&Point::new(vec![1.0, 2.0]).unwrap());
        soa.clear();
        assert!(soa.is_empty());
        assert_eq!(soa.dims(), 2);
        assert!(soa.col(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "EventSoA::push")]
    fn dimension_mismatch_panics() {
        let mut soa = EventSoA::new(2);
        soa.push(&Point::new(vec![1.0, 2.0, 3.0]).unwrap());
    }
}
