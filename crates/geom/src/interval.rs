use std::fmt;

use crate::GeomError;

/// A half-open interval `(lo, hi]` on the real line.
///
/// Following the paper (§1), all predicate ranges are *open on the left and
/// closed on the right*, so that adjacent ranges such as `(0, 5]` and
/// `(5, 10]` tile the line without overlap. Unbounded predicates are
/// represented with infinite endpoints: `volume ≥ 1000` becomes
/// `(999, +∞)` via [`Interval::at_least`].
///
/// An interval with `lo == hi` is *empty* — it contains no point. Empty
/// intervals arise naturally from intersections and are legal values.
///
/// # Example
///
/// ```
/// use pubsub_geom::Interval;
///
/// # fn main() -> Result<(), pubsub_geom::GeomError> {
/// let price = Interval::new(75.0, 80.0)?;
/// assert!(price.contains(80.0));
/// assert!(!price.contains(75.0)); // open on the left
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// JSON-safe (de)serialization of interval bounds: finite bounds are
/// numbers, infinite bounds are the strings `"inf"` / `"-inf"`.
/// `serde_json` would otherwise flatten `±∞` to `null`, silently turning
/// wild-card predicates into garbage on a round trip. The bounds need a
/// custom wire format, so `Interval` implements the traits by hand
/// instead of deriving them.
mod bound_serde {
    use super::Interval;
    use serde::de::{Error as DeError, MapAccess, Visitor};
    use serde::ser::SerializeStruct;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    /// One bound with the `"inf"` / `"-inf"` encoding for infinities.
    struct Bound(f64);

    impl Serialize for Bound {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            if self.0.is_finite() {
                serializer.serialize_f64(self.0)
            } else if self.0 > 0.0 {
                serializer.serialize_str("inf")
            } else {
                serializer.serialize_str("-inf")
            }
        }
    }

    impl<'de> Deserialize<'de> for Bound {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            struct BoundVisitor;

            impl<'de> Visitor<'de> for BoundVisitor {
                type Value = Bound;

                fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("a number, \"inf\" or \"-inf\"")
                }

                fn visit_f64<E: DeError>(self, v: f64) -> Result<Bound, E> {
                    Ok(Bound(v))
                }

                fn visit_i64<E: DeError>(self, v: i64) -> Result<Bound, E> {
                    Ok(Bound(v as f64))
                }

                fn visit_u64<E: DeError>(self, v: u64) -> Result<Bound, E> {
                    Ok(Bound(v as f64))
                }

                fn visit_str<E: DeError>(self, v: &str) -> Result<Bound, E> {
                    match v {
                        "inf" => Ok(Bound(f64::INFINITY)),
                        "-inf" => Ok(Bound(f64::NEG_INFINITY)),
                        other => Err(E::custom(format!(
                            "invalid interval bound: {other:?}, expected a number, \"inf\" or \"-inf\""
                        ))),
                    }
                }
            }

            deserializer.deserialize_any(BoundVisitor)
        }
    }

    impl Serialize for Interval {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut state = serializer.serialize_struct("Interval", 2)?;
            state.serialize_field("lo", &Bound(self.lo()))?;
            state.serialize_field("hi", &Bound(self.hi()))?;
            state.end()
        }
    }

    impl<'de> Deserialize<'de> for Interval {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            struct IntervalVisitor;

            impl<'de> Visitor<'de> for IntervalVisitor {
                type Value = Interval;

                fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("struct Interval")
                }

                fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Interval, A::Error> {
                    let mut lo: Option<Bound> = None;
                    let mut hi: Option<Bound> = None;
                    while let Some(key) = map.next_key()? {
                        match key.as_str() {
                            "lo" => lo = Some(map.next_value()?),
                            "hi" => hi = Some(map.next_value()?),
                            _ => {
                                let _ignored: serde::de::IgnoredAny = map.next_value()?;
                            }
                        }
                    }
                    let lo = lo.ok_or_else(|| A::Error::missing_field("lo"))?;
                    let hi = hi.ok_or_else(|| A::Error::missing_field("hi"))?;
                    Ok(Interval { lo: lo.0, hi: hi.0 })
                }
            }

            deserializer.deserialize_any(IntervalVisitor)
        }
    }
}

impl Interval {
    /// Creates the interval `(lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NotANumber`] if either bound is NaN and
    /// [`GeomError::InvertedInterval`] if `lo > hi`. `lo == hi` is allowed
    /// and yields the empty interval.
    pub fn new(lo: f64, hi: f64) -> Result<Self, GeomError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(GeomError::NotANumber);
        }
        if lo > hi {
            return Err(GeomError::InvertedInterval {
                lo: lo.to_string(),
                hi: hi.to_string(),
            });
        }
        Ok(Interval { lo, hi })
    }

    /// The whole real line `(-∞, +∞)` — a wild-card predicate.
    pub fn unbounded() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The interval `(lo, +∞)`, i.e. the predicate `x > lo`.
    pub fn greater_than(lo: f64) -> Self {
        Interval {
            lo,
            hi: f64::INFINITY,
        }
    }

    /// The interval `(lo, +∞)` expressed as `x ≥ v` over a discrete domain:
    /// equivalent to [`Interval::greater_than`]`(v - 1.0)` is *not* implied;
    /// this is simply `greater_than(lo)` kept for readability at call sites
    /// that think in "at least" terms (`at_least(999.0)` ⇔ `volume ≥ 1000`
    /// for integer volumes).
    pub fn at_least(lo: f64) -> Self {
        Self::greater_than(lo)
    }

    /// The interval `(-∞, hi]`, i.e. the predicate `x ≤ hi`.
    pub fn at_most(hi: f64) -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi,
        }
    }

    /// An empty interval anchored at `v` (`(v, v]`).
    pub fn empty_at(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The lower (open) bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper (closed) bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `true` if the interval contains no points (`lo == hi`).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` if both bounds are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// The length `hi - lo` (may be `+∞`).
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Membership test: `lo < x ≤ hi`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo < x && x <= self.hi
    }

    /// `true` if `other` is a subset of `self` (the empty interval is a
    /// subset of everything).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// `true` if the two half-open intervals share at least one point.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo.max(other.lo) < self.hi.min(other.hi)
    }

    /// The intersection, or `None` if the intervals are disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// The smallest interval containing both operands (the convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps this interval into `bounds`, producing an empty interval
    /// anchored at the boundary when the two are disjoint.
    pub fn clamp_to(&self, bounds: &Interval) -> Interval {
        self.intersection(bounds)
            .unwrap_or_else(|| Interval::empty_at(self.lo.max(bounds.lo).min(bounds.hi)))
    }

    /// The midpoint, with infinite endpoints treated as the finite one (or
    /// `0.0` when both are infinite). Used to order objects during S-tree
    /// binarization; exact semantics for unbounded predicates only need to
    /// be deterministic, not meaningful.
    pub fn center(&self) -> f64 {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => 0.5 * (self.lo + self.hi),
            (true, false) => self.lo,
            (false, true) => self.hi,
            (false, false) => 0.0,
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_nan_and_inversion() {
        assert_eq!(Interval::new(f64::NAN, 1.0), Err(GeomError::NotANumber));
        assert_eq!(Interval::new(0.0, f64::NAN), Err(GeomError::NotANumber));
        assert!(matches!(
            Interval::new(2.0, 1.0),
            Err(GeomError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn half_open_semantics() {
        let i = Interval::new(0.0, 10.0).unwrap();
        assert!(!i.contains(0.0));
        assert!(i.contains(10.0));
        assert!(i.contains(0.0001));
        assert!(!i.contains(10.0001));
    }

    #[test]
    fn adjacent_intervals_tile_without_overlap() {
        let a = Interval::new(0.0, 5.0).unwrap();
        let b = Interval::new(5.0, 10.0).unwrap();
        assert!(!a.intersects(&b));
        assert!(a.contains(5.0));
        assert!(!b.contains(5.0));
    }

    #[test]
    fn empty_interval_contains_nothing() {
        let e = Interval::empty_at(3.0);
        assert!(e.is_empty());
        assert!(!e.contains(3.0));
        assert_eq!(e.length(), 0.0);
    }

    #[test]
    fn unbounded_predicates() {
        let wild = Interval::unbounded();
        assert!(wild.contains(1e300));
        assert!(wild.contains(-1e300));
        assert!(!wild.is_finite());

        let volume = Interval::at_least(999.0);
        assert!(volume.contains(1000.0));
        assert!(!volume.contains(999.0));

        let price = Interval::at_most(80.0);
        assert!(price.contains(80.0));
        assert!(!price.contains(80.5));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0.0, 6.0).unwrap();
        let b = Interval::new(4.0, 10.0).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!((i.lo(), i.hi()), (4.0, 6.0));
        let h = a.hull(&b);
        assert_eq!((h.lo(), h.hi()), (0.0, 10.0));
        let c = Interval::new(20.0, 30.0).unwrap();
        assert_eq!(a.intersection(&c), None);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn hull_with_empty_is_identity() {
        let a = Interval::new(1.0, 2.0).unwrap();
        let e = Interval::empty_at(100.0);
        assert_eq!(a.hull(&e), a);
        assert_eq!(e.hull(&a), a);
    }

    #[test]
    fn containment_of_intervals() {
        let outer = Interval::new(0.0, 10.0).unwrap();
        let inner = Interval::new(2.0, 8.0).unwrap();
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains_interval(&Interval::empty_at(500.0)));
        assert!(Interval::unbounded().contains_interval(&outer));
    }

    #[test]
    fn clamp_to_bounds() {
        let bounds = Interval::new(0.0, 20.0).unwrap();
        let wild = Interval::unbounded();
        let clamped = wild.clamp_to(&bounds);
        assert_eq!((clamped.lo(), clamped.hi()), (0.0, 20.0));

        let disjoint = Interval::new(30.0, 40.0).unwrap();
        let c = disjoint.clamp_to(&bounds);
        assert!(c.is_empty());
        assert!(bounds.contains_interval(&c));
    }

    #[test]
    fn centers() {
        assert_eq!(Interval::new(2.0, 4.0).unwrap().center(), 3.0);
        assert_eq!(Interval::at_least(5.0).center(), 5.0);
        assert_eq!(Interval::at_most(7.0).center(), 7.0);
        assert_eq!(Interval::unbounded().center(), 0.0);
    }

    #[test]
    fn serde_roundtrip_preserves_infinities() {
        for iv in [
            Interval::new(1.0, 2.0).unwrap(),
            Interval::unbounded(),
            Interval::at_least(5.0),
            Interval::at_most(-3.0),
            Interval::empty_at(0.0),
        ] {
            let json = serde_json::to_string(&iv).unwrap();
            let back: Interval = serde_json::from_str(&json).unwrap();
            assert_eq!(back, iv, "json was {json}");
        }
        // The wire format is explicit about infinities.
        let json = serde_json::to_string(&Interval::at_least(5.0)).unwrap();
        assert!(json.contains("\"inf\""), "{json}");
    }

    #[test]
    fn display_shows_half_open_notation() {
        let i = Interval::new(1.0, 2.0).unwrap();
        assert_eq!(i.to_string(), "(1, 2]");
        assert_eq!(format!("{i:?}"), "(1, 2]");
    }
}
