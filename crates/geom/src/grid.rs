use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeomError, Interval, Point, Rect};

/// Identifier of a grid cell: the linearized (row-major) cell index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CellId(pub usize);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// Per-dimension integer coordinates of a grid cell.
pub type CellCoords = Vec<usize>;

/// A regular grid over a finite bounding rectangle.
///
/// The subscription-clustering framework (paper §4 / Appendix A) partitions
/// the event space into at most `C` equal-width half-open cells per
/// dimension. Cell `i` along a dimension with bounds `(lo, hi]` and width
/// `w = (hi-lo)/C` covers `(lo + i·w, lo + (i+1)·w]`, so the cells tile the
/// bounds exactly.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Grid, Point, Rect};
///
/// # fn main() -> Result<(), pubsub_geom::GeomError> {
/// let bounds = Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0])?;
/// let grid = Grid::new(bounds, vec![5, 5])?;
/// let cell = grid.cell_of_point(&Point::new(vec![3.0, 7.5])?).unwrap();
/// assert!(grid.cell_rect(cell).contains_point(&Point::new(vec![3.0, 7.5])?));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Grid {
    bounds: Rect,
    cells_per_dim: Vec<usize>,
    /// Row-major strides; `strides[d]` is the linear-index step of one cell
    /// along dimension `d`.
    strides: Vec<usize>,
    widths: Vec<f64>,
}

impl Grid {
    /// Creates a grid over `bounds` with `cells_per_dim[d]` cells along
    /// dimension `d`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::DimensionMismatch`] if `cells_per_dim.len()` differs
    ///   from `bounds.dims()`;
    /// * [`GeomError::EmptyGridAxis`] if any cell count is zero;
    /// * [`GeomError::UnboundedGrid`] if any side of `bounds` is not finite.
    pub fn new(bounds: Rect, cells_per_dim: Vec<usize>) -> Result<Self, GeomError> {
        if cells_per_dim.len() != bounds.dims() {
            return Err(GeomError::DimensionMismatch {
                expected: bounds.dims(),
                got: cells_per_dim.len(),
            });
        }
        for (d, side) in bounds.sides().iter().enumerate() {
            if !side.is_finite() {
                return Err(GeomError::UnboundedGrid { dim: d });
            }
        }
        if let Some(dim) = cells_per_dim.iter().position(|&c| c == 0) {
            return Err(GeomError::EmptyGridAxis { dim });
        }
        let mut strides = vec![0usize; cells_per_dim.len()];
        let mut acc = 1usize;
        for d in (0..cells_per_dim.len()).rev() {
            strides[d] = acc;
            acc = acc
                .checked_mul(cells_per_dim[d])
                .expect("grid cell count overflows usize");
        }
        let widths = bounds
            .sides()
            .iter()
            .zip(&cells_per_dim)
            .map(|(side, &c)| side.length() / c as f64)
            .collect();
        Ok(Grid {
            bounds,
            cells_per_dim,
            strides,
            widths,
        })
    }

    /// Creates a grid with the same number of cells along every dimension.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid::new`].
    pub fn uniform(bounds: Rect, cells: usize) -> Result<Self, GeomError> {
        let dims = bounds.dims();
        Grid::new(bounds, vec![cells; dims])
    }

    /// The grid's bounding rectangle.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.cells_per_dim.len()
    }

    /// Cells along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn cells_along(&self, d: usize) -> usize {
        self.cells_per_dim[d]
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells_per_dim.iter().product()
    }

    /// Converts per-dimension coordinates to the linear cell id.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a coordinate is out of range.
    pub fn id_of_coords(&self, coords: &[usize]) -> CellId {
        debug_assert_eq!(coords.len(), self.dims());
        let mut id = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.cells_per_dim[d]);
            id += c * self.strides[d];
        }
        CellId(id)
    }

    /// Converts a linear cell id back to per-dimension coordinates.
    pub fn coords_of_id(&self, id: CellId) -> CellCoords {
        let mut rem = id.0;
        let mut coords = Vec::with_capacity(self.dims());
        for d in 0..self.dims() {
            coords.push(rem / self.strides[d]);
            rem %= self.strides[d];
        }
        coords
    }

    /// Index along dimension `d` of the cell containing coordinate `x`, or
    /// `None` if `x` lies outside the grid bounds on that dimension.
    fn axis_cell(&self, d: usize, x: f64) -> Option<usize> {
        let side = self.bounds.side(d);
        if !side.contains(x) {
            return None;
        }
        let w = self.widths[d];
        let mut i = ((x - side.lo()) / w).floor() as isize;
        // Half-open cells: a coordinate exactly on an internal boundary
        // `lo + i·w` belongs to cell `i-1`; floating error can also push the
        // quotient one cell too far in either direction, so fix up locally.
        while i > 0 && x <= side.lo() + i as f64 * w {
            i -= 1;
        }
        while ((i + 1) as f64) * w + side.lo() < x {
            i += 1;
        }
        Some((i.max(0) as usize).min(self.cells_per_dim[d] - 1))
    }

    /// The cell containing `p`, or `None` if `p` is outside the grid.
    pub fn cell_of_point(&self, p: &Point) -> Option<CellId> {
        debug_assert_eq!(p.dims(), self.dims());
        let mut id = 0usize;
        for d in 0..self.dims() {
            id += self.axis_cell(d, p.coord(d))? * self.strides[d];
        }
        Some(CellId(id))
    }

    /// The rectangle covered by a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell_rect(&self, id: CellId) -> Rect {
        assert!(id.0 < self.cell_count(), "cell id out of range");
        let coords = self.coords_of_id(id);
        let sides = coords
            .iter()
            .enumerate()
            .map(|(d, &c)| {
                let side = self.bounds.side(d);
                let w = self.widths[d];
                let lo = side.lo() + c as f64 * w;
                // Use the exact grid bound for the last cell so the cells
                // tile the bounds without floating gaps.
                let hi = if c + 1 == self.cells_per_dim[d] {
                    side.hi()
                } else {
                    side.lo() + (c as f64 + 1.0) * w
                };
                Interval::new(lo, hi).expect("cell bounds are ordered")
            })
            .collect();
        Rect::new(sides).expect("grid has >= 1 dimension")
    }

    /// All cell ids whose rectangles intersect `r` (in ascending id order).
    ///
    /// An empty or fully-outside rectangle yields an empty vector.
    pub fn cells_intersecting(&self, r: &Rect) -> Vec<CellId> {
        debug_assert_eq!(r.dims(), self.dims());
        if r.is_empty() {
            return Vec::new();
        }
        // Per-dimension index ranges of intersecting cells.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.dims());
        for d in 0..self.dims() {
            let side = self.bounds.side(d);
            let q = r.side(d);
            if !side.intersects(q) {
                return Vec::new();
            }
            let w = self.widths[d];
            // First cell i with lo + (i+1)w > q.lo.
            let mut i_min = ((q.lo() - side.lo()) / w).floor().max(0.0) as usize;
            while side.lo() + (i_min as f64 + 1.0) * w <= q.lo() {
                i_min += 1;
            }
            // Last cell i with lo + i·w < q.hi.
            let mut i_max = (((q.hi() - side.lo()) / w).ceil() as isize - 1)
                .clamp(0, self.cells_per_dim[d] as isize - 1) as usize;
            while i_max > 0 && side.lo() + i_max as f64 * w >= q.hi() {
                i_max -= 1;
            }
            i_min = i_min.min(self.cells_per_dim[d] - 1);
            if i_min > i_max {
                return Vec::new();
            }
            ranges.push((i_min, i_max));
        }
        // Cartesian product of the ranges, emitted in ascending linear order.
        let mut out = Vec::new();
        let mut coords: Vec<usize> = ranges.iter().map(|&(lo, _)| lo).collect();
        loop {
            out.push(self.id_of_coords(&coords));
            // Odometer increment from the last dimension.
            let mut d = self.dims();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if coords[d] < ranges[d].1 {
                    coords[d] += 1;
                    break;
                }
                coords[d] = ranges[d].0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d() -> Grid {
        let bounds = Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap();
        Grid::new(bounds, vec![5, 2]).unwrap()
    }

    #[test]
    fn construction_errors() {
        let bounds = Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        assert!(matches!(
            Grid::new(bounds.clone(), vec![2]),
            Err(GeomError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Grid::new(bounds, vec![2, 0]),
            Err(GeomError::EmptyGridAxis { dim: 1 })
        ));
        let unbounded = Rect::new(vec![Interval::at_least(0.0)]).unwrap();
        assert!(matches!(
            Grid::new(unbounded, vec![4]),
            Err(GeomError::UnboundedGrid { dim: 0 })
        ));
    }

    #[test]
    fn counts_and_coords_roundtrip() {
        let g = grid_2d();
        assert_eq!(g.cell_count(), 10);
        assert_eq!(g.dims(), 2);
        assert_eq!(g.cells_along(0), 5);
        for id in 0..g.cell_count() {
            let coords = g.coords_of_id(CellId(id));
            assert_eq!(g.id_of_coords(&coords), CellId(id));
        }
    }

    #[test]
    fn point_to_cell_respects_half_open_boundaries() {
        let g = grid_2d(); // widths: 2.0 and 5.0
        let cell = |x: f64, y: f64| g.cell_of_point(&Point::new(vec![x, y]).unwrap());

        // Interior point.
        assert_eq!(cell(1.0, 1.0), Some(g.id_of_coords(&[0, 0])));
        // Exactly on an internal boundary -> belongs to the lower cell.
        assert_eq!(cell(2.0, 5.0), Some(g.id_of_coords(&[0, 0])));
        assert_eq!(cell(2.0001, 5.0001), Some(g.id_of_coords(&[1, 1])));
        // Upper-right corner belongs to the last cell.
        assert_eq!(cell(10.0, 10.0), Some(g.id_of_coords(&[4, 1])));
        // The lower-left corner is *outside* (open on the left).
        assert_eq!(cell(0.0, 1.0), None);
        // Fully outside.
        assert_eq!(cell(11.0, 1.0), None);
    }

    #[test]
    fn cell_rects_tile_the_bounds() {
        let g = grid_2d();
        let total: f64 = (0..g.cell_count())
            .map(|i| g.cell_rect(CellId(i)).volume())
            .sum();
        assert!((total - g.bounds().volume()).abs() < 1e-9);
        // No two cells intersect (half-open tiling).
        for i in 0..g.cell_count() {
            for j in (i + 1)..g.cell_count() {
                assert!(!g.cell_rect(CellId(i)).intersects(&g.cell_rect(CellId(j))));
            }
        }
    }

    #[test]
    fn cells_intersecting_rect() {
        let g = grid_2d();
        // A rect inside cell (1,0) only: (2,4] x (0,5].
        let r = Rect::from_corners(&[2.5, 1.0], &[3.5, 2.0]).unwrap();
        assert_eq!(g.cells_intersecting(&r), vec![g.id_of_coords(&[1, 0])]);

        // A rect touching cells (0..=2, 0..=1).
        let r2 = Rect::from_corners(&[1.0, 4.0], &[4.5, 6.0]).unwrap();
        let got = g.cells_intersecting(&r2);
        let want: Vec<CellId> = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]
            .iter()
            .map(|&(a, b)| g.id_of_coords(&[a, b]))
            .collect();
        let mut want = want;
        want.sort();
        assert_eq!(got, want);

        // A rect whose low edge sits exactly on a cell boundary does NOT
        // intersect the lower cell (half-open).
        let r3 = Rect::from_corners(&[2.0, 0.0], &[4.0, 5.0]).unwrap();
        assert_eq!(g.cells_intersecting(&r3), vec![g.id_of_coords(&[1, 0])]);

        // Disjoint from the grid.
        let r4 = Rect::from_corners(&[20.0, 20.0], &[30.0, 30.0]).unwrap();
        assert!(g.cells_intersecting(&r4).is_empty());
    }

    #[test]
    fn cells_intersecting_agrees_with_geometry() {
        let g = grid_2d();
        let r = Rect::from_corners(&[1.5, 2.5], &[8.0, 9.0]).unwrap();
        let got = g.cells_intersecting(&r);
        let brute: Vec<CellId> = (0..g.cell_count())
            .map(CellId)
            .filter(|&id| g.cell_rect(id).intersects(&r))
            .collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn unbounded_query_rect_covers_everything() {
        let g = grid_2d();
        let all = g.cells_intersecting(&Rect::unbounded(2));
        assert_eq!(all.len(), g.cell_count());
    }

    #[test]
    fn uniform_constructor() {
        let bounds = Rect::from_corners(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]).unwrap();
        let g = Grid::uniform(bounds, 3).unwrap();
        assert_eq!(g.cell_count(), 27);
    }
}
