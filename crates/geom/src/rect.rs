use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeomError, Interval, Point};

/// An axis-aligned rectangle in `R^N`: the geometric form of a subscription.
///
/// Each dimension is a half-open [`Interval`] `(lo, hi]`. A rectangle is
/// *empty* if any of its projections is empty.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Interval, Point, Rect};
///
/// # fn main() -> Result<(), pubsub_geom::GeomError> {
/// let sub = Rect::new(vec![
///     Interval::new(75.0, 80.0)?,   // price
///     Interval::at_least(999.0),    // volume >= 1000
/// ])?;
/// assert!(sub.contains_point(&Point::new(vec![78.0, 2000.0])?));
/// assert!(!sub.contains_point(&Point::new(vec![78.0, 500.0])?));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    sides: Vec<Interval>,
}

impl Rect {
    /// Creates a rectangle from its per-dimension intervals.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ZeroDimensional`] if `sides` is empty.
    pub fn new(sides: Vec<Interval>) -> Result<Self, GeomError> {
        if sides.is_empty() {
            return Err(GeomError::ZeroDimensional);
        }
        Ok(Rect { sides })
    }

    /// The rectangle covering all of `R^N` (a fully wild-card subscription).
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn unbounded(dims: usize) -> Self {
        assert!(dims > 0, "rectangle must have at least one dimension");
        Rect {
            sides: vec![Interval::unbounded(); dims],
        }
    }

    /// Builds the rectangle `(lo, hi]` per dimension from two corner slices.
    ///
    /// # Errors
    ///
    /// Propagates interval construction errors and returns
    /// [`GeomError::DimensionMismatch`] if the slices differ in length.
    pub fn from_corners(lo: &[f64], hi: &[f64]) -> Result<Self, GeomError> {
        if lo.len() != hi.len() {
            return Err(GeomError::DimensionMismatch {
                expected: lo.len(),
                got: hi.len(),
            });
        }
        let sides = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| Interval::new(l, h))
            .collect::<Result<Vec<_>, _>>()?;
        Rect::new(sides)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.sides.len()
    }

    /// The projection of the rectangle onto dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn side(&self, d: usize) -> &Interval {
        &self.sides[d]
    }

    /// All per-dimension intervals.
    pub fn sides(&self) -> &[Interval] {
        &self.sides
    }

    /// `true` if any projection is empty (the rectangle contains no point).
    pub fn is_empty(&self) -> bool {
        self.sides.iter().any(Interval::is_empty)
    }

    /// `true` if every projection is finite.
    pub fn is_finite(&self) -> bool {
        self.sides.iter().all(Interval::is_finite)
    }

    /// Point-membership test (the *matching* predicate of the paper):
    /// `p ∈ rect ⇔ ∀d: lo_d < p_d ≤ hi_d`.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ; indexes in hot query paths are
    /// validated once at index-build time instead of per query.
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dims(), p.dims());
        self.sides
            .iter()
            .zip(p.as_slice())
            .all(|(side, &x)| side.contains(x))
    }

    /// `true` if `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        other.is_empty()
            || self
                .sides
                .iter()
                .zip(&other.sides)
                .all(|(a, b)| a.contains_interval(b))
    }

    /// `true` if the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.sides
            .iter()
            .zip(&other.sides)
            .all(|(a, b)| a.intersects(b))
    }

    /// The intersection, or `None` if the rectangles are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        debug_assert_eq!(self.dims(), other.dims());
        let mut sides = Vec::with_capacity(self.dims());
        for (a, b) in self.sides.iter().zip(&other.sides) {
            sides.push(a.intersection(b)?);
        }
        Some(Rect { sides })
    }

    /// The minimum bounding rectangle of the two operands.
    pub fn mbr_with(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        Rect {
            sides: self
                .sides
                .iter()
                .zip(&other.sides)
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// The minimum bounding rectangle of a non-empty collection.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<'a, I>(rects: I) -> Option<Rect>
    where
        I: IntoIterator<Item = &'a Rect>,
    {
        let mut it = rects.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, r| acc.mbr_with(r)))
    }

    /// The volume `V(I) = Π_d (hi_d − lo_d)`; `+∞` if any side is unbounded,
    /// `0` if any side is degenerate.
    pub fn volume(&self) -> f64 {
        self.sides.iter().map(Interval::length).product()
    }

    /// The *margin*: the sum of the side lengths. The paper breaks sweep
    /// ties by "total perimeter", which in `N` dimensions is proportional to
    /// this quantity, so minimizing margin minimizes perimeter.
    pub fn margin(&self) -> f64 {
        self.sides.iter().map(Interval::length).sum()
    }

    /// The geometric center (used to order objects during binarization).
    pub fn center(&self) -> Point {
        // Interval::center is always finite, so this cannot fail.
        Point::new(self.sides.iter().map(Interval::center).collect())
            .expect("rect has >= 1 dimension and finite centers")
    }

    /// The dimension along which the rectangle is longest, breaking ties in
    /// favor of the lowest index. Infinite sides win over finite ones.
    pub fn longest_dim(&self) -> usize {
        let mut best = 0usize;
        let mut best_len = self.sides[0].length();
        for (d, side) in self.sides.iter().enumerate().skip(1) {
            let len = side.length();
            if len > best_len {
                best = d;
                best_len = len;
            }
        }
        best
    }

    /// Clamps every side into the corresponding side of `bounds`.
    ///
    /// Disjoint sides collapse to an empty interval on the boundary, so the
    /// result is always contained in `bounds`.
    pub fn clamp_to(&self, bounds: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), bounds.dims());
        Rect {
            sides: self
                .sides
                .iter()
                .zip(&bounds.sides)
                .map(|(s, b)| s.clamp_to(b))
                .collect(),
        }
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[")?;
        for (i, s) in self.sides.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::from_corners(lo, hi).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(Rect::new(vec![]), Err(GeomError::ZeroDimensional));
        assert!(matches!(
            Rect::from_corners(&[0.0], &[1.0, 2.0]),
            Err(GeomError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Rect::from_corners(&[2.0], &[1.0]),
            Err(GeomError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn containment_is_half_open_per_dimension() {
        let r = rect(&[0.0, 0.0], &[10.0, 5.0]);
        assert!(r.contains_point(&Point::new(vec![10.0, 5.0]).unwrap()));
        assert!(!r.contains_point(&Point::new(vec![0.0, 2.0]).unwrap()));
        assert!(!r.contains_point(&Point::new(vec![5.0, 0.0]).unwrap()));
    }

    #[test]
    fn intersection_behaviour() {
        let a = rect(&[0.0, 0.0], &[10.0, 10.0]);
        let b = rect(&[5.0, 5.0], &[15.0, 15.0]);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, rect(&[5.0, 5.0], &[10.0, 10.0]));

        // Touching along a shared boundary: half-open means disjoint.
        let c = rect(&[10.0, 0.0], &[20.0, 10.0]);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn mbr_and_bounding() {
        let a = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let b = rect(&[5.0, -2.0], &[6.0, 0.5]);
        let m = a.mbr_with(&b);
        assert_eq!(m, rect(&[0.0, -2.0], &[6.0, 1.0]));
        assert!(m.contains_rect(&a) && m.contains_rect(&b));

        let all = Rect::bounding([&a, &b]).unwrap();
        assert_eq!(all, m);
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn volume_margin_center() {
        let r = rect(&[0.0, 0.0, 0.0], &[2.0, 3.0, 4.0]);
        assert_eq!(r.volume(), 24.0);
        assert_eq!(r.margin(), 9.0);
        assert_eq!(r.center().as_slice(), &[1.0, 1.5, 2.0]);

        let unbounded = Rect::new(vec![
            Interval::new(0.0, 1.0).unwrap(),
            Interval::at_least(5.0),
        ])
        .unwrap();
        assert_eq!(unbounded.volume(), f64::INFINITY);
        assert!(!unbounded.is_finite());
    }

    #[test]
    fn longest_dim_prefers_first_on_ties_and_infinite_sides() {
        let r = rect(&[0.0, 0.0], &[3.0, 3.0]);
        assert_eq!(r.longest_dim(), 0);
        let r2 = rect(&[0.0, 0.0], &[3.0, 4.0]);
        assert_eq!(r2.longest_dim(), 1);
        let r3 = Rect::new(vec![
            Interval::new(0.0, 100.0).unwrap(),
            Interval::at_least(0.0),
        ])
        .unwrap();
        assert_eq!(r3.longest_dim(), 1);
    }

    #[test]
    fn clamp_produces_contained_rect() {
        let bounds = rect(&[0.0, 0.0], &[20.0, 20.0]);
        let sub = Rect::new(vec![Interval::at_least(15.0), Interval::unbounded()]).unwrap();
        let clamped = sub.clamp_to(&bounds);
        assert!(bounds.contains_rect(&clamped));
        assert_eq!(clamped, rect(&[15.0, 0.0], &[20.0, 20.0]));

        // Fully outside the bounds: collapses to an empty rect on the edge.
        let out = rect(&[30.0, 30.0], &[40.0, 40.0]);
        let c = out.clamp_to(&bounds);
        assert!(c.is_empty());
        assert!(bounds.contains_rect(&c));
    }

    #[test]
    fn empty_rect_is_contained_everywhere_and_intersects_nothing() {
        let bounds = rect(&[0.0], &[10.0]);
        let empty = Rect::new(vec![Interval::empty_at(5.0)]).unwrap();
        assert!(empty.is_empty());
        assert!(bounds.contains_rect(&empty));
        assert!(!empty.intersects(&bounds));
    }

    #[test]
    fn debug_rendering() {
        let r = rect(&[0.0, 1.0], &[2.0, 3.0]);
        assert_eq!(format!("{r:?}"), "Rect[(0, 2] × (1, 3]]");
    }
}
