use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::GeomError;

/// A published event: a point in the `N`-dimensional event space `Ω ⊆ R^N`.
///
/// # Example
///
/// ```
/// use pubsub_geom::Point;
///
/// # fn main() -> Result<(), pubsub_geom::GeomError> {
/// // {bst, name, quote, volume}
/// let event = Point::new(vec![0.0, 10.0, 9.25, 12.0])?;
/// assert_eq!(event.dims(), 4);
/// assert_eq!(event[2], 9.25);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ZeroDimensional`] for an empty coordinate vector
    /// and [`GeomError::NotANumber`] if any coordinate is NaN or infinite
    /// (events are always finite; only *subscriptions* may be unbounded).
    pub fn new(coords: Vec<f64>) -> Result<Self, GeomError> {
        if coords.is_empty() {
            return Err(GeomError::ZeroDimensional);
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeomError::NotANumber);
        }
        Ok(Point { coords })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// The coordinate along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn coord(&self, d: usize) -> f64 {
        self.coords[d]
    }

    /// All coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point, returning the coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Squared Euclidean distance to another point.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if dimensionalities differ.
    pub fn distance_sq(&self, other: &Point) -> Result<f64, GeomError> {
        if self.dims() != other.dims() {
            return Err(GeomError::DimensionMismatch {
                expected: self.dims(),
                got: other.dims(),
            });
        }
        Ok(self
            .coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, d: usize) -> &f64 {
        &self.coords[d]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_nan_and_infinite() {
        assert_eq!(Point::new(vec![]), Err(GeomError::ZeroDimensional));
        assert_eq!(Point::new(vec![f64::NAN]), Err(GeomError::NotANumber));
        assert_eq!(Point::new(vec![f64::INFINITY]), Err(GeomError::NotANumber));
    }

    #[test]
    fn accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(p.dims(), 3);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.clone().into_coords(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn distance() {
        let a = Point::new(vec![0.0, 0.0]).unwrap();
        let b = Point::new(vec![3.0, 4.0]).unwrap();
        assert_eq!(a.distance_sq(&b).unwrap(), 25.0);
        let c = Point::new(vec![1.0]).unwrap();
        assert!(matches!(
            a.distance_sq(&c),
            Err(GeomError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn debug_is_nonempty() {
        let p = Point::new(vec![1.5]).unwrap();
        assert_eq!(format!("{p:?}"), "Point[1.5]");
    }
}
