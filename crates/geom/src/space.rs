use serde::{Deserialize, Serialize};

use crate::{GeomError, Point, Rect};

/// A named, bounded event space `Ω`.
///
/// Subscriptions may carry unbounded predicates (`volume ≥ 1000` is the
/// half-open rectangle side `(999, +∞)`), but spatial indexes and grids need
/// finite geometry. A `Space` couples human-readable attribute names with a
/// finite bounding rectangle used to clamp subscriptions before indexing.
///
/// # Example
///
/// ```
/// use pubsub_geom::{Interval, Rect, Space};
///
/// # fn main() -> Result<(), pubsub_geom::GeomError> {
/// let space = Space::new(
///     vec!["bst".into(), "name".into(), "quote".into(), "volume".into()],
///     Rect::from_corners(&[-1.0, 0.0, 0.0, 0.0], &[3.0, 20.0, 20.0, 20.0])?,
/// )?;
/// assert_eq!(space.dims(), 4);
/// assert_eq!(space.attribute(3), "volume");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Space {
    attributes: Vec<String>,
    bounds: Rect,
}

impl Space {
    /// Creates a space with one name per dimension.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DimensionMismatch`] if the name count differs
    /// from the bounds' dimensionality and [`GeomError::UnboundedGrid`] if
    /// the bounds are not finite (spaces exist precisely to provide finite
    /// clamping bounds).
    pub fn new(attributes: Vec<String>, bounds: Rect) -> Result<Self, GeomError> {
        if attributes.len() != bounds.dims() {
            return Err(GeomError::DimensionMismatch {
                expected: bounds.dims(),
                got: attributes.len(),
            });
        }
        if let Some(d) = bounds.sides().iter().position(|s| !s.is_finite()) {
            return Err(GeomError::UnboundedGrid { dim: d });
        }
        Ok(Space { attributes, bounds })
    }

    /// Creates a space with synthetic attribute names `x0..xN`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::UnboundedGrid`] if the bounds are not finite.
    pub fn anonymous(bounds: Rect) -> Result<Self, GeomError> {
        let names = (0..bounds.dims()).map(|d| format!("x{d}")).collect();
        Space::new(names, bounds)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// The attribute name of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn attribute(&self, d: usize) -> &str {
        &self.attributes[d]
    }

    /// All attribute names in dimension order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The finite bounding rectangle of the space.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// The dimension index of a named attribute.
    pub fn dim_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Clamps a subscription rectangle into the space bounds.
    pub fn clamp(&self, r: &Rect) -> Rect {
        r.clamp_to(&self.bounds)
    }

    /// `true` if the event lies inside the space.
    pub fn contains(&self, p: &Point) -> bool {
        self.bounds.contains_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn space() -> Space {
        Space::new(
            vec!["price".into(), "volume".into()],
            Rect::from_corners(&[0.0, 0.0], &[20.0, 20.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        let bounds = Rect::from_corners(&[0.0], &[1.0]).unwrap();
        assert!(matches!(
            Space::new(vec!["a".into(), "b".into()], bounds),
            Err(GeomError::DimensionMismatch { .. })
        ));
        let unbounded = Rect::new(vec![Interval::unbounded()]).unwrap();
        assert!(matches!(
            Space::new(vec!["a".into()], unbounded),
            Err(GeomError::UnboundedGrid { dim: 0 })
        ));
    }

    #[test]
    fn attribute_lookup() {
        let s = space();
        assert_eq!(s.dim_of("volume"), Some(1));
        assert_eq!(s.dim_of("nope"), None);
        assert_eq!(s.attribute(0), "price");
        assert_eq!(s.attributes().len(), 2);
    }

    #[test]
    fn anonymous_names() {
        let s = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap()).unwrap();
        assert_eq!(s.attribute(1), "x1");
    }

    #[test]
    fn clamping_unbounded_subscription() {
        let s = space();
        let sub = Rect::new(vec![Interval::at_least(15.0), Interval::unbounded()]).unwrap();
        let clamped = s.clamp(&sub);
        assert!(s.bounds().contains_rect(&clamped));
        assert!(clamped.is_finite());
    }

    #[test]
    fn membership() {
        let s = space();
        assert!(s.contains(&Point::new(vec![5.0, 5.0]).unwrap()));
        assert!(!s.contains(&Point::new(vec![25.0, 5.0]).unwrap()));
    }
}
