//! N-dimensional event-space geometry for content-based publish-subscribe.
//!
//! This crate provides the geometric substrate used throughout the
//! reproduction of *"New Algorithms for Content-Based
//! Publication-Subscription Systems"* (ICDCS 2003):
//!
//! * [`Interval`] — a half-open interval `(lo, hi]`. Following the paper,
//!   every predicate range is open on the left and closed on the right so
//!   that adjacent ranges "fit together" without overlap.
//! * [`Point`] — a published event, a point in `R^N`.
//! * [`Rect`] — a subscription, an axis-aligned rectangle in `R^N` whose
//!   projection on each dimension is an [`Interval`].
//! * [`Grid`] — a regular grid over a bounding rectangle, used by the
//!   subscription-clustering algorithms.
//! * [`Space`] — a named, bounded event space used to clamp otherwise
//!   unbounded predicates (e.g. `volume ≥ 1000`) to finite geometry.
//!
//! # Example
//!
//! ```
//! use pubsub_geom::{Interval, Point, Rect};
//!
//! # fn main() -> Result<(), pubsub_geom::GeomError> {
//! // The Gryphon-style subscription: 75 < price <= 80, volume >= 1000.
//! let sub = Rect::new(vec![
//!     Interval::new(75.0, 80.0)?,
//!     Interval::at_least(999.0),
//! ])?;
//! let trade = Point::new(vec![78.25, 1500.0])?;
//! assert!(sub.contains_point(&trade));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod grid;
mod interval;
mod point;
mod rect;
mod soa;
mod space;

pub use error::GeomError;
pub use grid::{CellCoords, CellId, Grid};
pub use interval::Interval;
pub use point::Point;
pub use rect::Rect;
pub use soa::EventSoA;
pub use space::Space;
