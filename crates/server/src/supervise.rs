//! The supervised staged server: the same ingest → executors → fold →
//! egress pipeline as [`StagedServer`](crate::StagedServer), plus a
//! supervisor thread that detects stage-thread death and restarts the
//! stage without losing accepted work.
//!
//! # Failure model and guarantees
//!
//! Every stage thread parks its in-flight work item in a *salvage slot*
//! before entering the region where it can die, and only removes it
//! once the item's effects are fully handed to the next stage. When a
//! thread dies the supervisor (which polls
//! [`JoinHandle::is_finished`] and therefore never blocks on a healthy
//! thread) recovers the slot:
//!
//! * **Executor death** — the salvaged `(ticket, item)` is pushed into
//!   the sequence window as a *raw* batch by the replacement executor
//!   (its first act), so the window never has a permanent gap and the
//!   fold reprocesses the batch itself. Result: the batch's events are
//!   delivered exactly once.
//! * **Fold death** — the broker died with the thread. The supervisor
//!   rebuilds it through the configured [`RecoverFn`] (typically
//!   [`BrokerBuilder::recover`](pubsub_core::BrokerBuilder::recover)
//!   over the durable journal), republishes the rebuilt
//!   [`PublishView`](pubsub_core::PublishView) *at the same view
//!   version* (no reader is lied to about ordering), and spawns a new
//!   fold that first re-applies the salvaged item and then continues
//!   consuming the *same* sequence window. Batches the executors
//!   processed against the pre-crash view carry a stale engine epoch;
//!   the new fold detects the mismatch and reprocesses them fold-side
//!   instead of asserting. Acked control operations were journaled
//!   before their ack was sent, so recovery replays them exactly once;
//!   an un-acked operation in flight is applied at most once and its
//!   caller observes a clean channel drop.
//! * **Egress death** — the salvage slot holds the current egress batch
//!   *and the count of records already emitted*; the replacement thread
//!   resumes at that index, so the sink sees each record exactly once
//!   (a record can repeat only if the sink itself panicked midway
//!   through consuming it).
//!
//! # Chaos injection
//!
//! A [`CrashPlan`] schedules deterministic, single-shot panics at
//! stage-progress counts: kill executor `n` after its `k`-th pop, kill
//! the fold after its `k`-th item, kill egress after its `k`-th record.
//! Plans are plain data and can be derived from a seed
//! ([`CrashPlan::seeded`]), which is what the recovery property tests
//! drive.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pubsub_core::{Broker, BrokerError, StageKind};
use pubsub_parallel::{SequenceWindow, StageQueue, VersionedCell};

use crate::batcher::EventBatcher;
use crate::server::{
    flusher_loop, forward, lock, nanos, process, sync_gauges, ControlOp, DeliverySink,
    DispatchState, EgressBatch, EgressTotals, EventRecord, ExecShared, IngestHandle, IngestShared,
    Popped, ServerStats, ServingConfig, ServingError, Staged, WorkItem,
};

/// Rebuilds a broker after the fold stage died with it — typically a
/// closure around [`BrokerBuilder::recover`](pubsub_core::BrokerBuilder::recover)
/// pointed at the durable journal the dead broker was writing.
pub type RecoverFn = Box<dyn FnMut() -> Result<Broker, BrokerError> + Send>;

/// Which stage thread a chaos event kills.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashKind {
    /// Kill pipeline executor `n` (0-based) after it has popped the
    /// configured number of work items off the dispatcher.
    KillExecutor(usize),
    /// Kill the fold thread (taking the broker with it) after it has
    /// consumed the configured number of sequence-window items.
    KillFold,
    /// Kill the egress thread after it has emitted the configured
    /// number of records to the sink.
    KillEgress,
}

/// One scheduled kill: fire `kind` once the matching stage-progress
/// counter reaches `after` (1-based — `after == 1` dies on the first
/// item). Each event fires at most once per server lifetime.
#[derive(Clone, Copy, Debug)]
pub struct CrashEvent {
    /// What dies.
    pub kind: CrashKind,
    /// The stage-local progress count at which it dies.
    pub after: u64,
}

/// A deterministic process-level chaos schedule: a set of single-shot
/// [`CrashEvent`]s the supervised server injects as real panics at
/// stage-progress points. Plain data — build one explicitly with
/// [`CrashPlan::kill`] or derive one from a seed with
/// [`CrashPlan::seeded`].
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    events: Vec<CrashEvent>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CrashPlan {
    /// An empty plan: nothing crashes.
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Adds one kill to the schedule.
    #[must_use]
    pub fn kill(mut self, kind: CrashKind, after: u64) -> Self {
        self.events.push(CrashEvent {
            kind,
            after: after.max(1),
        });
        self
    }

    /// A seeded random plan: `crashes` kills spread over the three
    /// stage kinds (`executors` is the executor count to draw targets
    /// from), with progress counts in `1..=32`. The same seed always
    /// yields the same plan.
    pub fn seeded(seed: u64, crashes: usize, executors: usize) -> Self {
        let mut state = seed;
        let mut plan = CrashPlan::new();
        for _ in 0..crashes {
            let roll = splitmix64(&mut state);
            let kind = match roll % 3 {
                0 => CrashKind::KillExecutor(
                    (splitmix64(&mut state) % executors.max(1) as u64) as usize,
                ),
                1 => CrashKind::KillFold,
                _ => CrashKind::KillEgress,
            };
            let after = splitmix64(&mut state) % 32 + 1;
            plan = plan.kill(kind, after);
        }
        plan
    }

    /// The scheduled kills.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The chaos panic payload — recognized by the process-wide panic hook
/// so injected crashes do not spam stderr while still unwinding like
/// any real panic.
struct ChaosPanic;

fn install_chaos_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Shared single-shot chaos state: per-stage progress counters plus a
/// fired flag per scheduled event.
struct ChaosSwitch {
    events: Vec<(CrashEvent, AtomicBool)>,
    exec_pops: Vec<AtomicU64>,
    fold_items: AtomicU64,
    egress_records: AtomicU64,
}

impl ChaosSwitch {
    fn new(plan: &CrashPlan, executors: usize) -> Self {
        ChaosSwitch {
            events: plan
                .events
                .iter()
                .map(|e| (*e, AtomicBool::new(false)))
                .collect(),
            exec_pops: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            fold_items: AtomicU64::new(0),
            egress_records: AtomicU64::new(0),
        }
    }

    fn fire(&self, kind: CrashKind, count: u64) {
        for (event, fired) in &self.events {
            if event.kind == kind && event.after == count && !fired.swap(true, Ordering::SeqCst) {
                std::panic::panic_any(ChaosPanic);
            }
        }
    }

    /// Executor `index` popped one more work item; dies here if scheduled.
    fn executor_tick(&self, index: usize) {
        let count = self.exec_pops[index].fetch_add(1, Ordering::SeqCst) + 1;
        self.fire(CrashKind::KillExecutor(index), count);
    }

    /// The fold consumed one more window item; dies here if scheduled.
    fn fold_tick(&self) {
        let count = self.fold_items.fetch_add(1, Ordering::SeqCst) + 1;
        self.fire(CrashKind::KillFold, count);
    }

    /// Egress is about to emit one more record; dies here if scheduled.
    fn egress_tick(&self) {
        let count = self.egress_records.fetch_add(1, Ordering::SeqCst) + 1;
        self.fire(CrashKind::KillEgress, count);
    }
}

/// Options for [`SupervisedServer::start`].
#[derive(Default)]
pub struct SuperviseOptions {
    /// How to rebuild the broker when the fold stage dies. Without one,
    /// a fold crash is unrecoverable and [`SupervisedServer::stop`]
    /// reports [`ServingError::Crashed`].
    pub recover: Option<RecoverFn>,
    /// Deterministic crash schedule (empty = no injected chaos).
    pub chaos: CrashPlan,
}

impl fmt::Debug for SuperviseOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuperviseOptions")
            .field("recover", &self.recover.is_some())
            .field("chaos", &self.chaos)
            .finish()
    }
}

/// Supervisor-maintained recovery counters, mirrored into the broker's
/// [`RecoveryCounters`](pubsub_core::RecoveryCounters) at every metrics
/// poll and at shutdown.
#[derive(Debug, Default)]
struct SharedCounters {
    restarts: AtomicU64,
    replayed: AtomicU64,
}

fn sync_recovery(broker: &mut Broker, counters: &SharedCounters) {
    let have = broker.recovery_counters();
    broker.note_recovery(
        counters
            .restarts
            .load(Ordering::Relaxed)
            .saturating_sub(have.restarts),
        counters
            .replayed
            .load(Ordering::Relaxed)
            .saturating_sub(have.replayed_batches),
    );
}

/// Fold-stage state that must outlive any single fold incarnation.
struct FoldState {
    /// The item being applied right now (replayed by the next
    /// incarnation if this one dies mid-apply).
    salvage: Mutex<Option<Staged>>,
    /// The last view version the fold published — the version the
    /// supervisor republishes a recovered view under.
    version: AtomicU64,
}

struct EgressState {
    /// The batch being emitted plus how many of its records already
    /// reached the sink — the resume point for a replacement thread.
    salvage: Mutex<Option<(EgressBatch, usize)>>,
    totals: Mutex<EgressTotals>,
}

enum FoldExit {
    Finished(Box<Broker>),
    Crashed,
}

struct SupervisorOutcome {
    broker: Box<Broker>,
    totals: EgressTotals,
}

/// An executor's in-flight `(ticket, item)`, salvageable after a panic.
type ExecSalvage = Arc<Mutex<Option<(u64, Staged)>>>;

/// Everything the supervisor needs to (re)spawn stage threads.
struct Supervision {
    ctx: Arc<ExecShared>,
    egress_queue: StageQueue<EgressBatch>,
    sink: Arc<Mutex<Box<dyn DeliverySink>>>,
    chaos: Arc<ChaosSwitch>,
    fold_state: Arc<FoldState>,
    egress_state: Arc<EgressState>,
    counters: Arc<SharedCounters>,
    exec_salvage: Vec<ExecSalvage>,
    threads: Option<usize>,
    recover: Option<RecoverFn>,
}

/// The supervised staged server. Same data path and backpressure
/// contract as [`StagedServer`](crate::StagedServer); additionally
/// detects executor / fold / egress thread death and restarts the dead
/// stage (see the module docs for the exact guarantees).
#[derive(Debug)]
pub struct SupervisedServer {
    handle: IngestHandle,
    flusher_stop: Arc<AtomicBool>,
    flusher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<Result<SupervisorOutcome, String>>>,
    counters: Arc<SharedCounters>,
}

impl fmt::Debug for SupervisorOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SupervisorOutcome").finish_non_exhaustive()
    }
}

impl SupervisedServer {
    /// Starts the supervised server: the regular staged pipeline plus
    /// the supervisor thread. `options.recover` enables fold-crash
    /// recovery; `options.chaos` injects the scheduled panics.
    pub fn start(
        mut broker: Broker,
        config: ServingConfig,
        sink: Box<dyn DeliverySink>,
        options: SuperviseOptions,
    ) -> Self {
        install_chaos_hook();
        let dims = broker.space().dims();
        let shared = Arc::new(IngestShared {
            queue: StageQueue::new(config.ingest_capacity),
            shards: (0..config.shards.max(1))
                .map(|_| Mutex::new(EventBatcher::new(config.max_batch, dims)))
                .collect(),
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_reported: AtomicU64::new(0),
            dims,
            flush_interval: config.flush_interval,
        });
        let executors = pubsub_parallel::effective_threads(config.executors);
        let ctx = Arc::new(ExecShared {
            ingest: Arc::clone(&shared),
            dispatch: Mutex::new(DispatchState::default()),
            window: SequenceWindow::new(executors as u64 * 2 + 2),
            cell: VersionedCell::new(broker.publish_view()),
            scratch_pool: Mutex::new(Vec::new()),
            faults_active: broker.faults_active(),
        });
        let egress_queue: StageQueue<EgressBatch> = StageQueue::new(config.egress_capacity);
        let flusher_stop = Arc::new(AtomicBool::new(false));
        let flusher = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&flusher_stop);
            std::thread::Builder::new()
                .name("pubsub-flusher".into())
                .spawn(move || flusher_loop(&shared, &stop))
                .expect("spawn flusher thread")
        };

        let sup = Supervision {
            ctx: Arc::clone(&ctx),
            egress_queue,
            sink: Arc::new(Mutex::new(sink)),
            chaos: Arc::new(ChaosSwitch::new(&options.chaos, executors)),
            fold_state: Arc::new(FoldState {
                salvage: Mutex::new(None),
                version: AtomicU64::new(0),
            }),
            egress_state: Arc::new(EgressState {
                salvage: Mutex::new(None),
                totals: Mutex::new(EgressTotals::default()),
            }),
            counters: Arc::new(SharedCounters::default()),
            exec_salvage: (0..executors).map(|_| Arc::new(Mutex::new(None))).collect(),
            threads: config.threads,
            recover: options.recover,
        };
        let counters = Arc::clone(&sup.counters);
        let supervisor = std::thread::Builder::new()
            .name("pubsub-supervisor".into())
            .spawn(move || supervisor_loop(sup, broker, executors))
            .expect("spawn supervisor thread");

        SupervisedServer {
            handle: IngestHandle { shared },
            flusher_stop,
            flusher: Some(flusher),
            supervisor: Some(supervisor),
            counters,
        }
    }

    /// A transport-in handle for submitting events and control ops.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Stage threads restarted so far.
    pub fn restarts(&self) -> u64 {
        self.counters.restarts.load(Ordering::Relaxed)
    }

    /// In-flight items salvaged and replayed across restarts so far.
    pub fn replayed_batches(&self) -> u64 {
        self.counters.replayed.load(Ordering::Relaxed)
    }

    /// Stops accepting, flushes every shard, drains the pipeline, joins
    /// the supervisor and returns the broker plus aggregate stats
    /// (including restart/replay counts).
    ///
    /// # Errors
    ///
    /// [`ServingError::Crashed`] if a stage died without a recovery
    /// path, or recovery itself failed; accepted-but-undelivered events
    /// are reported lost rather than silently dropped.
    pub fn stop(mut self) -> Result<(Broker, ServerStats), ServingError> {
        let supervisor = self
            .supervisor
            .take()
            .expect("stop consumes the only handle");
        self.close_ingest();
        let outcome = supervisor
            .join()
            .map_err(|_| ServingError::Crashed("supervisor thread panicked".into()))?
            .map_err(ServingError::Crashed)?;
        let mut broker = *outcome.broker;
        let sh = &*self.handle.shared;
        broker.merge_stage_latencies(StageKind::Egress, &outcome.totals.histo);
        sync_gauges(&mut broker, sh);
        sync_recovery(&mut broker, &self.counters);
        let stats = ServerStats {
            accepted: sh.accepted.load(Ordering::Relaxed),
            rejected: sh.rejected.load(Ordering::Relaxed),
            delivered: outcome.totals.delivered,
            failed: outcome.totals.failed,
            batches: outcome.totals.batches,
            ingest_queue_max_depth: sh.queue.max_depth() as u64,
            restarts: self.counters.restarts.load(Ordering::Relaxed),
            replayed_batches: self.counters.replayed.load(Ordering::Relaxed),
        };
        Ok((broker, stats))
    }

    /// The front half of shutdown: stop admitting, flush the shards
    /// with blocking pushes (accepted events are never dropped), close
    /// the ingest queue and retire the flusher.
    fn close_ingest(&mut self) {
        let sh = &*self.handle.shared;
        sh.accepting.store(false, Ordering::SeqCst);
        for shard in &sh.shards {
            let mut batcher = lock(shard);
            if !batcher.is_empty() {
                let batch = batcher.take(Instant::now());
                let _ = sh.queue.push(WorkItem::Batch(batch));
            }
        }
        sh.queue.close();
        self.flusher_stop.store(true, Ordering::SeqCst);
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

impl Drop for SupervisedServer {
    fn drop(&mut self) {
        if let Some(supervisor) = self.supervisor.take() {
            self.close_ingest();
            let _ = supervisor.join();
        }
    }
}

fn supervisor_loop(
    mut sup: Supervision,
    broker: Broker,
    executors: usize,
) -> Result<SupervisorOutcome, String> {
    let mut exec_handles: Vec<Option<JoinHandle<bool>>> = (0..executors)
        .map(|i| {
            Some(spawn_executor(
                &sup.ctx,
                &sup.chaos,
                i,
                &sup.exec_salvage[i],
                None,
            ))
        })
        .collect();
    let mut fold_handle = Some(spawn_fold(&sup, broker));
    let mut egress_handle = Some(spawn_egress(&sup));
    let mut finished_broker: Option<Box<Broker>> = None;
    let mut window_closed = false;

    loop {
        // The fold first: restarting it is what unblocks executors
        // parked on the window or the version cell, so it must never
        // wait behind another stage's bookkeeping.
        if fold_handle.as_ref().is_some_and(JoinHandle::is_finished) {
            let exit = fold_handle
                .take()
                .expect("checked above")
                .join()
                .unwrap_or(FoldExit::Crashed);
            match exit {
                FoldExit::Finished(broker) => finished_broker = Some(broker),
                FoldExit::Crashed => {
                    sup.counters.restarts.fetch_add(1, Ordering::Relaxed);
                    if lock(&sup.fold_state.salvage).is_some() {
                        sup.counters.replayed.fetch_add(1, Ordering::Relaxed);
                    }
                    let Some(recover) = sup.recover.as_mut() else {
                        abandon(&sup);
                        return Err("fold stage died and no RecoverFn was configured".into());
                    };
                    let mut broker = match recover() {
                        Ok(broker) => broker,
                        Err(e) => {
                            abandon(&sup);
                            return Err(format!("fold recovery failed: {e}"));
                        }
                    };
                    // Swap the rebuilt view in under the *same* version:
                    // executors stamped with it must neither hang nor
                    // observe a version they were not promised.
                    let version = sup.fold_state.version.load(Ordering::SeqCst);
                    sup.ctx
                        .cell
                        .republish(version, Arc::new(broker.publish_view()));
                    fold_handle = Some(spawn_fold(&sup, broker));
                }
            }
        }
        for (i, slot) in exec_handles.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                let clean = slot.take().expect("checked above").join().unwrap_or(false);
                if !clean {
                    sup.counters.restarts.fetch_add(1, Ordering::Relaxed);
                    let preload = lock(&sup.exec_salvage[i]).take();
                    if preload.is_some() {
                        sup.counters.replayed.fetch_add(1, Ordering::Relaxed);
                    }
                    // The *replacement* pushes the salvaged ticket (its
                    // first act), so the supervisor itself never blocks
                    // on a window the fold might currently not drain.
                    *slot = Some(spawn_executor(
                        &sup.ctx,
                        &sup.chaos,
                        i,
                        &sup.exec_salvage[i],
                        preload,
                    ));
                }
            }
        }
        // Executors exit cleanly only once the ingest queue is closed
        // and drained; the window may close only after the last of them
        // is gone (a straggler's push would be dropped behind a gap).
        if !window_closed && exec_handles.iter().all(Option::is_none) {
            sup.ctx.window.close();
            window_closed = true;
        }
        if egress_handle.as_ref().is_some_and(JoinHandle::is_finished) {
            let clean = egress_handle
                .take()
                .expect("checked above")
                .join()
                .unwrap_or(false);
            if !clean {
                sup.counters.restarts.fetch_add(1, Ordering::Relaxed);
                if lock(&sup.egress_state.salvage).is_some() {
                    sup.counters.replayed.fetch_add(1, Ordering::Relaxed);
                }
                egress_handle = Some(spawn_egress(&sup));
            }
        }
        if window_closed && fold_handle.is_none() && egress_handle.is_none() {
            if let Some(broker) = finished_broker.take() {
                let totals = std::mem::take(&mut *lock(&sup.egress_state.totals));
                return Ok(SupervisorOutcome { broker, totals });
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Last-resort teardown when the fold cannot be rebuilt: wake and
/// retire every blocked stage thread so nothing leaks. Executors parked
/// on the version cell see a version bump they never expected and bail
/// through their own unwind path; producers parked on the window or
/// queue see them closed.
fn abandon(sup: &Supervision) {
    sup.ctx.ingest.queue.close();
    let (version, view) = sup.ctx.cell.current();
    sup.ctx.cell.publish(version + 1, view);
    sup.ctx.window.close();
    sup.egress_queue.close();
}

fn spawn_executor(
    ctx: &Arc<ExecShared>,
    chaos: &Arc<ChaosSwitch>,
    index: usize,
    salvage: &ExecSalvage,
    preload: Option<(u64, Staged)>,
) -> JoinHandle<bool> {
    let ctx = Arc::clone(ctx);
    let chaos = Arc::clone(chaos);
    let salvage = Arc::clone(salvage);
    std::thread::Builder::new()
        .name(format!("pubsub-exec-{index}"))
        .spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                if let Some((ticket, staged)) = preload {
                    let _ = ctx.window.push(ticket, staged);
                }
                supervised_executor_body(&ctx, &chaos, index, &salvage)
            }))
            .is_ok()
        })
        .expect("spawn executor thread")
}

/// The supervised executor loop: identical dispatch and processing to
/// the unsupervised one, with the popped item parked in the salvage
/// slot across the whole crash window (chaos tick + view pass) so a
/// death never leaves the sequence window with a permanent gap.
fn supervised_executor_body(
    ctx: &ExecShared,
    chaos: &ChaosSwitch,
    index: usize,
    salvage: &Mutex<Option<(u64, Staged)>>,
) {
    loop {
        let (ticket, popped) = {
            let mut st = lock(&ctx.dispatch);
            let Some(item) = ctx.ingest.queue.pop() else {
                return;
            };
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            match item {
                WorkItem::Batch(batch) => (ticket, Popped::Batch(batch, st.version)),
                WorkItem::Control(op) => {
                    if op.bumps_view() {
                        st.version += 1;
                    }
                    (ticket, Popped::Control(op))
                }
            }
        };
        match popped {
            Popped::Control(op) => {
                // Handed to the window before the crash point: a control
                // op is never in executor-side flight.
                let _ = ctx.window.push(ticket, Staged::Control(op));
                chaos.executor_tick(index);
            }
            Popped::Batch(batch, version) => {
                let dequeued = Instant::now();
                *lock(salvage) = Some((ticket, Staged::Raw { batch, dequeued }));
                chaos.executor_tick(index);
                // Run the read-only pass against the batch *in the
                // slot*: a panic anywhere in here (including inside the
                // engine pass) leaves the raw batch salvageable.
                let processed = {
                    let guard = lock(salvage);
                    let Some((_, Staged::Raw { batch, .. })) = guard.as_ref() else {
                        unreachable!("salvage slot holds the popped batch");
                    };
                    if ctx.faults_active {
                        None
                    } else {
                        let (seen, view) = ctx.cell.wait_at_least(version);
                        debug_assert_eq!(seen, version, "executor observed a future view");
                        let mut scratch = lock(&ctx.scratch_pool).pop().unwrap_or_default();
                        match view.process_into(&batch.points, Some(&batch.soa), &mut scratch) {
                            Ok(()) => Some((scratch, view.epoch())),
                            Err(_) => {
                                lock(&ctx.scratch_pool).push(scratch);
                                None
                            }
                        }
                    }
                };
                let (ticket, staged) = lock(salvage).take().expect("slot still full");
                let staged = match (processed, staged) {
                    (Some((scratch, epoch)), Staged::Raw { batch, dequeued }) => {
                        Staged::Processed {
                            batch,
                            scratch,
                            epoch,
                            dequeued,
                        }
                    }
                    (None, raw) => raw,
                    (Some(_), _) => unreachable!("slot was filled with a raw batch"),
                };
                let _ = ctx.window.push(ticket, staged);
            }
        }
    }
}

fn spawn_fold(sup: &Supervision, broker: Broker) -> JoinHandle<FoldExit> {
    let ctx = Arc::clone(&sup.ctx);
    let egress = sup.egress_queue.clone();
    let chaos = Arc::clone(&sup.chaos);
    let fold_state = Arc::clone(&sup.fold_state);
    let counters = Arc::clone(&sup.counters);
    let threads = sup.threads;
    std::thread::Builder::new()
        .name("pubsub-fold".into())
        .spawn(move || {
            match catch_unwind(AssertUnwindSafe(|| {
                supervised_fold_body(
                    broker,
                    &ctx,
                    &egress,
                    threads,
                    &chaos,
                    &fold_state,
                    &counters,
                )
            })) {
                Ok(broker) => FoldExit::Finished(Box::new(broker)),
                Err(_) => FoldExit::Crashed,
            }
        })
        .expect("spawn fold thread")
}

/// The supervised fold: same in-order fold as the unsupervised server,
/// except that (a) every window item is parked in the fold salvage slot
/// while its effects are applied, (b) the published-version counter
/// lives in [`FoldState`] so a successor resumes where this incarnation
/// stopped, and (c) a batch whose pre-computed pass ran under a view
/// this (possibly recovered) broker no longer has is reprocessed
/// fold-side instead of asserting epoch equality.
fn supervised_fold_body(
    mut broker: Broker,
    ctx: &ExecShared,
    egress: &StageQueue<EgressBatch>,
    threads: Option<usize>,
    chaos: &ChaosSwitch,
    fold_state: &FoldState,
    counters: &SharedCounters,
) -> Broker {
    let mut version = fold_state.version.load(Ordering::SeqCst);
    let mut outcomes = Vec::new();
    loop {
        // A salvaged item from a dead predecessor replays first; only
        // then does this incarnation pop (and tick the chaos clock) on
        // its own account.
        if lock(&fold_state.salvage).is_none() {
            match ctx.window.pop_next() {
                Some((_ticket, staged)) => {
                    *lock(&fold_state.salvage) = Some(staged);
                    chaos.fold_tick();
                }
                None => break,
            }
        }
        let mut guard = lock(&fold_state.salvage);
        match guard.as_mut().expect("slot filled above") {
            Staged::Control(_) => {
                let Some(Staged::Control(op)) = guard.take() else {
                    unreachable!("matched above");
                };
                drop(guard);
                let bumps = op.bumps_view();
                match op {
                    ControlOp::Subscribe(node, rect, tx) => {
                        let _ = tx.send(broker.subscribe(node, rect));
                    }
                    ControlOp::Unsubscribe(handle, tx) => {
                        let _ = tx.send(broker.unsubscribe(handle));
                    }
                    ControlOp::Recompile(tx) => {
                        let _ = tx.send(broker.recompile());
                    }
                    ControlOp::Metrics(tx) => {
                        sync_gauges(&mut broker, &ctx.ingest);
                        sync_recovery(&mut broker, counters);
                        let _ = tx.send(broker.metrics_snapshot());
                    }
                }
                if bumps {
                    version += 1;
                    fold_state.version.store(version, Ordering::SeqCst);
                    ctx.cell.publish(version, Arc::new(broker.publish_view()));
                }
            }
            _ => {
                let (results, epoch, folded) = {
                    let staged = guard.as_mut().expect("slot filled above");
                    match staged {
                        Staged::Processed {
                            batch,
                            scratch,
                            epoch,
                            dequeued,
                        } if *epoch == broker.epoch() => {
                            note_ingest_ref(&mut broker, batch, *dequeued);
                            outcomes.clear();
                            broker.fold_staged(batch.len(), *epoch, scratch, &mut outcomes);
                            let folded = Instant::now();
                            broker.note_stage_latency(
                                StageKind::Pipeline,
                                nanos(folded.saturating_duration_since(*dequeued)),
                            );
                            (
                                outcomes.drain(..).map(Ok).collect::<Vec<_>>(),
                                *epoch,
                                folded,
                            )
                        }
                        // Stale pre-computed pass (the view predates a
                        // fold recovery) or a raw batch: the broker
                        // reprocesses it here, deterministically.
                        Staged::Processed {
                            batch, dequeued, ..
                        }
                        | Staged::Raw { batch, dequeued } => {
                            let dequeued = *dequeued;
                            note_ingest_ref(&mut broker, batch, dequeued);
                            let (results, epoch) = process(&mut broker, &batch.points, threads);
                            let folded = Instant::now();
                            broker.note_stage_latency(
                                StageKind::Pipeline,
                                nanos(folded.saturating_duration_since(dequeued)),
                            );
                            (results, epoch, folded)
                        }
                        Staged::Control(_) => unreachable!("matched above"),
                    }
                };
                // Effects are fully in the broker: the item leaves the
                // crash window and its batch moves on to egress.
                let staged = guard.take().expect("slot still full");
                drop(guard);
                let (batch, scratch, dequeued) = match staged {
                    Staged::Processed {
                        batch,
                        scratch,
                        dequeued,
                        ..
                    } => (batch, Some(scratch), dequeued),
                    Staged::Raw { batch, dequeued } => (batch, None, dequeued),
                    Staged::Control(_) => unreachable!("matched above"),
                };
                if let Some(scratch) = scratch {
                    lock(&ctx.scratch_pool).push(scratch);
                }
                forward(egress, batch, results, epoch, dequeued, folded);
            }
        }
    }
    egress.close();
    broker
}

/// [`note_ingest`](crate::server::note_ingest) driven from a borrowed
/// batch (the fold holds items in the salvage slot, so it cannot move
/// the meta out before the effects are applied).
fn note_ingest_ref(broker: &mut Broker, batch: &crate::batcher::EventBatch, dequeued: Instant) {
    crate::server::note_ingest(broker, &batch.meta, batch.enqueued, dequeued);
}

fn spawn_egress(sup: &Supervision) -> JoinHandle<bool> {
    let queue = sup.egress_queue.clone();
    let sink = Arc::clone(&sup.sink);
    let chaos = Arc::clone(&sup.chaos);
    let state = Arc::clone(&sup.egress_state);
    std::thread::Builder::new()
        .name("pubsub-egress".into())
        .spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                supervised_egress_body(&queue, &sink, &chaos, &state)
            }))
            .is_ok()
        })
        .expect("spawn egress thread")
}

/// The supervised egress loop: the in-flight batch and its emitted-so-
/// far count live in the salvage slot, so a replacement resumes at the
/// exact record where its predecessor died — no dropped records, no
/// duplicates (unless the sink itself panicked mid-record).
fn supervised_egress_body(
    queue: &StageQueue<EgressBatch>,
    sink: &Mutex<Box<dyn DeliverySink>>,
    chaos: &ChaosSwitch,
    state: &EgressState,
) {
    loop {
        if lock(&state.salvage).is_none() {
            match queue.pop() {
                Some(batch) => *lock(&state.salvage) = Some((batch, 0)),
                None => return,
            }
        }
        let started = Instant::now();
        loop {
            let mut guard = lock(&state.salvage);
            let (batch, emitted) = guard.as_mut().expect("slot filled above");
            debug_assert_eq!(batch.meta.len(), batch.results.len());
            if *emitted >= batch.meta.len() {
                guard.take();
                drop(guard);
                let mut totals = lock(&state.totals);
                totals.histo.record(nanos(started.elapsed()));
                totals.batches += 1;
                break;
            }
            let index = *emitted;
            chaos.egress_tick();
            let event = batch.meta[index];
            let outcome = batch.results[index].clone();
            let delivered = outcome.is_ok();
            let now = Instant::now();
            lock(sink).on_record(EventRecord {
                client: event.client,
                seq: event.seq,
                epoch: batch.epoch,
                outcome,
                latency_ns: nanos(now.saturating_duration_since(event.scheduled)),
                ingest_ns: nanos(batch.dequeued.saturating_duration_since(event.submitted)),
                pipeline_ns: nanos(batch.folded.saturating_duration_since(batch.dequeued)),
                egress_ns: nanos(now.saturating_duration_since(batch.folded)),
            });
            *emitted += 1;
            drop(guard);
            let mut totals = lock(&state.totals);
            if delivered {
                totals.delivered += 1;
            } else {
                totals.failed += 1;
            }
        }
    }
}
