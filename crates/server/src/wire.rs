//! The length-prefixed wire protocol of the TCP front.
//!
//! Every frame is `[u32 LE payload length][u8 opcode][payload]`. The
//! payload length covers the opcode byte and everything after it, and is
//! capped at [`MAX_FRAME`] so a corrupt prefix cannot make the reader
//! allocate unboundedly. All integers are little-endian; event
//! coordinates travel as raw `f64` bits.
//!
//! | opcode | frame | payload |
//! |---|---|---|
//! | 1 | [`Frame::Publish`] | `u64` seq, `u16` dims, `dims × f64` coords |
//! | 2 | [`Frame::Ack`] | `u64` seq, `u8` accepted, `u8` reason, `u32` retry-after ms |
//! | 3 | [`Frame::MetricsRequest`] | empty |
//! | 4 | [`Frame::Metrics`] | UTF-8 JSON (`MetricsSnapshot`) |
//! | 5 | [`Frame::Hello`] | `u64` session token |
//! | 6 | [`Frame::HelloAck`] | `u32` client id, `u64` last acked seq |
//!
//! The ack `reason` byte is one of the `REASON_*` constants; it is 0
//! (`REASON_NONE`) on accepted publishes. The trailing `u32` retry-after
//! field was added for [`REASON_SHED`]; decoders accept the legacy
//! 10-byte ack body (treated as retry-after 0) so old peers interoperate.
//!
//! `Hello` opens a *session*: the client presents a stable token, the
//! server answers with the client id bound to that token and the highest
//! publish seq it has already accepted for it. A reconnecting client
//! (same token) gets the same id back and can skip everything at or
//! below `last_seq` — publish deduplication across reconnects.
//!
//! Session publish seqs start at 1 and must be **strictly increasing**:
//! the server dedups by seq alone, treating any publish at or below
//! `last_seq` as a retransmission of the event it already accepted — it
//! re-acks as accepted without comparing payloads. Reusing or reordering
//! seqs therefore silently drops the new payload; a session client must
//! never assign the same seq to two different events.

use std::io::{self, Read, Write};

/// Largest accepted payload (opcode + body): fits a 4096-dimensional
/// event or a generously sized metrics JSON.
pub const MAX_FRAME: u32 = 1 << 20;

/// Ack reason: accepted, nothing to report.
pub const REASON_NONE: u8 = 0;
/// Ack reason: rejected by admission control (ingest queue full).
pub const REASON_QUEUE_FULL: u8 = 1;
/// Ack reason: the server is shutting down.
pub const REASON_CLOSED: u8 = 2;
/// Ack reason: the event was malformed (wrong dimensionality or
/// non-finite coordinate).
pub const REASON_MALFORMED: u8 = 3;
/// Ack reason: load shedding — the publish tier is over capacity; the
/// ack's retry-after field says how long to back off.
pub const REASON_SHED: u8 = 4;

const OP_PUBLISH: u8 = 1;
const OP_ACK: u8 = 2;
const OP_METRICS_REQUEST: u8 = 3;
const OP_METRICS: u8 = 4;
const OP_HELLO: u8 = 5;
const OP_HELLO_ACK: u8 = 6;

/// One protocol frame; see the module docs for the encoding.
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    /// Client → server: publish one event.
    Publish {
        /// Client-chosen sequence number, echoed in the ack.
        seq: u64,
        /// Event coordinates.
        coords: Vec<f64>,
    },
    /// Server → client: the accept/reject ack for one publish.
    Ack {
        /// The publish's sequence number.
        seq: u64,
        /// Whether the event was admitted.
        accepted: bool,
        /// One of the `REASON_*` constants (`REASON_NONE` if accepted).
        reason: u8,
        /// Suggested backoff before retrying, in milliseconds
        /// (meaningful with [`REASON_SHED`]; 0 otherwise).
        retry_after_ms: u32,
    },
    /// Client → server: ask for a metrics snapshot.
    MetricsRequest,
    /// Server → client: the metrics snapshot as JSON.
    Metrics {
        /// Serialized `pubsub_core::MetricsSnapshot`.
        json: String,
    },
    /// Client → server: open (or resume) a session identified by a
    /// stable token. Must be the first frame on a connection to take
    /// effect; omitting it falls back to accept-order client ids with
    /// no cross-reconnect deduplication.
    Hello {
        /// Client-chosen stable session token.
        token: u64,
    },
    /// Server → client: the session's identity and resume point.
    HelloAck {
        /// The client id bound to the token (stable across reconnects).
        client: u32,
        /// Highest publish seq already accepted for this session; the
        /// client may skip everything at or below it.
        last_seq: u64,
    },
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects a frame whose encoding would exceed
/// [`MAX_FRAME`] with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let mut payload = Vec::new();
    match frame {
        Frame::Publish { seq, coords } => {
            if coords.len() > u16::MAX as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "too many dimensions",
                ));
            }
            payload.push(OP_PUBLISH);
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&(coords.len() as u16).to_le_bytes());
            for c in coords {
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
        Frame::Ack {
            seq,
            accepted,
            reason,
            retry_after_ms,
        } => {
            payload.push(OP_ACK);
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.push(u8::from(*accepted));
            payload.push(*reason);
            payload.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Frame::MetricsRequest => payload.push(OP_METRICS_REQUEST),
        Frame::Metrics { json } => {
            payload.push(OP_METRICS);
            payload.extend_from_slice(json.as_bytes());
        }
        Frame::Hello { token } => {
            payload.push(OP_HELLO);
            payload.extend_from_slice(&token.to_le_bytes());
        }
        Frame::HelloAck { client, last_seq } => {
            payload.push(OP_HELLO_ACK);
            payload.extend_from_slice(&client.to_le_bytes());
            payload.extend_from_slice(&last_seq.to_le_bytes());
        }
    }
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (EOF at
/// a frame boundary — how clients hang up).
///
/// # Errors
///
/// Propagates I/O errors; a malformed or oversized frame is
/// [`io::ErrorKind::InvalidData`], EOF mid-frame is
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode(&payload).map(Some)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn decode(payload: &[u8]) -> io::Result<Frame> {
    let (&op, body) = payload.split_first().expect("length checked > 0");
    match op {
        OP_PUBLISH => {
            if body.len() < 10 {
                return Err(bad("short publish frame"));
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
            let dims = u16::from_le_bytes(body[8..10].try_into().expect("2 bytes")) as usize;
            let coords_bytes = &body[10..];
            if coords_bytes.len() != dims * 8 {
                return Err(bad("publish frame length does not match dims"));
            }
            let coords = coords_bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Ok(Frame::Publish { seq, coords })
        }
        OP_ACK => {
            // 10-byte legacy body (no retry field) or 14-byte current.
            if body.len() != 10 && body.len() != 14 {
                return Err(bad("bad ack frame"));
            }
            let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
            let retry_after_ms = if body.len() == 14 {
                u32::from_le_bytes(body[10..14].try_into().expect("4 bytes"))
            } else {
                0
            };
            Ok(Frame::Ack {
                seq,
                accepted: body[8] != 0,
                reason: body[9],
                retry_after_ms,
            })
        }
        OP_METRICS_REQUEST => {
            if !body.is_empty() {
                return Err(bad("metrics request carries a body"));
            }
            Ok(Frame::MetricsRequest)
        }
        OP_METRICS => {
            let json = std::str::from_utf8(body)
                .map_err(|_| bad("metrics JSON is not UTF-8"))?
                .to_string();
            Ok(Frame::Metrics { json })
        }
        OP_HELLO => {
            if body.len() != 8 {
                return Err(bad("bad hello frame"));
            }
            Ok(Frame::Hello {
                token: u64::from_le_bytes(body.try_into().expect("8 bytes")),
            })
        }
        OP_HELLO_ACK => {
            if body.len() != 12 {
                return Err(bad("bad hello-ack frame"));
            }
            Ok(Frame::HelloAck {
                client: u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")),
                last_seq: u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")),
            })
        }
        _ => Err(bad("unknown opcode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("write");
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(back, frame);
        assert!(cursor.is_empty(), "reader consumed the whole frame");
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Publish {
            seq: 42,
            coords: vec![1.5, -2.25, 1e300, 0.0],
        });
        roundtrip(Frame::Publish {
            seq: 0,
            coords: vec![],
        });
        roundtrip(Frame::Ack {
            seq: u64::MAX,
            accepted: true,
            reason: REASON_NONE,
            retry_after_ms: 0,
        });
        roundtrip(Frame::Ack {
            seq: 7,
            accepted: false,
            reason: REASON_QUEUE_FULL,
            retry_after_ms: 0,
        });
        roundtrip(Frame::Ack {
            seq: 8,
            accepted: false,
            reason: REASON_SHED,
            retry_after_ms: 250,
        });
        roundtrip(Frame::Hello { token: 0xdead_beef });
        roundtrip(Frame::HelloAck {
            client: 3,
            last_seq: 41,
        });
        roundtrip(Frame::MetricsRequest);
        roundtrip(Frame::Metrics {
            json: "{\"epoch\":3}".to_string(),
        });
    }

    #[test]
    fn streamed_frames_read_back_in_order() {
        let frames = vec![
            Frame::Publish {
                seq: 1,
                coords: vec![1.0],
            },
            Frame::Ack {
                seq: 1,
                accepted: true,
                reason: REASON_NONE,
                retry_after_ms: 0,
            },
            Frame::MetricsRequest,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut cursor = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).expect("read").as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
    }

    #[test]
    fn clean_eof_is_none_midframe_is_error() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).expect("clean eof"), None);
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Publish {
                seq: 9,
                coords: vec![3.0, 4.0],
            },
        )
        .expect("write");
        let mut truncated = &buf[..buf.len() - 3];
        let err = read_frame(&mut truncated).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn legacy_ten_byte_acks_still_decode() {
        // Hand-built pre-retry-field ack: len 11 (opcode + 10B body).
        let mut buf = Vec::new();
        buf.extend_from_slice(&11u32.to_le_bytes());
        buf.push(2); // OP_ACK
        buf.extend_from_slice(&99u64.to_le_bytes());
        buf.push(0); // rejected
        buf.push(REASON_QUEUE_FULL);
        let mut cursor = &buf[..];
        let frame = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(
            frame,
            Frame::Ack {
                seq: 99,
                accepted: false,
                reason: REASON_QUEUE_FULL,
                retry_after_ms: 0,
            }
        );
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        // Oversized length prefix.
        let mut huge: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0];
        assert!(read_frame(&mut huge).is_err());
        // Zero-length payload.
        let mut zero: &[u8] = &[0, 0, 0, 0];
        assert!(read_frame(&mut zero).is_err());
        // Unknown opcode.
        let mut unknown: &[u8] = &[1, 0, 0, 0, 0xee];
        assert!(read_frame(&mut unknown).is_err());
        // Publish whose dims disagree with the payload length.
        let mut bad_pub = Vec::new();
        bad_pub.extend_from_slice(&11u32.to_le_bytes());
        bad_pub.push(1); // OP_PUBLISH
        bad_pub.extend_from_slice(&0u64.to_le_bytes());
        bad_pub.extend_from_slice(&5u16.to_le_bytes()); // claims 5 dims, has 0
        let mut cursor = &bad_pub[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
