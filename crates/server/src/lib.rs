//! The staged serving front-end: transport-in → pipeline → transport-out.
//!
//! The core broker's `publish_batch` is a closed-loop API — the caller
//! blocks until delivery decisions return, which hides queueing delay,
//! the quantity the paper's multicast-vs-unicast cost tradeoff actually
//! shapes for end users. This crate splits serving into three explicit
//! stages decoupled by bounded [`pubsub_parallel::StageQueue`]s:
//!
//! * **transport-in** ([`IngestHandle`]) — submissions land in
//!   per-connection-shard [`batcher`]s that assemble the SIMD-friendly
//!   structure-of-arrays event layout at ingest and flush on
//!   size-or-*adaptive*-deadline (sub-millisecond floor while the
//!   ingest queue is shallow, growing toward the configured interval
//!   under backlog); admission control is the bounded ingest queue: a
//!   full queue is an *explicit, synchronous reject* (the accept/reject
//!   ack of the wire protocol), never a silent drop and never a blocked
//!   transport thread;
//! * **pipeline** — N concurrent executors drain the ingest queue
//!   through a single dispatcher lock that assigns each work item a
//!   monotone ticket, and run the read-only fused match → cost → decide
//!   pass against an epoch-stamped [`pubsub_core::PublishView`] of the
//!   engine; a [`pubsub_parallel::SequenceWindow`] re-orders their
//!   results so the **fold thread** — the sole [`pubsub_core::Broker`]
//!   owner — consumes them strictly in ticket order, keeping outcomes,
//!   the scheme-cost memo and the cumulative cost report bit-identical
//!   to a synchronous broker. Control operations (subscribe /
//!   unsubscribe / recompile) travel through the *same* ordered queue
//!   and bump the view version; executors wait for exactly their
//!   batch's version (the epoch barrier), so an in-flight batch is
//!   always processed under the epoch that was current when it entered
//!   the queue — the epoch-keyed scheme-cost memo can never serve a
//!   batch across a recompile boundary;
//! * **transport-out** — the egress thread receives fold output in
//!   ticket order (deterministic sink sequence), stamps per-event
//!   ingest/match/deliver timings into [`EventRecord`]s and hands them
//!   to a caller-supplied [`DeliverySink`].
//!
//! [`tcp`] adds a small length-prefixed TCP front (thread per
//! connection) speaking the [`wire`] protocol, for real clients; the
//! serving benchmark instead drives [`IngestHandle`] in-process to
//! simulate hundreds of thousands of clients.
//!
//! # Backpressure contract
//!
//! Every submission gets exactly one of three fates, and the producer
//! learns which synchronously:
//!
//! 1. **Accepted** — `submit` returned `Ok`; the event will be matched
//!    and a record will reach the sink exactly once (even if the broker
//!    later rejects it, the record says so — no silent drops).
//! 2. **Rejected** — `submit` returned [`RejectReason::Shed`] (load
//!    shedding, with a retry-after hint scaled to the backlog) or
//!    [`RejectReason::Malformed`]; nothing was enqueued. Control
//!    operations never shed — they take a blocking lane and are always
//!    admitted.
//! 3. **Closed** — the server is shutting down.
//!
//! # Crash safety
//!
//! [`SupervisedServer`] wraps the same pipeline in a supervisor thread
//! that detects executor / fold / egress death, restarts the stage
//! (rebuilding the broker from its durable journal through a
//! [`RecoverFn`]) and replays salvaged in-flight work, so accepted
//! events survive stage crashes. [`CrashPlan`] injects deterministic,
//! seeded panics for the chaos tests. See the [`supervise`] module
//! docs for the exact guarantees.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batcher;
mod server;
pub mod supervise;
pub mod tcp;
pub mod wire;

pub use server::{
    CollectorSink, DeliverySink, EventRecord, IngestHandle, LatencySink, RejectReason, ServerStats,
    ServingConfig, ServingError, StagedServer,
};
pub use supervise::{
    CrashEvent, CrashKind, CrashPlan, RecoverFn, SuperviseOptions, SupervisedServer,
};
