//! A small TCP transport for the staged server: thread per connection,
//! speaking the [`crate::wire`] length-prefixed protocol.
//!
//! Each accepted connection gets a client id and a thread that reads
//! `Publish` frames, submits them through the shared [`IngestHandle`],
//! and answers every publish with an explicit `Ack` frame — accepted or
//! rejected, the backpressure contract on the wire. `MetricsRequest`
//! frames answer with the broker's `MetricsSnapshot` as JSON.
//!
//! # Sessions and exactly-once publishes
//!
//! A connection may open with a `Hello` frame carrying a stable session
//! token. The server binds a client id to the token (the *same* id on
//! every reconnect) and tracks the highest publish seq it has accepted
//! for the session; the `HelloAck` reports both, and an incoming
//! publish at or below that watermark is acknowledged as accepted
//! *without resubmitting* — so a client that lost the ack to a dropped
//! connection can retry safely, and an accepted event is matched
//! exactly once no matter how many times the TCP connection dies.
//! The watermark check, the submit, and the watermark update run under
//! a per-session lock, so two live connections presenting the same
//! token (a reconnect racing its half-dead predecessor) can never
//! submit one seq twice.
//!
//! Session seqs must start at 1 (`last_seq == 0` means "nothing
//! accepted yet") and be **strictly increasing**: deduplication is by
//! seq alone, so a publish at or below the watermark is assumed to be a
//! retransmission of the already-accepted event and is re-acked without
//! inspecting the payload. A client that reuses or reorders seqs gets
//! its new payload silently dropped — never do that. Connections that
//! skip the handshake behave like before: accept-order ids, no
//! cross-reconnect deduplication.
//!
//! Session state is bounded: the table holds at most [`MAX_SESSIONS`]
//! entries, recycling the oldest-bound session beyond the cap (a
//! recycled token that reconnects gets a fresh id and an empty
//! watermark — bounded memory is bought with that session's
//! cross-reconnect dedup).
//!
//! This front is deliberately simple (the quickstart example and small
//! deployments); the serving benchmark bypasses TCP and drives
//! [`IngestHandle`] in-process to simulate ~10⁵–10⁶ clients.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pubsub_geom::Point;

use crate::server::{lock, IngestHandle, RejectReason};
use crate::wire::{
    read_frame, write_frame, Frame, REASON_CLOSED, REASON_MALFORMED, REASON_NONE,
    REASON_QUEUE_FULL, REASON_SHED,
};

/// The most session entries the server retains; beyond this the
/// oldest-bound session is recycled (see the module docs).
const MAX_SESSIONS: usize = 64 * 1024;

/// One session's durable state: its stable client id and the highest
/// publish seq the server has accepted for it. The `last_seq` guard is
/// held across the duplicate check, the submit, and the watermark
/// update, serializing publishes per session.
#[derive(Debug)]
struct SessionEntry {
    client: u32,
    last_seq: Mutex<u64>,
}

/// Token → session map with FIFO recycling beyond its cap, shared by
/// every connection thread.
#[derive(Debug, Default)]
struct SessionTable {
    map: HashMap<u64, Arc<SessionEntry>>,
    order: VecDeque<u64>,
}

impl SessionTable {
    /// Returns the session bound to `token`, creating it (and evicting
    /// the oldest entries down to `cap`) when unknown.
    fn bind(&mut self, token: u64, next_client: &AtomicU32, cap: usize) -> Arc<SessionEntry> {
        if let Some(entry) = self.map.get(&token) {
            return Arc::clone(entry);
        }
        while self.map.len() >= cap.max(1) {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        let entry = Arc::new(SessionEntry {
            client: next_client.fetch_add(1, Ordering::Relaxed),
            last_seq: Mutex::new(0),
        });
        self.map.insert(token, Arc::clone(&entry));
        self.order.push_back(token);
        entry
    }
}

type Sessions = Mutex<SessionTable>;

/// The listening TCP front. Stop with [`TcpFront::stop`] (or drop).
#[derive(Debug)]
pub struct TcpFront {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections that publish through `handle`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start<A: ToSocketAddrs>(addr: A, handle: IngestHandle) -> io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("pubsub-accept".into())
                .spawn(move || accept_loop(&listener, &handle, &shutdown))
                .expect("spawn accept thread")
        };
        Ok(TcpFront {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the connection threads. Connections
    /// finish their in-flight frame and close.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, handle: &IngestHandle, shutdown: &AtomicBool) {
    let mut connections: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    // Session ids and legacy accept-order ids draw from one counter, so
    // the two populations never collide.
    let next_client = Arc::new(AtomicU32::new(0));
    let sessions: Arc<Sessions> = Arc::new(Mutex::new(SessionTable::default()));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let fallback = next_client.fetch_add(1, Ordering::Relaxed);
                let handle = handle.clone();
                let sessions = Arc::clone(&sessions);
                let next_client = Arc::clone(&next_client);
                let conn = {
                    let stream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    std::thread::Builder::new()
                        .name(format!("pubsub-conn-{fallback}"))
                        .spawn(move || {
                            let _ = serve_connection(
                                stream,
                                fallback,
                                &handle,
                                &sessions,
                                &next_client,
                            );
                        })
                        .expect("spawn connection thread")
                };
                connections.push((stream, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Unblock connection threads parked in a read: without this, stop()
    // would wait for every client to hang up on its own.
    for (stream, conn) in connections {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        let _ = conn.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    fallback_client: u32,
    handle: &IngestHandle,
    sessions: &Sessions,
    next_client: &AtomicU32,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut client = fallback_client;
    let mut session: Option<Arc<SessionEntry>> = None;
    let mut first_frame = true;
    while let Some(frame) = read_frame(&mut reader)? {
        match frame {
            Frame::Hello { token } => {
                if !first_frame {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "hello must be the first frame",
                    ));
                }
                let entry = lock(sessions).bind(token, next_client, MAX_SESSIONS);
                client = entry.client;
                let last_seq = *lock(&entry.last_seq);
                session = Some(entry);
                write_frame(&mut writer, &Frame::HelloAck { client, last_seq })?;
                writer.flush()?;
            }
            Frame::Publish { seq, coords } => {
                let (accepted, reason, retry_after_ms) = match &session {
                    // The session guard spans duplicate check, submit
                    // and watermark update: a reconnect racing its
                    // half-dead predecessor serializes here instead of
                    // double-submitting one seq.
                    Some(entry) => {
                        let mut last_seq = lock(&entry.last_seq);
                        if seq > 0 && *last_seq >= seq {
                            // An earlier accept whose ack the client
                            // lost: re-ack, do not resubmit.
                            (true, REASON_NONE, 0)
                        } else {
                            let outcome = submit_publish(handle, client, seq, coords);
                            if outcome.0 {
                                *last_seq = (*last_seq).max(seq);
                            }
                            outcome
                        }
                    }
                    None => submit_publish(handle, client, seq, coords),
                };
                write_frame(
                    &mut writer,
                    &Frame::Ack {
                        seq,
                        accepted,
                        reason,
                        retry_after_ms,
                    },
                )?;
                writer.flush()?;
            }
            Frame::MetricsRequest => {
                let json = match handle.metrics() {
                    Ok(snapshot) => serde_json::to_string(&snapshot)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                    Err(e) => format!("{{\"error\":\"{e}\"}}"),
                };
                write_frame(&mut writer, &Frame::Metrics { json })?;
                writer.flush()?;
            }
            // Server-to-client frames arriving here are protocol abuse;
            // hang up.
            Frame::Ack { .. } | Frame::Metrics { .. } | Frame::HelloAck { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "client sent a server frame",
                ));
            }
        }
        first_frame = false;
    }
    Ok(())
}

/// Submits one publish, mapping the outcome onto the wire ack triple
/// `(accepted, reason, retry_after_ms)`.
fn submit_publish(
    handle: &IngestHandle,
    client: u32,
    seq: u64,
    coords: Vec<f64>,
) -> (bool, u8, u32) {
    let submit = Point::new(coords)
        .map_err(|_| RejectReason::Malformed)
        .and_then(|point| handle.submit_now(client, seq, point));
    match submit {
        Ok(()) => (true, REASON_NONE, 0),
        Err(RejectReason::Shed { retry_after_ms }) => (false, REASON_SHED, retry_after_ms),
        Err(RejectReason::QueueFull) => (false, REASON_QUEUE_FULL, 0),
        Err(RejectReason::Malformed) => (false, REASON_MALFORMED, 0),
        Err(RejectReason::Closed) => (false, REASON_CLOSED, 0),
    }
}

/// Timeouts and retry policy for [`ServingClient`]. Passive data:
/// public fields.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout: how long to wait for an ack / metrics /
    /// hello-ack frame before [`ClientError::Timeout`]. This is what
    /// frees the client from a hung or half-closed server socket.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// First retry backoff; doubles per attempt (with jitter).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Retry budget for [`ServingClient::publish_retry`]: attempts
    /// beyond the first.
    pub max_retries: u32,
    /// Stable session token. `Some` makes the client open every
    /// connection with a `Hello` handshake, giving it a stable id and
    /// server-side publish dedup across reconnects (required by
    /// [`ServingClient::publish_retry`]).
    pub session_token: Option<u64>,
    /// Seed for the backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_retries: 5,
            session_token: None,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Errors from [`ServingClient`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The server did not answer within the configured timeout (hung,
    /// half-closed or overwhelmed socket). The connection is dropped;
    /// the next call reconnects.
    Timeout,
    /// Any other transport failure.
    Io(io::Error),
    /// The server answered with something other than the expected
    /// frame, or violated the protocol.
    Protocol(String),
    /// The server reported it is shutting down.
    Closed,
    /// The publish was rejected for a non-retryable reason (one of the
    /// `REASON_*` constants, e.g. malformed).
    Rejected {
        /// The wire reason byte.
        reason: u8,
        /// The server's retry hint, if it sent one.
        retry_after_ms: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Closed => write!(f, "server closed"),
            ClientError::Rejected {
                reason,
                retry_after_ms,
            } => write!(
                f,
                "rejected (reason {reason}, retry after {retry_after_ms}ms)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
            _ => ClientError::Io(e),
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking client for the TCP front: publish events, read acks, poll
/// metrics. One socket, lock-step request/response — but with real
/// socket timeouts (a hung server yields [`ClientError::Timeout`], not
/// a stuck thread) and, when configured with a session token,
/// transparent reconnect + bounded exponential backoff + server-side
/// publish deduplication (see [`ServingClient::publish_retry`]).
#[derive(Debug)]
pub struct ServingClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    /// The id the server bound to our session (hello connections only).
    client_id: Option<u32>,
    /// Highest seq the server has confirmed accepted for our session —
    /// the dedup watermark from the latest `HelloAck`, advanced by
    /// every accepted publish.
    acked_seq: u64,
    rng: u64,
}

impl ServingClient {
    /// Connects to a [`TcpFront`] with default timeouts and no session
    /// (legacy behavior: accept-order id, no reconnect dedup).
    ///
    /// # Errors
    ///
    /// Connection failures, as [`ClientError`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServingClient, ClientError> {
        Self::with_config(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts / retry policy; a
    /// `session_token` in the config opens the session handshake.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures, as [`ClientError`].
    pub fn with_config<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<ServingClient, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(ClientError::Io)?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let mut client = ServingClient {
            addr,
            config,
            conn: None,
            client_id: None,
            acked_seq: 0,
            rng: config.seed,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The id the server bound to this session (`None` before the first
    /// handshake or without a session token).
    pub fn client_id(&self) -> Option<u32> {
        self.client_id
    }

    /// Highest publish seq the server has confirmed for this session.
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// Publishes one event and waits for the ack — a single attempt on
    /// the current connection. Returns `(accepted, reason)`; `reason`
    /// is one of the `REASON_*` constants in [`crate::wire`].
    ///
    /// Any failure drops the connection (the request/response stream
    /// can no longer be trusted); the next call reconnects.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the server goes quiet,
    /// [`ClientError::Io`] / [`ClientError::Protocol`] otherwise.
    pub fn publish(&mut self, seq: u64, coords: Vec<f64>) -> Result<(bool, u8), ClientError> {
        self.publish_hinted(seq, coords).map(|(a, r, _)| (a, r))
    }

    /// [`ServingClient::publish`] including the server's retry-after
    /// hint (milliseconds; meaningful when shed).
    ///
    /// # Errors
    ///
    /// As [`ServingClient::publish`].
    pub fn publish_hinted(
        &mut self,
        seq: u64,
        coords: Vec<f64>,
    ) -> Result<(bool, u8, u32), ClientError> {
        self.ensure_connected()?;
        // Session dedup: the server already accepted this seq on an
        // earlier connection whose ack we lost.
        if self.config.session_token.is_some() && seq > 0 && self.acked_seq >= seq {
            return Ok((true, REASON_NONE, 0));
        }
        let result = self.publish_attempt(seq, coords);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn publish_attempt(
        &mut self,
        seq: u64,
        coords: Vec<f64>,
    ) -> Result<(bool, u8, u32), ClientError> {
        let conn = self.conn.as_mut().expect("ensured above");
        write_frame(&mut conn.writer, &Frame::Publish { seq, coords })?;
        conn.writer.flush()?;
        match read_frame(&mut conn.reader)? {
            Some(Frame::Ack {
                seq: ack_seq,
                accepted,
                reason,
                retry_after_ms,
            }) => {
                if ack_seq != seq {
                    return Err(ClientError::Protocol("ack for a different seq".into()));
                }
                if accepted {
                    self.acked_seq = self.acked_seq.max(seq);
                }
                Ok((accepted, reason, retry_after_ms))
            }
            Some(_) => Err(ClientError::Protocol("expected an ack".into())),
            None => Err(ClientError::Protocol(
                "server hung up before the ack".into(),
            )),
        }
    }

    /// Publishes with retries: reconnects on transport failures, backs
    /// off (bounded exponential with jitter, honoring the server's
    /// shed retry-after hint) and relies on the session handshake to
    /// deduplicate — an event whose ack was lost is *not* resubmitted,
    /// so a successful return means the server accepted `seq` exactly
    /// once.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] without a session token (retrying
    /// unsessioned publishes could duplicate events);
    /// [`ClientError::Rejected`] for non-retryable rejects (e.g.
    /// malformed); [`ClientError::Closed`] when the server is shutting
    /// down; the last transport error once the retry budget is spent.
    pub fn publish_retry(&mut self, seq: u64, coords: &[f64]) -> Result<(), ClientError> {
        if self.config.session_token.is_none() {
            return Err(ClientError::Protocol(
                "publish_retry requires a session token".into(),
            ));
        }
        let mut attempt: u32 = 0;
        loop {
            match self.publish_hinted(seq, coords.to_vec()) {
                Ok((true, _, _)) => return Ok(()),
                Ok((false, reason, retry_after_ms)) => match reason {
                    REASON_SHED | REASON_QUEUE_FULL => {
                        if attempt >= self.config.max_retries {
                            return Err(ClientError::Rejected {
                                reason,
                                retry_after_ms,
                            });
                        }
                        let delay = self.backoff(attempt, retry_after_ms);
                        std::thread::sleep(delay);
                        attempt += 1;
                    }
                    REASON_CLOSED => return Err(ClientError::Closed),
                    _ => {
                        return Err(ClientError::Rejected {
                            reason,
                            retry_after_ms,
                        })
                    }
                },
                Err(ClientError::Timeout) | Err(ClientError::Io(_))
                    if attempt < self.config.max_retries =>
                {
                    let delay = self.backoff(attempt, 0);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Requests a metrics snapshot; returns the server's JSON. Subject
    /// to the same read/write timeouts as publishes.
    ///
    /// # Errors
    ///
    /// As [`ServingClient::publish`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.ensure_connected()?;
        let result = (|| {
            let conn = self.conn.as_mut().expect("ensured above");
            write_frame(&mut conn.writer, &Frame::MetricsRequest)?;
            conn.writer.flush()?;
            match read_frame(&mut conn.reader)? {
                Some(Frame::Metrics { json }) => Ok(json),
                Some(_) => Err(ClientError::Protocol("expected a metrics frame".into())),
                None => Err(ClientError::Protocol("server hung up".into())),
            }
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Bounded exponential backoff with jitter, floored at the server's
    /// retry-after hint when one was given.
    fn backoff(&mut self, attempt: u32, floor_ms: u32) -> Duration {
        let base = self.config.backoff_base.as_millis().max(1) as u64;
        let cap = self.config.backoff_max.as_millis().max(1) as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
        let jittered = exp / 2 + splitmix64(&mut self.rng) % (exp / 2 + 1);
        Duration::from_millis(jittered.max(u64::from(floor_ms)))
    }

    /// (Re)establishes the connection, applying the configured socket
    /// timeouts and replaying the session handshake when a token is
    /// set. Refreshes the dedup watermark from the server's `HelloAck`.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .map_err(ClientError::Io)?;
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone().map_err(ClientError::Io)?),
            writer: BufWriter::new(stream),
        };
        if let Some(token) = self.config.session_token {
            write_frame(&mut conn.writer, &Frame::Hello { token })?;
            conn.writer.flush()?;
            match read_frame(&mut conn.reader)? {
                Some(Frame::HelloAck { client, last_seq }) => {
                    self.client_id = Some(client);
                    self.acked_seq = self.acked_seq.max(last_seq);
                }
                Some(_) => return Err(ClientError::Protocol("expected a hello ack".into())),
                None => {
                    return Err(ClientError::Protocol(
                        "server hung up during the handshake".into(),
                    ))
                }
            }
        }
        self.conn = Some(conn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CollectorSink, ServingConfig, StagedServer};
    use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
    use pubsub_core::Broker;
    use pubsub_geom::{Rect, Space};
    use pubsub_netsim::TransitStubConfig;

    fn tiny_broker() -> Broker {
        let topo = TransitStubConfig::tiny().generate(17).expect("tiny topo");
        let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"))
            .expect("space");
        let node = topo.stub_nodes()[0];
        Broker::builder(topo, space)
            .subscription(
                node,
                Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"),
            )
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .threshold(0.15)
            .build()
            .expect("broker")
    }

    #[test]
    fn tcp_roundtrip_publish_ack_metrics() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let front = TcpFront::start("127.0.0.1:0", server.handle()).expect("bind");
        let mut client = ServingClient::connect(front.local_addr()).expect("connect");

        let (accepted, reason) = client.publish(1, vec![2.0, 2.0]).expect("publish");
        assert!(accepted);
        assert_eq!(reason, REASON_NONE);

        // Wrong dimensionality rejects explicitly on the wire.
        let (accepted, reason) = client.publish(2, vec![1.0]).expect("publish");
        assert!(!accepted);
        assert_eq!(reason, REASON_MALFORMED);

        let json = client.metrics().expect("metrics");
        assert!(json.contains("epoch"), "metrics JSON: {json}");

        drop(client);
        front.stop();
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(sink.len(), 1);
        let record = &sink.take()[0];
        assert_eq!(record.seq, 1);
        assert_eq!(record.client, 0);
    }

    #[test]
    fn dropped_socket_mid_frame_leaves_server_serving() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let front = TcpFront::start("127.0.0.1:0", server.handle()).expect("bind");

        // A rude client: announce a 100-byte frame, send 3 bytes, die.
        let mut rude = TcpStream::connect(front.local_addr()).expect("connect");
        rude.write_all(&100u32.to_le_bytes()).expect("len prefix");
        rude.write_all(&[1, 2, 3]).expect("partial body");
        drop(rude);

        // The torn connection must not poison the front: a well-behaved
        // client connects and publishes normally afterwards.
        let mut client = ServingClient::connect(front.local_addr()).expect("connect");
        let (accepted, _) = client.publish(1, vec![2.0, 2.0]).expect("publish");
        assert!(accepted);

        drop(client);
        front.stop();
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 1, "only the whole frame was admitted");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn client_times_out_on_unresponsive_server() {
        // A listener that accepts but never speaks: the old client hung
        // forever here; the new one reports a typed timeout.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Never accept: the kernel completes the handshake into the
        // backlog, then the socket just sits there.
        let mut client = ServingClient::with_config(
            addr,
            ClientConfig {
                read_timeout: Duration::from_millis(100),
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let err = client.publish(1, vec![1.0, 2.0]).expect_err("no ack ever");
        assert!(matches!(err, ClientError::Timeout), "got: {err}");
        // Metrics takes the same timeout path.
        let err = client.metrics().expect_err("no metrics ever");
        assert!(matches!(err, ClientError::Timeout), "got: {err}");
        drop(listener);
    }

    #[test]
    fn session_table_caps_and_recycles_oldest() {
        let next_client = AtomicU32::new(0);
        let mut table = SessionTable::default();
        let a = table.bind(1, &next_client, 2);
        let b = table.bind(2, &next_client, 2);
        assert_eq!((a.client, b.client), (0, 1));
        *lock(&a.last_seq) = 9;

        // Rebinding a live token returns the same entry, no eviction.
        let a2 = table.bind(1, &next_client, 2);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(table.map.len(), 2);

        // A third token evicts the oldest (token 1)...
        let c = table.bind(3, &next_client, 2);
        assert_eq!(c.client, 2);
        assert_eq!(table.map.len(), 2);
        assert!(!table.map.contains_key(&1));

        // ...and a recycled token comes back with a fresh id and an
        // empty watermark.
        let a3 = table.bind(1, &next_client, 2);
        assert_eq!(a3.client, 3);
        assert_eq!(*lock(&a3.last_seq), 0);
    }

    /// Two live connections presenting the same token race the same seq
    /// range; the per-session lock must ensure every seq is submitted at
    /// most once (the old check-then-submit could double-submit).
    #[test]
    fn concurrent_same_token_connections_never_double_submit() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let front = TcpFront::start("127.0.0.1:0", server.handle()).expect("bind");
        let addr = front.local_addr();
        let config = ClientConfig {
            session_token: Some(0xdead_beef),
            ..ClientConfig::default()
        };

        const SEQS: u64 = 16;
        let workers: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = ServingClient::with_config(addr, config).expect("connect");
                    for seq in 1..=SEQS {
                        let (accepted, reason) =
                            client.publish(seq, vec![2.0, 2.0]).expect("publish");
                        assert!(accepted, "seq {seq} nacked with reason {reason}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }

        front.stop();
        let (_, stats) = server.stop();
        let mut seqs: Vec<u64> = sink.take().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (1..=SEQS).collect::<Vec<_>>(),
            "each seq exactly once"
        );
        assert_eq!(stats.accepted, SEQS, "no seq was submitted twice");
    }

    #[test]
    fn session_reconnect_deduplicates_publishes() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let front = TcpFront::start("127.0.0.1:0", server.handle()).expect("bind");
        let config = ClientConfig {
            session_token: Some(0xfeed_f00d),
            ..ClientConfig::default()
        };

        let mut client = ServingClient::with_config(front.local_addr(), config).expect("connect");
        let first_id = client.client_id().expect("session id");
        client.publish_retry(1, &[2.0, 2.0]).expect("seq 1");
        client.publish_retry(2, &[3.0, 3.0]).expect("seq 2");
        drop(client); // connection dies; the ack for seq 2 could have been lost

        // Reconnect with the same token: same id, watermark restored.
        let mut client = ServingClient::with_config(front.local_addr(), config).expect("reconnect");
        assert_eq!(client.client_id(), Some(first_id));
        assert_eq!(client.acked_seq(), 2);
        // Retrying both publishes must not duplicate them...
        client.publish_retry(1, &[2.0, 2.0]).expect("seq 1 again");
        client.publish_retry(2, &[3.0, 3.0]).expect("seq 2 again");
        // ...while new work still flows.
        client.publish_retry(3, &[4.0, 4.0]).expect("seq 3");

        drop(client);
        front.stop();
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 3, "exactly one accept per unique seq");
        let mut seqs: Vec<u64> = sink.take().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3]);
    }
}
