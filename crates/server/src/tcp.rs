//! A small TCP transport for the staged server: thread per connection,
//! speaking the [`crate::wire`] length-prefixed protocol.
//!
//! Each accepted connection gets a client id (assigned in accept order)
//! and a thread that reads `Publish` frames, submits them through the
//! shared [`IngestHandle`], and answers every publish with an explicit
//! `Ack` frame — accepted or rejected, the backpressure contract on the
//! wire. `MetricsRequest` frames answer with the broker's
//! `MetricsSnapshot` as JSON.
//!
//! This front is deliberately simple (the quickstart example and small
//! deployments); the serving benchmark bypasses TCP and drives
//! [`IngestHandle`] in-process to simulate ~10⁵–10⁶ clients.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pubsub_geom::Point;

use crate::server::{IngestHandle, RejectReason};
use crate::wire::{
    read_frame, write_frame, Frame, REASON_CLOSED, REASON_MALFORMED, REASON_NONE, REASON_QUEUE_FULL,
};

/// The listening TCP front. Stop with [`TcpFront::stop`] (or drop).
#[derive(Debug)]
pub struct TcpFront {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections that publish through `handle`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start<A: ToSocketAddrs>(addr: A, handle: IngestHandle) -> io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("pubsub-accept".into())
                .spawn(move || accept_loop(&listener, &handle, &shutdown))
                .expect("spawn accept thread")
        };
        Ok(TcpFront {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the connection threads. Connections
    /// finish their in-flight frame and close.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, handle: &IngestHandle, shutdown: &AtomicBool) {
    let mut connections: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    let mut next_client: u32 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = next_client;
                next_client = next_client.wrapping_add(1);
                let handle = handle.clone();
                let conn = {
                    let stream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    std::thread::Builder::new()
                        .name(format!("pubsub-conn-{client}"))
                        .spawn(move || {
                            let _ = serve_connection(stream, client, &handle);
                        })
                        .expect("spawn connection thread")
                };
                connections.push((stream, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Unblock connection threads parked in a read: without this, stop()
    // would wait for every client to hang up on its own.
    for (stream, conn) in connections {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        let _ = conn.join();
    }
}

fn serve_connection(stream: TcpStream, client: u32, handle: &IngestHandle) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(frame) = read_frame(&mut reader)? {
        match frame {
            Frame::Publish { seq, coords } => {
                let submit = Point::new(coords)
                    .map_err(|_| RejectReason::Malformed)
                    .and_then(|point| handle.submit_now(client, seq, point));
                let (accepted, reason) = match submit {
                    Ok(()) => (true, REASON_NONE),
                    Err(RejectReason::QueueFull) => (false, REASON_QUEUE_FULL),
                    Err(RejectReason::Malformed) => (false, REASON_MALFORMED),
                    Err(RejectReason::Closed) => (false, REASON_CLOSED),
                };
                write_frame(
                    &mut writer,
                    &Frame::Ack {
                        seq,
                        accepted,
                        reason,
                    },
                )?;
                writer.flush()?;
            }
            Frame::MetricsRequest => {
                let json = match handle.metrics() {
                    Ok(snapshot) => serde_json::to_string(&snapshot)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                    Err(e) => format!("{{\"error\":\"{e}\"}}"),
                };
                write_frame(&mut writer, &Frame::Metrics { json })?;
                writer.flush()?;
            }
            // Server-to-client frames arriving here are protocol abuse;
            // hang up.
            Frame::Ack { .. } | Frame::Metrics { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "client sent a server frame",
                ));
            }
        }
    }
    Ok(())
}

/// A blocking client for the TCP front: publish events, read acks, poll
/// metrics. One socket, lock-step request/response.
#[derive(Debug)]
pub struct ServingClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServingClient {
    /// Connects to a [`TcpFront`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<ServingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServingClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Publishes one event and waits for the ack. Returns
    /// `(accepted, reason)` — `reason` is one of the `REASON_*`
    /// constants in [`crate::wire`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an unexpected frame or a hang-up before
    /// the ack is [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn publish(&mut self, seq: u64, coords: Vec<f64>) -> io::Result<(bool, u8)> {
        write_frame(&mut self.writer, &Frame::Publish { seq, coords })?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(Frame::Ack {
                seq: ack_seq,
                accepted,
                reason,
            }) => {
                if ack_seq != seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "ack for a different seq",
                    ));
                }
                Ok((accepted, reason))
            }
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected an ack",
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before the ack",
            )),
        }
    }

    /// Requests a metrics snapshot; returns the server's JSON.
    ///
    /// # Errors
    ///
    /// As [`ServingClient::publish`].
    pub fn metrics(&mut self) -> io::Result<String> {
        write_frame(&mut self.writer, &Frame::MetricsRequest)?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(Frame::Metrics { json }) => Ok(json),
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a metrics frame",
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CollectorSink, ServingConfig, StagedServer};
    use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
    use pubsub_core::Broker;
    use pubsub_geom::{Rect, Space};
    use pubsub_netsim::TransitStubConfig;

    fn tiny_broker() -> Broker {
        let topo = TransitStubConfig::tiny().generate(17).expect("tiny topo");
        let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"))
            .expect("space");
        let node = topo.stub_nodes()[0];
        Broker::builder(topo, space)
            .subscription(
                node,
                Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"),
            )
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .threshold(0.15)
            .build()
            .expect("broker")
    }

    #[test]
    fn tcp_roundtrip_publish_ack_metrics() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let front = TcpFront::start("127.0.0.1:0", server.handle()).expect("bind");
        let mut client = ServingClient::connect(front.local_addr()).expect("connect");

        let (accepted, reason) = client.publish(1, vec![2.0, 2.0]).expect("publish");
        assert!(accepted);
        assert_eq!(reason, REASON_NONE);

        // Wrong dimensionality rejects explicitly on the wire.
        let (accepted, reason) = client.publish(2, vec![1.0]).expect("publish");
        assert!(!accepted);
        assert_eq!(reason, REASON_MALFORMED);

        let json = client.metrics().expect("metrics");
        assert!(json.contains("epoch"), "metrics JSON: {json}");

        drop(client);
        front.stop();
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(sink.len(), 1);
        let record = &sink.take()[0];
        assert_eq!(record.seq, 1);
        assert_eq!(record.client, 0);
    }
}
