//! Size-or-deadline batching for the transport-in stage.
//!
//! Each connection shard owns one [`EventBatcher`]: submissions
//! accumulate until either the batch is full (size trigger, checked at
//! submit) or the oldest buffered item has waited longer than the flush
//! deadline (checked by the server's flusher tick). This is the classic
//! serving tradeoff — batching amortizes per-batch pipeline cost, the
//! deadline bounds the latency a sparse client pays for it. The server
//! *adapts* the deadline to ingest-queue fill (see the crate docs): an
//! idle queue flushes near the floor for latency, a backlogged one rides
//! up to the configured interval so batches grow instead of the queue.
//!
//! The event batcher assembles the SIMD-friendly structure-of-arrays
//! layout **at ingest**: every push appends the event's coordinates to
//! per-dimension columns ([`pubsub_geom::EventSoA`]) alongside the
//! owned [`Point`]s, so the pipeline's match kernels fill their lane
//! blocks with contiguous column copies instead of transposing
//! point-at-a-time on the hot path.
//!
//! [`Batcher`] is the generic size-or-deadline core, kept item-agnostic
//! so the trigger logic stays unit-testable without the serving stack.

use std::time::{Duration, Instant};

use pubsub_geom::{EventSoA, Point};

/// A bounded buffer that reports when it should flush. Generic over the
/// item so the size-or-deadline logic is unit-testable without dragging
/// the whole serving stack in.
#[derive(Debug)]
pub struct Batcher<T> {
    items: Vec<T>,
    /// Arrival instant of the oldest buffered item (deadline basis).
    oldest: Option<Instant>,
    max: usize,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `max` items (minimum 1).
    pub fn new(max: usize) -> Self {
        Batcher {
            items: Vec::new(),
            oldest: None,
            max: max.max(1),
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at the size trigger — the caller must flush
    /// (or reject the submission) before pushing more.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.max
    }

    /// Buffers one item that arrived at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the batcher [`Batcher::is_full`] — the caller owns the
    /// flush-or-reject decision and must make it first.
    pub fn push(&mut self, item: T, now: Instant) {
        assert!(!self.is_full(), "push into a full batcher");
        if self.items.is_empty() {
            self.oldest = Some(now);
        }
        self.items.push(item);
    }

    /// Whether the deadline trigger has fired: something is buffered and
    /// the oldest item has waited at least `interval`.
    pub fn due(&self, now: Instant, interval: Duration) -> bool {
        match self.oldest {
            Some(oldest) => now.saturating_duration_since(oldest) >= interval,
            None => false,
        }
    }

    /// Takes the buffered batch, leaving the batcher empty. The backing
    /// allocation moves out with the batch (the pipeline consumes it),
    /// so a fresh buffer starts small and regrows only under load.
    pub fn take(&mut self) -> Vec<T> {
        self.oldest = None;
        std::mem::take(&mut self.items)
    }

    /// Puts a just-taken batch back (a flush whose queue push was
    /// rejected); `oldest` restarts at `now`, which only ever *delays*
    /// the deadline — acceptable, the queue was full anyway.
    pub fn restore(&mut self, items: Vec<T>, now: Instant) {
        debug_assert!(self.items.is_empty(), "restore over buffered items");
        if !items.is_empty() {
            self.oldest = Some(now);
        }
        self.items = items;
    }
}

/// Per-event submission bookkeeping carried alongside the payload from
/// ingest to egress: who sent it and when, so the egress record can
/// stamp end-to-end and per-stage latencies.
#[derive(Clone, Copy, Debug)]
pub struct SubmitMeta {
    /// The submitting client.
    pub client: u32,
    /// The client's sequence number for the event.
    pub seq: u64,
    /// Open-loop scheduled arrival — the end-to-end latency origin.
    pub scheduled: Instant,
    /// When `submit` accepted the event.
    pub submitted: Instant,
}

/// One flushed shard batch in flight through the pipeline: submission
/// metadata, the owned events, and their structure-of-arrays mirror
/// (same coordinates, dimension-major columns) built at ingest.
#[derive(Debug)]
pub struct EventBatch {
    /// Per-event submission bookkeeping, in submission order.
    pub meta: Vec<SubmitMeta>,
    /// The events, parallel to `meta`.
    pub points: Vec<Point>,
    /// Dimension-major columns mirroring `points`.
    pub soa: EventSoA,
    /// When the batch was flushed into the ingest queue (queue-wait
    /// latency basis). Meaningless until [`EventBatcher::take`] stamps
    /// it.
    pub enqueued: Instant,
}

impl EventBatch {
    /// Events in the batch.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

/// The shard batcher of the staged server: [`Batcher`]'s size-or-deadline
/// contract, specialized to events so every push extends the SoA columns
/// in place.
#[derive(Debug)]
pub struct EventBatcher {
    meta: Vec<SubmitMeta>,
    points: Vec<Point>,
    soa: EventSoA,
    /// Arrival instant of the oldest buffered event (deadline basis).
    oldest: Option<Instant>,
    max: usize,
    dims: usize,
}

impl EventBatcher {
    /// A batcher flushing at `max` events (minimum 1) in a `dims`-
    /// dimensional event space.
    pub fn new(max: usize, dims: usize) -> Self {
        EventBatcher {
            meta: Vec::new(),
            points: Vec::new(),
            soa: EventSoA::new(dims),
            oldest: None,
            max: max.max(1),
            dims,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Whether the buffer is at the size trigger — the caller must flush
    /// (or reject the submission) before pushing more.
    pub fn is_full(&self) -> bool {
        self.meta.len() >= self.max
    }

    /// Buffers one event that arrived at `now`, extending the SoA
    /// columns with its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the batcher [`EventBatcher::is_full`] (the caller owns
    /// the flush-or-reject decision) or the event's dimensionality does
    /// not match the batcher's (the server validates at submit).
    pub fn push(&mut self, meta: SubmitMeta, event: Point, now: Instant) {
        assert!(!self.is_full(), "push into a full batcher");
        if self.meta.is_empty() {
            self.oldest = Some(now);
        }
        self.soa.push(&event);
        self.points.push(event);
        self.meta.push(meta);
    }

    /// Whether the deadline trigger has fired: something is buffered and
    /// the oldest event has waited at least `interval`.
    pub fn due(&self, now: Instant, interval: Duration) -> bool {
        match self.oldest {
            Some(oldest) => now.saturating_duration_since(oldest) >= interval,
            None => false,
        }
    }

    /// Takes the buffered batch, stamped as enqueued at `now`, leaving
    /// the batcher empty. The backing allocations move out with the
    /// batch (the pipeline consumes them), so a fresh buffer starts
    /// small and regrows only under load.
    pub fn take(&mut self, now: Instant) -> EventBatch {
        self.oldest = None;
        EventBatch {
            meta: std::mem::take(&mut self.meta),
            points: std::mem::take(&mut self.points),
            soa: std::mem::replace(&mut self.soa, EventSoA::new(self.dims)),
            enqueued: now,
        }
    }

    /// Puts a just-taken batch back (a flush whose queue push was
    /// rejected); `oldest` restarts at `now`, which only ever *delays*
    /// the deadline — acceptable, the queue was full anyway.
    pub fn restore(&mut self, batch: EventBatch, now: Instant) {
        debug_assert!(self.meta.is_empty(), "restore over buffered events");
        if !batch.is_empty() {
            self.oldest = Some(now);
        }
        self.meta = batch.meta;
        self.points = batch.points;
        self.soa = batch.soa;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_trigger_fires_at_max() {
        let mut b = Batcher::new(3);
        let now = Instant::now();
        assert!(b.is_empty());
        b.push(1, now);
        b.push(2, now);
        assert!(!b.is_full());
        b.push(3, now);
        assert!(b.is_full());
        assert_eq!(b.take(), vec![1, 2, 3]);
        assert!(b.is_empty() && !b.is_full());
    }

    #[test]
    #[should_panic(expected = "push into a full batcher")]
    fn push_into_full_panics() {
        let mut b = Batcher::new(1);
        let now = Instant::now();
        b.push(1, now);
        b.push(2, now);
    }

    #[test]
    fn deadline_trigger_tracks_oldest() {
        let mut b = Batcher::new(10);
        let t0 = Instant::now();
        let interval = Duration::from_millis(5);
        assert!(!b.due(t0, interval), "empty batcher is never due");
        b.push('a', t0);
        assert!(!b.due(t0, interval));
        assert!(b.due(t0 + Duration::from_millis(5), interval));
        // A later push does not reset the deadline basis.
        b.push('b', t0 + Duration::from_millis(4));
        assert!(b.due(t0 + Duration::from_millis(5), interval));
        b.take();
        assert!(!b.due(t0 + Duration::from_secs(1), interval));
    }

    #[test]
    fn restore_rearms_deadline() {
        let mut b = Batcher::new(10);
        let t0 = Instant::now();
        b.push(7u32, t0);
        let batch = b.take();
        let t1 = t0 + Duration::from_millis(3);
        b.restore(batch, t1);
        assert_eq!(b.len(), 1);
        let interval = Duration::from_millis(5);
        assert!(!b.due(t1 + Duration::from_millis(4), interval));
        assert!(b.due(t1 + Duration::from_millis(5), interval));
    }

    fn meta(seq: u64) -> SubmitMeta {
        let now = Instant::now();
        SubmitMeta {
            client: 0,
            seq,
            scheduled: now,
            submitted: now,
        }
    }

    #[test]
    fn event_batcher_mirrors_points_into_columns() {
        let mut b = EventBatcher::new(8, 2);
        let now = Instant::now();
        for i in 0..5u64 {
            let p = Point::new(vec![i as f64, 10.0 - i as f64]).expect("point");
            b.push(meta(i), p, now);
        }
        let batch = b.take(now);
        assert!(b.is_empty(), "take drained the batcher");
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.soa.len(), 5);
        for (i, p) in batch.points.iter().enumerate() {
            assert_eq!(batch.meta[i].seq, i as u64);
            for d in 0..2 {
                assert_eq!(batch.soa.col(d)[i].to_bits(), p.coord(d).to_bits());
            }
        }
        // Restore round-trips the columns, and the next take flushes
        // everything including post-restore pushes.
        b.restore(batch, now);
        b.push(meta(5), Point::new(vec![5.0, 5.0]).expect("point"), now);
        let again = b.take(now);
        assert_eq!(again.len(), 6);
        assert_eq!(again.soa.col(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
