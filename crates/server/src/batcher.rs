//! Size-or-deadline batching for the transport-in stage.
//!
//! Each connection shard owns one [`Batcher`]: submissions accumulate
//! until either the batch is full (size trigger, checked at submit) or
//! the oldest buffered item has waited longer than the flush interval
//! (deadline trigger, checked by the server's flusher tick). This is the
//! classic serving tradeoff — batching amortizes per-batch pipeline cost,
//! the deadline bounds the latency a sparse client pays for it.

use std::time::{Duration, Instant};

/// A bounded buffer that reports when it should flush. Generic over the
/// item so the size-or-deadline logic is unit-testable without dragging
/// the whole serving stack in.
#[derive(Debug)]
pub struct Batcher<T> {
    items: Vec<T>,
    /// Arrival instant of the oldest buffered item (deadline basis).
    oldest: Option<Instant>,
    max: usize,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `max` items (minimum 1).
    pub fn new(max: usize) -> Self {
        Batcher {
            items: Vec::new(),
            oldest: None,
            max: max.max(1),
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at the size trigger — the caller must flush
    /// (or reject the submission) before pushing more.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.max
    }

    /// Buffers one item that arrived at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the batcher [`Batcher::is_full`] — the caller owns the
    /// flush-or-reject decision and must make it first.
    pub fn push(&mut self, item: T, now: Instant) {
        assert!(!self.is_full(), "push into a full batcher");
        if self.items.is_empty() {
            self.oldest = Some(now);
        }
        self.items.push(item);
    }

    /// Whether the deadline trigger has fired: something is buffered and
    /// the oldest item has waited at least `interval`.
    pub fn due(&self, now: Instant, interval: Duration) -> bool {
        match self.oldest {
            Some(oldest) => now.saturating_duration_since(oldest) >= interval,
            None => false,
        }
    }

    /// Takes the buffered batch, leaving the batcher empty. The backing
    /// allocation moves out with the batch (the pipeline consumes it),
    /// so a fresh buffer starts small and regrows only under load.
    pub fn take(&mut self) -> Vec<T> {
        self.oldest = None;
        std::mem::take(&mut self.items)
    }

    /// Puts a just-taken batch back (a flush whose queue push was
    /// rejected); `oldest` restarts at `now`, which only ever *delays*
    /// the deadline — acceptable, the queue was full anyway.
    pub fn restore(&mut self, items: Vec<T>, now: Instant) {
        debug_assert!(self.items.is_empty(), "restore over buffered items");
        if !items.is_empty() {
            self.oldest = Some(now);
        }
        self.items = items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_trigger_fires_at_max() {
        let mut b = Batcher::new(3);
        let now = Instant::now();
        assert!(b.is_empty());
        b.push(1, now);
        b.push(2, now);
        assert!(!b.is_full());
        b.push(3, now);
        assert!(b.is_full());
        assert_eq!(b.take(), vec![1, 2, 3]);
        assert!(b.is_empty() && !b.is_full());
    }

    #[test]
    #[should_panic(expected = "push into a full batcher")]
    fn push_into_full_panics() {
        let mut b = Batcher::new(1);
        let now = Instant::now();
        b.push(1, now);
        b.push(2, now);
    }

    #[test]
    fn deadline_trigger_tracks_oldest() {
        let mut b = Batcher::new(10);
        let t0 = Instant::now();
        let interval = Duration::from_millis(5);
        assert!(!b.due(t0, interval), "empty batcher is never due");
        b.push('a', t0);
        assert!(!b.due(t0, interval));
        assert!(b.due(t0 + Duration::from_millis(5), interval));
        // A later push does not reset the deadline basis.
        b.push('b', t0 + Duration::from_millis(4));
        assert!(b.due(t0 + Duration::from_millis(5), interval));
        b.take();
        assert!(!b.due(t0 + Duration::from_secs(1), interval));
    }

    #[test]
    fn restore_rearms_deadline() {
        let mut b = Batcher::new(10);
        let t0 = Instant::now();
        b.push(7u32, t0);
        let batch = b.take();
        let t1 = t0 + Duration::from_millis(3);
        b.restore(batch, t1);
        assert_eq!(b.len(), 1);
        let interval = Duration::from_millis(5);
        assert!(!b.due(t1 + Duration::from_millis(4), interval));
        assert!(b.due(t1 + Duration::from_millis(5), interval));
    }
}
