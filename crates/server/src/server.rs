//! The staged server: ingest shards → ordered work queue → concurrent
//! pipeline executors → in-order fold (owns the broker) → egress thread
//! (owns the sink).
//!
//! See the crate docs for the stage architecture and the backpressure
//! contract. The implementation notes that matter:
//!
//! * **The pipeline stage is concurrent but the broker is not shared.**
//!   Executors run the read-only fused pass ([`PublishView`]) against an
//!   epoch-stamped view of the engine; the **fold thread owns the
//!   `Broker` exclusively** and consumes executor results strictly in
//!   ticket order through a [`SequenceWindow`], so the scheme-cost memo,
//!   the cumulative f64 report and the per-event outcomes are
//!   bit-identical to a synchronous broker processing the same batches
//!   in the same order.
//! * **The epoch barrier.** A single dispatcher lock assigns each popped
//!   work item a monotone ticket and stamps batches with the current
//!   *view version*; popping a control operation (subscribe /
//!   unsubscribe / recompile) bumps the version. An executor waits until
//!   the fold has published exactly its batch's version before running
//!   the pass — and the fold publishes version `v+1` only after folding
//!   every ticket before the bumping control — so a batch enqueued
//!   before a recompile is processed under the pre-recompile view, under
//!   the pre-recompile epoch, and its outcome records say so.
//! * **Egress stays deterministic.** The fold forwards batches to egress
//!   in ticket order (the sequence window re-orders whatever the
//!   executors finish out of order), so the sink sees exactly the record
//!   sequence the single-threaded server produced.
//! * **Accepted means delivered-or-reported.** Once `submit` returns
//!   `Ok`, the event sits in a shard batcher or the queue; shutdown
//!   flushes every shard with a *blocking* push before closing the
//!   queue, so exactly one [`EventRecord`] per accepted event reaches
//!   the sink — even records for events the broker itself rejected
//!   (fault-plan aborts) carry the error instead of vanishing.
//! * **Under a fault plan the executors stand down**: the fault clock,
//!   health hysteresis and mid-batch aborts are fold-side, per-event
//!   state, so batches are forwarded raw and the fold degrades to
//!   per-event processing — bit-identical to a synchronous `publish`
//!   loop while giving every event an attributable record.
//! * **Batching adapts to load.** Shard flush deadlines shrink toward a
//!   sub-millisecond floor while the ingest queue is shallow (latency
//!   mode) and stretch toward the configured interval as it fills
//!   (throughput mode) — see [`ServingConfig::flush_interval`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pubsub_core::{
    Broker, BrokerError, LatencyHisto, MetricsSnapshot, PublishOutcome, PublishScratch,
    PublishStage, PublishView, StageKind, SubscriptionHandle,
};
use pubsub_geom::{Point, Rect};
use pubsub_netsim::NodeId;
use pubsub_parallel::{PushError, SequenceWindow, StageQueue, VersionedCell};

use crate::batcher::{EventBatch, EventBatcher, SubmitMeta};

pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Configuration of a [`StagedServer`]. Passive data: public fields.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Bounded ingest-queue capacity in work items (batches + control
    /// operations). This is the admission-control knob: when the
    /// pipeline falls behind by this many batches, submissions reject.
    pub ingest_capacity: usize,
    /// Bounded pipeline → egress queue capacity in batches. A slow sink
    /// eventually stalls the fold (lossless internal backpressure),
    /// which fills the ingest queue, which rejects — pressure propagates
    /// to the edge instead of growing unbounded memory.
    pub egress_capacity: usize,
    /// Size trigger: a shard batch flushes when it reaches this many
    /// events.
    pub max_batch: usize,
    /// Deadline ceiling: a non-empty shard flushes when its oldest event
    /// has waited this long, so sparse clients are not held hostage by
    /// the size trigger. The *effective* deadline adapts to ingest-queue
    /// fill — an idle queue flushes at a floor of
    /// `(flush_interval / 16).max(100µs)` for latency, a backlogged one
    /// rides up to this ceiling so batches grow instead of the queue.
    pub flush_interval: Duration,
    /// Worker threads for the broker's own fused pass (`None` =
    /// available parallelism). Only exercised on the fold-side fault
    /// path; the concurrent executors are single-worker passes by
    /// construction.
    pub threads: Option<usize>,
    /// Concurrent pipeline executors running the fused match → cost →
    /// decide pass (`None` = available parallelism). The in-order fold
    /// and the egress remain single threads regardless.
    pub executors: Option<usize>,
    /// Connection shards (batchers). Clients map to shards by
    /// `client % shards`; more shards mean less submit-lock contention
    /// but smaller, more frequent batches.
    pub shards: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            ingest_capacity: 64,
            egress_capacity: 64,
            max_batch: 256,
            flush_interval: Duration::from_millis(1),
            threads: None,
            executors: None,
            shards: 8,
        }
    }
}

/// Why a submission was not accepted. The explicit reject ack of the
/// backpressure contract — the caller knows synchronously and nothing
/// was enqueued.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// Admission control: the bounded ingest queue is full and the
    /// shard's batch could not be handed off. Kept for wire
    /// compatibility; the live publish path sheds with
    /// [`RejectReason::Shed`] instead, which carries a retry hint.
    QueueFull,
    /// Load shedding: the publish tier is over capacity. Control
    /// operations (subscribe/unsubscribe/recompile/metrics) are always
    /// admitted — only publishes shed. The hint says how long to back
    /// off before retrying, scaled to the current backlog.
    Shed {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The event has the wrong dimensionality for the broker's space.
    Malformed,
    /// The server is shutting down (or already stopped).
    Closed,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "ingest queue full"),
            RejectReason::Shed { retry_after_ms } => {
                write!(f, "overloaded, retry after {retry_after_ms}ms")
            }
            RejectReason::Malformed => write!(f, "malformed event"),
            RejectReason::Closed => write!(f, "server closed"),
        }
    }
}

/// Errors from the control-plane calls on [`IngestHandle`].
#[derive(Debug)]
pub enum ServingError {
    /// The server has shut down; the operation was not applied.
    Closed,
    /// The broker rejected the operation.
    Broker(BrokerError),
    /// A stage thread died and the supervisor had no recovery path (or
    /// recovery itself failed); the serving state is lost.
    Crashed(String),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Closed => write!(f, "server closed"),
            ServingError::Broker(e) => write!(f, "broker: {e}"),
            ServingError::Crashed(why) => write!(f, "unrecoverable stage crash: {why}"),
        }
    }
}

impl std::error::Error for ServingError {}

/// What the egress stage emits for every accepted event: the outcome (or
/// the broker's error, so fault-plan rejects are visible rather than
/// silent), the epoch the event was processed under, and the per-stage
/// timings.
#[derive(Clone, PartialEq, Debug)]
pub struct EventRecord {
    /// The submitting client.
    pub client: u32,
    /// The client's sequence number for the event.
    pub seq: u64,
    /// Engine-snapshot epoch the event was matched and costed under.
    pub epoch: u64,
    /// The publish outcome, or the broker's error message when the event
    /// was accepted into the queue but the engine refused it (e.g. the
    /// publisher was down under a fault plan).
    pub outcome: Result<PublishOutcome, String>,
    /// End-to-end latency: scheduled arrival → record stamped. Under
    /// open-loop load the scheduled instant is the generator's arrival
    /// time, so queueing delay shows up here when the system falls
    /// behind.
    pub latency_ns: u64,
    /// Ingest-stage residence: submission → executor dequeue.
    pub ingest_ns: u64,
    /// Pipeline-stage residence of the event's batch: executor dequeue →
    /// fold complete (fused pass, re-order window and fold included).
    pub pipeline_ns: u64,
    /// Egress-stage residence: fold handoff → this record stamped.
    pub egress_ns: u64,
}

/// Consumer of [`EventRecord`]s, owned by the egress thread.
pub trait DeliverySink: Send {
    /// Called exactly once per accepted event, in processing order.
    fn on_record(&mut self, record: EventRecord);
}

impl<F: FnMut(EventRecord) + Send> DeliverySink for F {
    fn on_record(&mut self, record: EventRecord) {
        self(record)
    }
}

/// A sink that keeps every record — what the correctness tests use.
/// Clones share the same buffer, so keep one clone outside the server to
/// read results after [`StagedServer::stop`].
#[derive(Clone, Debug, Default)]
pub struct CollectorSink {
    records: Arc<Mutex<Vec<EventRecord>>>,
}

impl CollectorSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes everything collected so far.
    pub fn take(&self) -> Vec<EventRecord> {
        std::mem::take(&mut lock(&self.records))
    }

    /// Records collected so far.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DeliverySink for CollectorSink {
    fn on_record(&mut self, record: EventRecord) {
        lock(&self.records).push(record);
    }
}

/// A sink that keeps only end-to-end latencies (plus a failure count) —
/// cheap enough for million-event benchmark runs.
#[derive(Clone, Debug, Default)]
pub struct LatencySink {
    latencies: Arc<Mutex<Vec<u64>>>,
    failed: Arc<AtomicU64>,
}

impl LatencySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the latencies (ns) of every delivered event so far.
    pub fn take(&self) -> Vec<u64> {
        std::mem::take(&mut lock(&self.latencies))
    }

    /// Events whose record carried a broker error.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }
}

impl DeliverySink for LatencySink {
    fn on_record(&mut self, record: EventRecord) {
        if record.outcome.is_ok() {
            lock(&self.latencies).push(record.latency_ns);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

pub(crate) enum ControlOp {
    Subscribe(
        NodeId,
        Rect,
        mpsc::Sender<Result<SubscriptionHandle, BrokerError>>,
    ),
    Unsubscribe(SubscriptionHandle, mpsc::Sender<Result<(), BrokerError>>),
    Recompile(mpsc::Sender<Result<(), BrokerError>>),
    Metrics(mpsc::Sender<MetricsSnapshot>),
}

impl ControlOp {
    /// Whether applying this op can change what the publish path reads —
    /// and therefore bumps the view version at dispatch and republishes
    /// the [`PublishView`] after the fold applies it. A metrics poll
    /// only reads, so it rides the ticket order without a bump.
    pub(crate) fn bumps_view(&self) -> bool {
        !matches!(self, ControlOp::Metrics(_))
    }
}

pub(crate) enum WorkItem {
    Batch(EventBatch),
    Control(ControlOp),
}

/// One work item after dispatch, on its way through an executor to the
/// sequence window.
// `Processed` dwarfs the other variants, but it is also the common
// case: boxing the scratch would put a heap round-trip on the hot path
// to slim the rare ones.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Staged {
    /// A batch whose fused pass already ran on this executor under the
    /// view at `epoch`; the fold consumes the scratch.
    Processed {
        batch: EventBatch,
        scratch: PublishScratch,
        epoch: u64,
        dequeued: Instant,
    },
    /// A batch forwarded untouched for fold-side processing (active
    /// fault plan, or the view refused the batch).
    Raw {
        batch: EventBatch,
        dequeued: Instant,
    },
    /// A control operation, applied by the fold at its ticket.
    Control(ControlOp),
}

pub(crate) struct EgressBatch {
    pub(crate) meta: Vec<SubmitMeta>,
    pub(crate) results: Vec<Result<PublishOutcome, String>>,
    pub(crate) epoch: u64,
    pub(crate) dequeued: Instant,
    pub(crate) folded: Instant,
}

pub(crate) struct IngestShared {
    pub(crate) queue: StageQueue<WorkItem>,
    pub(crate) shards: Vec<Mutex<EventBatcher>>,
    pub(crate) accepting: AtomicBool,
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    /// Rejections already folded into the broker's counters (so gauge
    /// syncs at metrics polls and shutdown never double-count).
    pub(crate) rejected_reported: AtomicU64,
    pub(crate) dims: usize,
    pub(crate) flush_interval: Duration,
}

impl fmt::Debug for IngestShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestShared")
            .field("queue", &self.queue)
            .field("shards", &self.shards.len())
            .field("accepting", &self.accepting)
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .finish_non_exhaustive()
    }
}

/// The dispatcher's ordered-handoff state: one lock assigns tickets and
/// version stamps, making "popped before the control" a total order the
/// window and the versioned view can both rely on.
#[derive(Debug, Default)]
pub(crate) struct DispatchState {
    /// Next ticket — the position of the popped item in the global work
    /// order; the sequence window releases results in this order.
    pub(crate) next_ticket: u64,
    /// Current view version: the number of version-bumping control
    /// operations popped so far. Batches are stamped with it at pop.
    pub(crate) version: u64,
}

/// Everything the executor and fold threads share.
pub(crate) struct ExecShared {
    pub(crate) ingest: Arc<IngestShared>,
    pub(crate) dispatch: Mutex<DispatchState>,
    pub(crate) window: SequenceWindow<Staged>,
    pub(crate) cell: VersionedCell<PublishView>,
    /// Recycled pass scratches: executors pop (or default), the fold
    /// pushes back after consuming — the arenas regrow only on workload
    /// shifts.
    pub(crate) scratch_pool: Mutex<Vec<PublishScratch>>,
    /// Whether the broker had a fault plan installed at start. Fault
    /// state is fold-side and per-event; executors forward batches raw
    /// when set. Plans install before `StagedServer::start`, so this is
    /// constant for the server's lifetime.
    pub(crate) faults_active: bool,
}

impl fmt::Debug for ExecShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecShared")
            .field("ingest", &self.ingest)
            .field("faults_active", &self.faults_active)
            .finish_non_exhaustive()
    }
}

/// The transport-in handle: submit events, run control operations, poll
/// metrics. Cheap to clone; every connection thread (or simulated
/// client) holds one.
#[derive(Clone, Debug)]
pub struct IngestHandle {
    pub(crate) shared: Arc<IngestShared>,
}

impl IngestHandle {
    /// Submits one event on behalf of `client`, with an explicit
    /// open-loop `scheduled` arrival instant (end-to-end latency is
    /// measured from it, so queueing delay is visible when submission
    /// lags the schedule).
    ///
    /// `Ok` is the accept ack: the event will produce exactly one sink
    /// record. `Err` is the reject ack: nothing was enqueued.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Shed`] under backpressure (with a retry-after
    /// hint scaled to the backlog),
    /// [`RejectReason::Malformed`] for a wrong-dimensional event,
    /// [`RejectReason::Closed`] during/after shutdown.
    pub fn submit(
        &self,
        client: u32,
        seq: u64,
        event: Point,
        scheduled: Instant,
    ) -> Result<(), RejectReason> {
        let sh = &*self.shared;
        if event.dims() != sh.dims {
            return Err(RejectReason::Malformed);
        }
        let now = Instant::now();
        let shard = &sh.shards[client as usize % sh.shards.len()];
        let mut batcher = lock(shard);
        // Re-check under the shard lock: shutdown sets the flag before
        // flushing the shards, so a submit that lands after the final
        // flush sees it here and cannot strand an accepted event.
        if !sh.accepting.load(Ordering::SeqCst) {
            return Err(RejectReason::Closed);
        }
        if batcher.is_full() {
            // Mandatory flush before accepting more: if the queue will
            // not take the shard's batch, the *new* event is rejected
            // and everything already accepted stays buffered.
            let batch = batcher.take(now);
            if let Err(err) = sh.queue.try_push(WorkItem::Batch(batch)) {
                let (reason, item) = match err {
                    // Publishes shed with a retry hint; control ops keep
                    // their blocking-push lane and are always admitted.
                    PushError::Full(item) => (
                        RejectReason::Shed {
                            retry_after_ms: shed_hint(sh),
                        },
                        item,
                    ),
                    PushError::Closed(item) => (RejectReason::Closed, item),
                };
                if let WorkItem::Batch(batch) = item {
                    batcher.restore(batch, now);
                }
                sh.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(reason);
            }
        }
        batcher.push(
            SubmitMeta {
                client,
                seq,
                scheduled,
                submitted: now,
            },
            event,
            now,
        );
        sh.accepted.fetch_add(1, Ordering::Relaxed);
        if batcher.is_full() {
            // Opportunistic size-trigger flush; a full queue just leaves
            // the batch for the next submit or the deadline flusher.
            let batch = batcher.take(now);
            if let Err(err) = sh.queue.try_push(WorkItem::Batch(batch)) {
                if let WorkItem::Batch(batch) = err.into_inner() {
                    batcher.restore(batch, now);
                }
            }
        }
        Ok(())
    }

    /// [`IngestHandle::submit`] with `scheduled = now` — for closed-loop
    /// callers (the TCP front) where submission *is* the arrival.
    ///
    /// # Errors
    ///
    /// As [`IngestHandle::submit`].
    pub fn submit_now(&self, client: u32, seq: u64, event: Point) -> Result<(), RejectReason> {
        self.submit(client, seq, event, Instant::now())
    }

    /// Adds a subscription through the ordered pipeline: every event
    /// accepted before this call is matched under the old subscription
    /// set, everything after under the new one.
    ///
    /// # Errors
    ///
    /// [`ServingError::Closed`] after shutdown, or the broker's own
    /// rejection.
    pub fn subscribe(&self, node: NodeId, rect: Rect) -> Result<SubscriptionHandle, ServingError> {
        let (tx, rx) = mpsc::channel();
        self.control(ControlOp::Subscribe(node, rect, tx))?;
        rx.recv()
            .map_err(|_| ServingError::Closed)?
            .map_err(ServingError::Broker)
    }

    /// Removes a subscription through the ordered pipeline.
    ///
    /// # Errors
    ///
    /// As [`IngestHandle::subscribe`].
    pub fn unsubscribe(&self, handle: SubscriptionHandle) -> Result<(), ServingError> {
        let (tx, rx) = mpsc::channel();
        self.control(ControlOp::Unsubscribe(handle, tx))?;
        rx.recv()
            .map_err(|_| ServingError::Closed)?
            .map_err(ServingError::Broker)
    }

    /// Forces a full engine recompile through the ordered pipeline. The
    /// epoch bump lands *between* queued batches, never inside one —
    /// batches accepted earlier keep their pre-recompile epoch (see
    /// [`EventRecord::epoch`]).
    ///
    /// # Errors
    ///
    /// As [`IngestHandle::subscribe`].
    pub fn recompile(&self) -> Result<(), ServingError> {
        let (tx, rx) = mpsc::channel();
        self.control(ControlOp::Recompile(tx))?;
        rx.recv()
            .map_err(|_| ServingError::Closed)?
            .map_err(ServingError::Broker)
    }

    /// Polls a coherent metrics snapshot from the fold thread (counters,
    /// cost report, stage-latency histograms, queue gauges).
    ///
    /// # Errors
    ///
    /// [`ServingError::Closed`] after shutdown.
    pub fn metrics(&self) -> Result<MetricsSnapshot, ServingError> {
        let (tx, rx) = mpsc::channel();
        self.control(ControlOp::Metrics(tx))?;
        rx.recv().map_err(|_| ServingError::Closed)
    }

    /// Submissions accepted so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Submissions rejected by admission control so far.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Enqueues a control operation behind everything already accepted:
    /// flushes every shard (blocking — accepted events are never
    /// dropped), then pushes the op through the same ordered queue.
    fn control(&self, op: ControlOp) -> Result<(), ServingError> {
        let sh = &*self.shared;
        for shard in &sh.shards {
            let mut batcher = lock(shard);
            if !batcher.is_empty() {
                let batch = batcher.take(Instant::now());
                if let Err(WorkItem::Batch(batch)) = sh.queue.push(WorkItem::Batch(batch)) {
                    // Queue closed mid-shutdown: put them back for the
                    // final flush and report closed.
                    batcher.restore(batch, Instant::now());
                    return Err(ServingError::Closed);
                }
            }
        }
        sh.queue
            .push(WorkItem::Control(op))
            .map_err(|_| ServingError::Closed)
    }
}

/// Totals the egress thread hands back at shutdown.
#[derive(Debug, Default)]
pub(crate) struct EgressTotals {
    pub(crate) histo: LatencyHisto,
    pub(crate) delivered: u64,
    pub(crate) failed: u64,
    pub(crate) batches: u64,
}

/// Aggregate serving statistics returned by [`StagedServer::stop`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Submissions accepted (each produced exactly one sink record).
    pub accepted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Accepted events whose outcome was a successful publish.
    pub delivered: u64,
    /// Accepted events the engine refused (fault-plan aborts etc.); their
    /// records carry the error.
    pub failed: u64,
    /// Batches the pipeline processed.
    pub batches: u64,
    /// High-water mark of the ingest queue.
    pub ingest_queue_max_depth: u64,
    /// Stage threads the supervisor restarted after a crash (always 0
    /// for the unsupervised [`StagedServer`]).
    pub restarts: u64,
    /// In-flight work items salvaged and replayed across stage restarts
    /// (always 0 for the unsupervised [`StagedServer`]).
    pub replayed_batches: u64,
}

/// The running staged server. Owns the executor, fold and egress
/// threads; [`StagedServer::stop`] (or drop) shuts down cleanly,
/// returning the broker and the aggregate stats.
#[derive(Debug)]
pub struct StagedServer {
    handle: IngestHandle,
    ctx: Arc<ExecShared>,
    flusher_stop: Arc<AtomicBool>,
    flusher: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    fold: Option<JoinHandle<Broker>>,
    egress: Option<JoinHandle<EgressTotals>>,
    stats: ServerStats,
}

impl StagedServer {
    /// Starts the staged server around `broker`: spawns the pipeline
    /// executors (sharing an immutable [`PublishView`] of the broker),
    /// the fold thread (which takes ownership of the broker), the egress
    /// thread (which takes ownership of `sink`), and the deadline
    /// flusher.
    pub fn start(mut broker: Broker, config: ServingConfig, sink: Box<dyn DeliverySink>) -> Self {
        let dims = broker.space().dims();
        let shared = Arc::new(IngestShared {
            queue: StageQueue::new(config.ingest_capacity),
            shards: (0..config.shards.max(1))
                .map(|_| Mutex::new(EventBatcher::new(config.max_batch, dims)))
                .collect(),
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_reported: AtomicU64::new(0),
            dims,
            flush_interval: config.flush_interval,
        });
        let executors = pubsub_parallel::effective_threads(config.executors);
        let ctx = Arc::new(ExecShared {
            ingest: Arc::clone(&shared),
            dispatch: Mutex::new(DispatchState::default()),
            // The window bounds how far ahead of the fold the executors
            // can run; modest slack past the executor count is enough to
            // keep them all busy without unbounded reorder memory.
            window: SequenceWindow::new(executors as u64 * 2 + 2),
            cell: VersionedCell::new(broker.publish_view()),
            scratch_pool: Mutex::new(Vec::new()),
            faults_active: broker.faults_active(),
        });
        let egress_queue: StageQueue<EgressBatch> = StageQueue::new(config.egress_capacity);
        let flusher_stop = Arc::new(AtomicBool::new(false));

        let flusher = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&flusher_stop);
            std::thread::Builder::new()
                .name("pubsub-flusher".into())
                .spawn(move || flusher_loop(&shared, &stop))
                .expect("spawn flusher thread")
        };
        let executor_handles = (0..executors)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("pubsub-exec-{i}"))
                    .spawn(move || executor_loop(&ctx))
                    .expect("spawn executor thread")
            })
            .collect();
        let fold = {
            let ctx = Arc::clone(&ctx);
            let egress_queue = egress_queue.clone();
            let threads = config.threads;
            std::thread::Builder::new()
                .name("pubsub-fold".into())
                .spawn(move || fold_loop(broker, &ctx, &egress_queue, threads))
                .expect("spawn fold thread")
        };
        let egress = std::thread::Builder::new()
            .name("pubsub-egress".into())
            .spawn(move || egress_loop(&egress_queue, sink))
            .expect("spawn egress thread");

        StagedServer {
            handle: IngestHandle { shared },
            ctx,
            flusher_stop,
            flusher: Some(flusher),
            executors: executor_handles,
            fold: Some(fold),
            egress: Some(egress),
            stats: ServerStats::default(),
        }
    }

    /// A transport-in handle for submitting events and control ops.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Stops accepting, flushes every shard, drains the queues and the
    /// sequence window, joins the stage threads, and returns the broker
    /// (with the egress histogram merged into its counters) plus the
    /// aggregate stats.
    ///
    /// # Panics
    ///
    /// Panics if a stage thread itself panicked.
    pub fn stop(mut self) -> (Broker, ServerStats) {
        let broker = self.shutdown().expect("stage threads healthy");
        (broker, self.stats)
    }

    fn shutdown(&mut self) -> Option<Broker> {
        let fold = self.fold.take()?;
        let sh = &*self.handle.shared;
        sh.accepting.store(false, Ordering::SeqCst);
        // Final flush: every accepted event must reach the pipeline, so
        // this push blocks rather than rejects.
        for shard in &sh.shards {
            let mut batcher = lock(shard);
            if !batcher.is_empty() {
                let batch = batcher.take(Instant::now());
                let _ = sh.queue.push(WorkItem::Batch(batch));
            }
        }
        sh.queue.close();
        self.flusher_stop.store(true, Ordering::SeqCst);
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        // Executors drain the closed queue and push their last tickets;
        // only then may the window close (it would otherwise drop the
        // gap behind a straggler).
        for executor in self.executors.drain(..) {
            executor.join().expect("executor thread panicked");
        }
        self.ctx.window.close();
        let mut broker = fold.join().expect("fold thread panicked");
        let totals = self
            .egress
            .take()
            .expect("egress joined once")
            .join()
            .expect("egress thread panicked");
        broker.merge_stage_latencies(StageKind::Egress, &totals.histo);
        sync_gauges(&mut broker, sh);
        self.stats = ServerStats {
            accepted: sh.accepted.load(Ordering::Relaxed),
            rejected: sh.rejected.load(Ordering::Relaxed),
            delivered: totals.delivered,
            failed: totals.failed,
            batches: totals.batches,
            ingest_queue_max_depth: sh.queue.max_depth() as u64,
            restarts: 0,
            replayed_batches: 0,
        };
        Some(broker)
    }
}

impl Drop for StagedServer {
    fn drop(&mut self) {
        // Explicit `stop` already ran if the fold is None; otherwise
        // shut down so no stage thread outlives the server.
        let _ = self.shutdown();
    }
}

/// Folds the ingest-side gauges (queue high-water mark, rejection count)
/// into the broker's counters, exactly once per rejection.
pub(crate) fn sync_gauges(broker: &mut Broker, shared: &IngestShared) {
    let total = shared.rejected.load(Ordering::Relaxed);
    let prev = shared.rejected_reported.swap(total, Ordering::Relaxed);
    broker.note_rejected(total - prev);
    broker.note_queue_depth(shared.queue.max_depth() as u64);
}

/// The shed tier's retry hint: roughly how long the current backlog
/// takes to drain (queue depth × the flush interval each entry
/// represents), clamped to a sane client-side backoff band. A deeper
/// backlog tells clients to stay away longer instead of hammering the
/// admission edge.
pub(crate) fn shed_hint(shared: &IngestShared) -> u32 {
    let depth = shared.queue.depth().max(1) as u128;
    let per_batch_ms = shared.flush_interval.as_millis().max(1);
    (depth * per_batch_ms).clamp(1, 10_000) as u32
}

/// The adaptive-deadline floor: a shallow ingest queue flushes shards
/// after this long, trading batch size for latency. Configs with long
/// intervals (tests pin events with hour-scale ones) keep proportionally
/// long floors, so "never flushes on its own" setups still hold.
fn deadline_floor(interval: Duration) -> Duration {
    (interval / 16)
        .max(Duration::from_micros(100))
        .min(interval)
}

/// The effective flush deadline right now: interpolates from the floor
/// (idle queue — flush eagerly, the pipeline is starving) up to the
/// configured ceiling as the ingest queue fills (backlog — let batches
/// grow instead of adding queue entries).
fn adaptive_deadline(shared: &IngestShared) -> Duration {
    let ceiling = shared.flush_interval;
    let floor = deadline_floor(ceiling);
    let fill = shared.queue.depth() as f64 / shared.queue.capacity().max(1) as f64;
    floor + (ceiling - floor).mul_f64(fill.clamp(0.0, 1.0))
}

pub(crate) fn flusher_loop(shared: &IngestShared, stop: &AtomicBool) {
    // The tick tracks the *floor* so an idle queue actually gets its
    // eager flushes, and is capped so shutdown never waits on a sleeping
    // flusher: `stop` joins this thread, and an arbitrarily long flush
    // interval must not translate into an arbitrarily long join.
    let tick = (deadline_floor(shared.flush_interval) / 2)
        .clamp(Duration::from_micros(50), Duration::from_millis(20));
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let deadline = adaptive_deadline(shared);
        let now = Instant::now();
        for shard in &shared.shards {
            let mut batcher = lock(shard);
            if batcher.due(now, deadline) {
                let batch = batcher.take(now);
                if let Err(err) = shared.queue.try_push(WorkItem::Batch(batch)) {
                    if let WorkItem::Batch(batch) = err.into_inner() {
                        batcher.restore(batch, now);
                    }
                }
            }
        }
    }
}

/// What an executor popped, after the dispatcher stamped it.
pub(crate) enum Popped {
    /// A batch plus the view version it must process under.
    Batch(EventBatch, u64),
    Control(ControlOp),
}

/// One concurrent pipeline executor: pop under the dispatcher lock (one
/// ticket per item, version-stamped), run the read-only fused pass
/// against the view at exactly the stamped version, and push the result
/// into the sequence window at the ticket. Everything order-sensitive
/// (broker mutation, version publication, egress handoff) happens on the
/// fold side, in ticket order.
fn executor_loop(ctx: &ExecShared) {
    loop {
        let (ticket, popped) = {
            let mut st = lock(&ctx.dispatch);
            // Popping under the dispatcher lock is what makes tickets a
            // total order consistent with the queue order; idle peers
            // block on the lock instead of the queue, which costs
            // nothing — they could not pop anyway.
            let Some(item) = ctx.ingest.queue.pop() else {
                return;
            };
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            match item {
                WorkItem::Batch(batch) => (ticket, Popped::Batch(batch, st.version)),
                WorkItem::Control(op) => {
                    if op.bumps_view() {
                        st.version += 1;
                    }
                    (ticket, Popped::Control(op))
                }
            }
        };
        match popped {
            Popped::Control(op) => {
                let _ = ctx.window.push(ticket, Staged::Control(op));
            }
            Popped::Batch(batch, version) => {
                let dequeued = Instant::now();
                let staged = if ctx.faults_active {
                    Staged::Raw { batch, dequeued }
                } else {
                    // The fold publishes version v only after folding
                    // every ticket before the op that bumped to v, and
                    // all such tickets precede ours — so the wait both
                    // terminates and can only ever observe our version.
                    let (seen, view) = ctx.cell.wait_at_least(version);
                    debug_assert_eq!(seen, version, "executor observed a future view");
                    let mut scratch = lock(&ctx.scratch_pool).pop().unwrap_or_default();
                    match view.process_into(&batch.points, Some(&batch.soa), &mut scratch) {
                        Ok(()) => Staged::Processed {
                            batch,
                            scratch,
                            epoch: view.epoch(),
                            dequeued,
                        },
                        // Unreachable in practice (submit validates
                        // dimensions), but losing records is not an
                        // option: let the fold produce the errors.
                        Err(_) => {
                            lock(&ctx.scratch_pool).push(scratch);
                            Staged::Raw { batch, dequeued }
                        }
                    }
                };
                let _ = ctx.window.push(ticket, staged);
            }
        }
    }
}

/// Per-event transport-in latencies, recorded when the fold (the only
/// broker owner) sees the batch: batcher residency, queue wait, and
/// their sum kept as the whole-stage histogram.
pub(crate) fn note_ingest(
    broker: &mut Broker,
    meta: &[SubmitMeta],
    enqueued: Instant,
    dequeued: Instant,
) {
    for m in meta {
        broker.note_stage_latency(
            StageKind::Batcher,
            nanos(enqueued.saturating_duration_since(m.submitted)),
        );
        broker.note_stage_latency(
            StageKind::QueueWait,
            nanos(dequeued.saturating_duration_since(enqueued)),
        );
        broker.note_stage_latency(
            StageKind::Ingest,
            nanos(dequeued.saturating_duration_since(m.submitted)),
        );
    }
}

pub(crate) fn forward(
    egress: &StageQueue<EgressBatch>,
    batch: EventBatch,
    results: Vec<Result<PublishOutcome, String>>,
    epoch: u64,
    dequeued: Instant,
    folded: Instant,
) {
    if egress
        .push(EgressBatch {
            meta: batch.meta,
            results,
            epoch,
            dequeued,
            folded,
        })
        .is_err()
    {
        unreachable!("egress queue closes only after the fold exits");
    }
}

/// The in-order fold: the single broker owner. Consumes the sequence
/// window in ticket order — folding executor scratches, processing raw
/// (fault-path) batches, applying control operations and republishing
/// the view on version bumps — and forwards egress batches in that same
/// order, which is what keeps sink output deterministic.
fn fold_loop(
    mut broker: Broker,
    ctx: &ExecShared,
    egress: &StageQueue<EgressBatch>,
    threads: Option<usize>,
) -> Broker {
    let mut version = 0u64;
    let mut outcomes: Vec<PublishOutcome> = Vec::new();
    while let Some((_ticket, staged)) = ctx.window.pop_next() {
        match staged {
            Staged::Processed {
                batch,
                mut scratch,
                epoch,
                dequeued,
            } => {
                note_ingest(&mut broker, &batch.meta, batch.enqueued, dequeued);
                outcomes.clear();
                broker.fold_staged(batch.len(), epoch, &mut scratch, &mut outcomes);
                lock(&ctx.scratch_pool).push(scratch);
                let folded = Instant::now();
                broker.note_stage_latency(
                    StageKind::Pipeline,
                    nanos(folded.saturating_duration_since(dequeued)),
                );
                let results = outcomes.drain(..).map(Ok).collect();
                forward(egress, batch, results, epoch, dequeued, folded);
            }
            Staged::Raw { batch, dequeued } => {
                note_ingest(&mut broker, &batch.meta, batch.enqueued, dequeued);
                let (results, epoch) = process(&mut broker, &batch.points, threads);
                let folded = Instant::now();
                broker.note_stage_latency(
                    StageKind::Pipeline,
                    nanos(folded.saturating_duration_since(dequeued)),
                );
                forward(egress, batch, results, epoch, dequeued, folded);
            }
            Staged::Control(op) => {
                let bumps = op.bumps_view();
                match op {
                    ControlOp::Subscribe(node, rect, tx) => {
                        let _ = tx.send(broker.subscribe(node, rect));
                    }
                    ControlOp::Unsubscribe(handle, tx) => {
                        let _ = tx.send(broker.unsubscribe(handle));
                    }
                    ControlOp::Recompile(tx) => {
                        let _ = tx.send(broker.recompile());
                    }
                    ControlOp::Metrics(tx) => {
                        sync_gauges(&mut broker, &ctx.ingest);
                        let _ = tx.send(broker.metrics_snapshot());
                    }
                }
                if bumps {
                    // Republish even if the op itself failed: the
                    // dispatcher already advanced the version, and a
                    // batch stamped with it is (or will be) waiting.
                    version += 1;
                    ctx.cell.publish(version, Arc::new(broker.publish_view()));
                }
            }
        }
    }
    egress.close();
    broker
}

/// Runs one batch through the engine on the fold side. Fault-free
/// batches (an executor's view pass was refused) take the fused pipeline
/// in one go; under an active fault plan each event runs as its own
/// one-event batch so a mid-batch abort (publisher down) cannot leave
/// recorded events without records — see the module docs.
#[allow(clippy::type_complexity)]
pub(crate) fn process(
    broker: &mut Broker,
    points: &[Point],
    threads: Option<usize>,
) -> (Vec<Result<PublishOutcome, String>>, u64) {
    if broker.faults_active() {
        let results = points
            .iter()
            .map(|p| {
                broker
                    .process_batch(std::slice::from_ref(p), threads)
                    .map(|mut staged| staged.outcomes.pop().expect("one outcome per event"))
                    .map_err(|e| e.to_string())
            })
            .collect();
        return (results, broker.epoch());
    }
    match broker.process_batch(points, threads) {
        Ok(staged) => {
            let epoch = staged.epoch;
            (staged.outcomes.into_iter().map(Ok).collect(), epoch)
        }
        // Whole-batch validation failure: nothing recorded, every event
        // gets the error (submit-side dimension checks make this rare).
        Err(err) => {
            let msg = err.to_string();
            let epoch = broker.epoch();
            (points.iter().map(|_| Err(msg.clone())).collect(), epoch)
        }
    }
}

fn egress_loop(queue: &StageQueue<EgressBatch>, mut sink: Box<dyn DeliverySink>) -> EgressTotals {
    let mut totals = EgressTotals::default();
    while let Some(batch) = queue.pop() {
        let started = Instant::now();
        debug_assert_eq!(batch.meta.len(), batch.results.len());
        for (event, outcome) in batch.meta.into_iter().zip(batch.results) {
            let now = Instant::now();
            if outcome.is_ok() {
                totals.delivered += 1;
            } else {
                totals.failed += 1;
            }
            sink.on_record(EventRecord {
                client: event.client,
                seq: event.seq,
                epoch: batch.epoch,
                outcome,
                latency_ns: nanos(now.saturating_duration_since(event.scheduled)),
                ingest_ns: nanos(batch.dequeued.saturating_duration_since(event.submitted)),
                pipeline_ns: nanos(batch.folded.saturating_duration_since(batch.dequeued)),
                egress_ns: nanos(now.saturating_duration_since(batch.folded)),
            });
        }
        totals.histo.record(nanos(started.elapsed()));
        totals.batches += 1;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
    use pubsub_netsim::TransitStubConfig;

    fn tiny_broker() -> Broker {
        let topo = TransitStubConfig::tiny().generate(11).expect("tiny topo");
        let space = pubsub_geom::Space::anonymous(
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"),
        )
        .expect("space");
        let nodes = topo.stub_nodes().to_vec();
        Broker::builder(topo, space)
            .subscription(
                nodes[0],
                Rect::from_corners(&[0.0, 0.0], &[6.0, 6.0]).expect("rect"),
            )
            .subscription(
                nodes[1 % nodes.len()],
                Rect::from_corners(&[3.0, 3.0], &[9.0, 9.0]).expect("rect"),
            )
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .threshold(0.15)
            .build()
            .expect("broker")
    }

    fn events(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                Point::new(vec![x, 9.5 - x]).expect("point")
            })
            .collect()
    }

    #[test]
    fn staged_results_match_synchronous_batch() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                shards: 1, // one shard keeps submission order end to end
                max_batch: 16,
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let handle = server.handle();
        let stream = events(50);
        for (i, e) in stream.iter().enumerate() {
            handle
                .submit_now(0, i as u64, e.clone())
                .expect("no backpressure at this rate");
        }
        let (broker, stats) = server.stop();
        assert_eq!(stats.accepted, 50);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.delivered, 50);
        assert_eq!(stats.failed, 0);

        let mut records = sink.take();
        assert_eq!(records.len(), 50);
        records.sort_by_key(|r| r.seq);
        let mut reference = tiny_broker();
        let expected = reference.publish_batch(&stream, Some(1)).expect("batch");
        for (record, want) in records.iter().zip(&expected) {
            assert_eq!(record.outcome.as_ref().expect("delivered"), want);
            assert_eq!(record.epoch, reference.epoch());
        }
        // The cumulative cost report is bit-identical too.
        assert_eq!(broker.report(), reference.report());
    }

    #[test]
    fn concurrent_executors_keep_sink_order_and_identity() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                shards: 1,
                max_batch: 4, // many small batches — real reorder pressure
                executors: Some(3),
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let handle = server.handle();
        let stream = events(60);
        for (i, e) in stream.iter().enumerate() {
            handle
                .submit_now(0, i as u64, e.clone())
                .expect("no backpressure at this rate");
        }
        let (broker, stats) = server.stop();
        assert_eq!(stats.delivered, 60);

        // No sort: the sequence window must deliver records to the sink
        // in exact submission order despite three racing executors.
        let records = sink.take();
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..60).collect::<Vec<u64>>());
        let mut reference = tiny_broker();
        let expected = reference.publish_batch(&stream, Some(1)).expect("batch");
        for (record, want) in records.iter().zip(&expected) {
            assert_eq!(record.outcome.as_ref().expect("delivered"), want);
        }
        assert_eq!(broker.report(), reference.report());
    }

    #[test]
    fn deadline_flush_delivers_sparse_traffic() {
        let sink = CollectorSink::new();
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                max_batch: 1_000_000, // size trigger unreachable
                flush_interval: Duration::from_millis(2),
                ..ServingConfig::default()
            },
            Box::new(sink.clone()),
        );
        let handle = server.handle();
        handle
            .submit_now(3, 77, Point::new(vec![1.0, 1.0]).expect("point"))
            .expect("accepted");
        // Only the deadline can flush this single event.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sink.len(), 1, "deadline flusher never fired");
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn adaptive_deadline_tracks_queue_fill() {
        let interval = Duration::from_millis(8);
        let shared = IngestShared {
            queue: StageQueue::new(4),
            shards: Vec::new(),
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_reported: AtomicU64::new(0),
            dims: 2,
            flush_interval: interval,
        };
        let floor = deadline_floor(interval);
        assert_eq!(floor, Duration::from_micros(500));
        // Idle queue: eager floor.
        assert_eq!(adaptive_deadline(&shared), floor);
        // Full queue: the configured ceiling.
        for _ in 0..4 {
            assert!(shared
                .queue
                .try_push(WorkItem::Control(ControlOp::Metrics(mpsc::channel().0)))
                .is_ok());
        }
        assert_eq!(adaptive_deadline(&shared), interval);
        // Long test intervals keep proportionally long floors, so
        // "pin events in the batcher" configs never flush early.
        assert_eq!(
            deadline_floor(Duration::from_secs(3600)),
            Duration::from_secs(225)
        );
    }

    #[test]
    fn overload_rejects_explicitly_and_loses_nothing() {
        let sink = CollectorSink::new();
        // A sink this slow stalls egress; capacity-1 queues propagate the
        // pressure back to submissions within a few batches.
        let slow = {
            let sink = sink.clone();
            move |record: EventRecord| {
                std::thread::sleep(Duration::from_millis(20));
                let mut sink = sink.clone();
                sink.on_record(record);
            }
        };
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                ingest_capacity: 1,
                egress_capacity: 1,
                max_batch: 1,
                shards: 1,
                flush_interval: Duration::from_millis(1),
                ..ServingConfig::default()
            },
            Box::new(slow),
        );
        let handle = server.handle();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for (i, e) in events(60).into_iter().enumerate() {
            match handle.submit_now(0, i as u64, e) {
                Ok(()) => accepted += 1,
                Err(RejectReason::Shed { retry_after_ms }) => {
                    assert!(retry_after_ms >= 1, "shed hint must be actionable");
                    rejected += 1;
                }
                Err(other) => panic!("unexpected reject: {other}"),
            }
        }
        assert!(rejected > 0, "no backpressure despite stalled egress");
        let (broker, stats) = server.stop();
        assert_eq!(stats.accepted, accepted);
        assert_eq!(stats.rejected, rejected);
        // Every accepted event got exactly one record; rejected ones none.
        assert_eq!(stats.delivered + stats.failed, accepted);
        assert_eq!(sink.len() as u64, accepted);
        let counters = broker.pipeline_counters();
        assert_eq!(counters.ingest_rejected, rejected);
        assert!(counters.ingest_queue_max_depth >= 1);
    }

    #[test]
    fn malformed_and_closed_submissions_reject() {
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig::default(),
            Box::new(CollectorSink::new()),
        );
        let handle = server.handle();
        assert_eq!(
            handle.submit_now(0, 0, Point::new(vec![1.0]).expect("point")),
            Err(RejectReason::Malformed)
        );
        let (_, stats) = server.stop();
        assert_eq!(stats.accepted, 0);
        assert_eq!(
            handle.submit_now(0, 1, Point::new(vec![1.0, 2.0]).expect("point")),
            Err(RejectReason::Closed)
        );
        assert!(matches!(handle.recompile(), Err(ServingError::Closed)));
    }

    #[test]
    fn metrics_snapshot_reports_stage_histograms() {
        let server = StagedServer::start(
            tiny_broker(),
            ServingConfig {
                shards: 1,
                max_batch: 4,
                ..ServingConfig::default()
            },
            Box::new(LatencySink::new()),
        );
        let handle = server.handle();
        for (i, e) in events(12).into_iter().enumerate() {
            handle.submit_now(0, i as u64, e).expect("accepted");
        }
        let snapshot = handle.metrics().expect("metrics");
        assert!(snapshot.pipeline.events >= 1);
        assert!(!snapshot.pipeline.stage_ingest.is_empty());
        assert!(!snapshot.pipeline.stage_pipeline.is_empty());
        let (broker, _) = server.stop();
        let final_counters = broker.pipeline_counters();
        // The whole-stage histogram and its two splits see every event.
        assert_eq!(final_counters.stage_ingest.count(), 12);
        assert_eq!(final_counters.stage_batcher.count(), 12);
        assert_eq!(final_counters.stage_queue_wait.count(), 12);
        assert!(!final_counters.stage_egress.is_empty());
    }
}
