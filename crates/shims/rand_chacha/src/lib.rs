//! A self-contained ChaCha8 generator implementing the vendored `rand`
//! shim's `RngCore`/`SeedableRng`. The keystream is real ChaCha with 8
//! rounds; seeds expand through SplitMix64 like upstream
//! `SeedableRng::seed_from_u64`. Stream values differ from the upstream
//! crate (the workspace only relies on determinism and uniformity, not on
//! bit-compatibility with `rand_chacha` 0.3).

use rand::{split_mix_64, RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic, seedable ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (the "input block").
    state: [u32; 16],
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(words: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    words[a] = words[a].wrapping_add(words[b]);
    words[d] = (words[d] ^ words[a]).rotate_left(16);
    words[c] = words[c].wrapping_add(words[d]);
    words[b] = (words[b] ^ words[c]).rotate_left(12);
    words[a] = words[a].wrapping_add(words[b]);
    words[d] = (words[d] ^ words[a]).rotate_left(8);
    words[c] = words[c].wrapping_add(words[d]);
    words[b] = (words[b] ^ words[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let v = split_mix_64(&mut sm);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0u32; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
