//! A minimal benchmark harness exposing the `criterion` API surface this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with throughput annotations, `bench_with_input`, and
//! `Bencher::iter`. It really measures (monotonic clock, median over N
//! samples, one warm-up sample) and prints one line per benchmark; there
//! are no plots, no statistics engine, and no saved baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// Units-of-work annotation used to derive a throughput line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Builds an id like `"stree/10000"`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with units of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let id = BenchmarkId { repr: id.into() };
        self.report(&id, &bencher.samples);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id.repr);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let mut line = format!(
            "{}/{}: median {:?}, mean {:?} over {} samples",
            self.name,
            id.repr,
            median,
            mean,
            sorted.len()
        );
        if let Some(throughput) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                match throughput {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(", {:.0} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(", {:.0} B/s", n as f64 / secs));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then `sample_size` timed
    /// calls. The return value is passed through [`black_box`] so the
    /// work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
