//! The two distributions this workspace samples — [`Normal`] (Box–Muller)
//! and [`Pareto`] (inverse CDF) — over the vendored `rand` shim.

use rand::{Rng, RngCore};
use std::fmt;

/// Error from constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.what)
    }
}

impl std::error::Error for Error {}

/// Types that can generate values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform in `(0, 1]` — safe input to `ln`.
fn unit_open_closed<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds the distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !(std_dev.is_finite() && mean.is_finite()) || std_dev < 0.0 {
            return Err(Error {
                what: "Normal requires finite mean and std_dev >= 0",
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform.
        let u1 = unit_open_closed(rng);
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The Pareto distribution with the given scale (minimum value) and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Builds the distribution; both parameters must be positive and finite.
    pub fn new(scale: f64, shape: f64) -> Result<Pareto, Error> {
        if !(scale.is_finite() && shape.is_finite()) || scale <= 0.0 || shape <= 0.0 {
            return Err(Error {
                what: "Pareto requires positive finite scale and shape",
            });
        }
        Ok(Pareto { scale, shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_open_closed(rng);
        self.scale * u.powf(-1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let dist = Normal::new(5.0, 2.0).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let dist = Pareto::new(1.5, 2.0).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(12);
        for _ in 0..10_000 {
            assert!(dist.sample(&mut rng) >= 1.5);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
    }
}
