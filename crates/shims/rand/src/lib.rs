//! A minimal reimplementation of the slice of `rand` 0.8 this workspace
//! uses: `RngCore`/`Rng` with `gen`/`gen_range`, `SeedableRng` with
//! `seed_from_u64`, and `thread_rng`. Deterministic generators come from
//! the vendored `rand_chacha`. The statistical quality target is "good
//! enough for simulation workloads", not cryptography.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Produces the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers) — the target of [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty)*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the widest multiple of `span` to stay unbiased.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state (SplitMix64, as in upstream `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, the standard seed expander.
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators bundled with the crate.
pub mod rngs {
    use super::{split_mix_64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift-multiplied
    /// SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut s = state;
            // Burn one step so consecutive seeds diverge immediately.
            let _ = split_mix_64(&mut s);
            SmallRng { state: s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            split_mix_64(&mut self.state)
        }
    }

    /// The generator handed out by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) SmallRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a per-call generator seeded from a process-wide counter. Unlike
/// the real `thread_rng` it is not cryptographically seeded — callers in
/// this workspace only use it for illustrative sampling.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_CAFE);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(rngs::SmallRng::seed_from_u64(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.02f64..0.02);
            assert!((-0.02..0.02).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
