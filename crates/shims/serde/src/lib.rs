//! A minimal, self-contained reimplementation of the subset of `serde`
//! this workspace uses. The build environment has no access to crates.io,
//! so the real `serde` cannot be vendored; this shim keeps the same module
//! paths (`serde::Serialize`, `serde::de::DeserializeOwned`, ...) and the
//! same JSON-facing data model so application code compiles unchanged.
//!
//! Scope: everything the workspace's derives and hand-written impls need —
//! structs with named fields, newtype/tuple structs, externally-tagged
//! enums with unit and struct variants, and the primitive/container types
//! used by the experiment artifacts. It is *not* a general serde.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live beside the traits, exactly like the real crate.
pub use serde_derive::{Deserialize, Serialize};
