//! Serialization half of the shim: the `Serialize` / `Serializer` traits
//! and impls for the primitive and container types the workspace stores in
//! its JSON artifacts.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error raised by a serializer.
pub trait Error: Sized + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Feeds `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The driver side: a sink for one value.
pub trait Serializer: Sized {
    /// Final output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sink returned by [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sink returned by [`Serializer::serialize_struct`] (also used
    /// for struct variants).
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Map sink returned by [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value (JSON `null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant (externally tagged: the variant name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant (`{"Variant": value}`).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Starts a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Starts a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Starts a struct enum variant (`{"Variant": {...}}`).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Starts a map with string keys.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
}

/// Incremental sequence sink.
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental struct sink.
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental string-keyed map sink.
pub trait SerializeMap {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Appends one entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}
impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_slice<S: Serializer, T: Serialize>(
    items: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(items.len()))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(ser_tuple!(@count $($t)+)))?;
                $(seq.serialize_element(&self.$n)?;)+
                seq.end()
            }
        }
    )*};
    (@count $($t:ident)+) => { [$(ser_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
impl<K: Serialize, V: Serialize, H: std::hash::BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
