//! Deserialization half of the shim. The only deserializer in the
//! workspace is the JSON one in the vendored `serde_json`, which is
//! value-based and self-describing, so the `Deserializer` trait here is
//! deliberately tiny: `deserialize_any` plus an option hook.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// An enum tag did not name a known variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A value had the wrong JSON type.
    fn invalid_type(unexpected: &str, expected: &dyn Display) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expected}"
        ))
    }
}

/// A type constructible from a self-describing data format.
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to produce a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` with no borrowed data — what owned round trips need.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The driver side: a source for one value.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Dispatches on the self-described value shape.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Distinguishes `null` (→ `visit_none`) from a present value
    /// (→ `visit_some`).
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Receives whichever shape the deserializer found. Default methods reject
/// with a type error naming [`Visitor::expecting`].
pub trait Visitor<'de>: Sized {
    /// The produced type.
    type Value;

    /// Writes "what this visitor expects" for error messages.
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a boolean.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            &format!("boolean `{v}`"),
            &Expecting(&self),
        ))
    }
    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            &format!("integer `{v}`"),
            &Expecting(&self),
        ))
    }
    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::invalid_type(
            &format!("integer `{v}`"),
            &Expecting(&self),
        ))
    }
    /// Visits a float.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("float `{v}`"), &Expecting(&self)))
    }
    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type(&format!("string {v:?}"), &Expecting(&self)))
    }
    /// Visits an owned string (defaults to [`Visitor::visit_str`]).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits `null`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("null", &Expecting(&self)))
    }
    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &Expecting(&self)))
    }
    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_type(
            "some",
            &"nothing (visit_some unimplemented)",
        ))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::invalid_type("sequence", &Expecting(&self)))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::invalid_type("map", &Expecting(&self)))
    }
}

struct Expecting<'a, V>(&'a V);
impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// Streaming access to a sequence's elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Produces the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to a map's entries (string keys).
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Produces the next key, or `None` at the end.
    fn next_key(&mut self) -> Result<Option<String>, Self::Error>;
    /// Produces the value of the key just returned.
    fn next_value<T: Deserialize<'de>>(&mut self) -> Result<T, Self::Error>;
}

/// Accepts and discards any value (used for unknown struct fields).
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_any(V)
    }
}

struct PrimVisitor<T> {
    expecting: &'static str,
    _marker: PhantomData<T>,
}
impl<T> PrimVisitor<T> {
    fn new(expecting: &'static str) -> Self {
        PrimVisitor {
            expecting,
            _marker: PhantomData,
        }
    }
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl<'de> Visitor<'de> for PrimVisitor<$t> {
            type Value = $t;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.expecting)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                <$t>::try_from(v).map_err(|_| E::custom(format_args!(
                    "integer `{v}` out of range for {}", self.expecting)))
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                <$t>::try_from(v).map_err(|_| E::custom(format_args!(
                    "integer `{v}` out of range for {}", self.expecting)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                deserializer.deserialize_any(PrimVisitor::<$t>::new(stringify!($t)))
            }
        }
    )*};
}
de_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl<'de> Visitor<'de> for PrimVisitor<bool> {
    type Value = bool;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a boolean")
    }
    fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(PrimVisitor::<bool>::new("a boolean"))
    }
}

impl<'de> Visitor<'de> for PrimVisitor<f64> {
    type Value = f64;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a number")
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
        Ok(v)
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<f64, E> {
        Ok(v as f64)
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<f64, E> {
        Ok(v as f64)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(PrimVisitor::<f64>::new("a number"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Visitor<'de> for PrimVisitor<String> {
    type Value = String;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a string")
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
        Ok(v.to_owned())
    }
    fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(PrimVisitor::<String>::new("a string"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V::<T>(PhantomData))
    }
}

struct VecVisitor<T>(PhantomData<T>);
impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
    type Value = Vec<T>;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a sequence")
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(item) = seq.next_element()? {
            out.push(item);
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(VecVisitor::<T>(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            D::Error::custom(format_args!("expected array of {N} elements, got {len}"))
        })
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__De: Deserializer<'de>>(deserializer: __De) -> Result<Self, __De::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    fn visit_seq<__Acc: SeqAccess<'de>>(self, mut seq: __Acc) -> Result<Self::Value, __Acc::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(<__Acc::Error as Error>::custom(
                                    format_args!("tuple too short at element {}", $n))),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_any(V::<$($t),+>(PhantomData))
            }
        }
    )*};
}
de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

struct MapVisitor<M>(PhantomData<M>);

impl<'de, V: Deserialize<'de>> Visitor<'de> for MapVisitor<BTreeMap<String, V>> {
    type Value = BTreeMap<String, V>;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a map")
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = BTreeMap::new();
        while let Some(key) = map.next_key()? {
            out.insert(key, map.next_value()?);
        }
        Ok(out)
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(MapVisitor::<Self>(PhantomData))
    }
}

impl<'de, V: Deserialize<'de>, H: std::hash::BuildHasher + Default> Visitor<'de>
    for MapVisitor<HashMap<String, V, H>>
{
    type Value = HashMap<String, V, H>;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a map")
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = HashMap::default();
        while let Some(key) = map.next_key()? {
            out.insert(key, map.next_value()?);
        }
        Ok(out)
    }
}
impl<'de, V: Deserialize<'de>, H: std::hash::BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, H>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(MapVisitor::<Self>(PhantomData))
    }
}
