//! A minimal property-testing harness with the `proptest` surface this
//! workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range/tuple/`Just`/`vec`/`option`/`bool`
//! strategies, `prop_map`/`prop_flat_map`, and `prop_assert!`/
//! `prop_assert_eq!`. Cases are generated from a deterministic per-test
//! RNG; there is no shrinking — failures report the case number so a run
//! can be reproduced exactly.

use std::ops::{Range, RangeInclusive};

// -------------------------------------------------------------------- RNG

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

// --------------------------------------------------------------- Strategy

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
}

/// Collection, option, and boolean strategy constructors, mirroring the
/// `proptest::prelude::prop` module paths.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Number of elements a [`vec()`] strategy may generate.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_exclusive - self.size.lo) as u64;
                let len = self.size.lo
                    + if span > 1 {
                        rng.below(span) as usize
                    } else {
                        0
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates a `Vec` whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Strategies for `Option`.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // 1-in-4 `None`, like upstream's default weighting.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// Generates `None` or a value from `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    /// Strategies for `bool`.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Generates `true` or `false` with equal probability.
        pub const ANY: Any = Any;
    }
}

// ----------------------------------------------------------------- Runner

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: runs `f` against `config.cases` deterministic
/// cases and panics with the case number on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), String>,
{
    let base = fnv1a(name.as_bytes());
    for case in 0..config.cases {
        let mut rng = TestRng::new(base ^ ((case as u64) << 32 | case as u64));
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed on case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

// ------------------------------------------------------------------ Macros

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Fails the surrounding property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in -2.5f64..2.5,
            flag in prop::bool::ANY,
            opt in prop::option::of(0u32..5),
            items in prop::collection::vec((0usize..4, 0.0f64..1.0), 1..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            let _: bool = flag; // the strategy must produce a real bool
            if let Some(v) = opt {
                prop_assert!(v < 5);
            }
            prop_assert!(!items.is_empty() && items.len() < 6);
            for (a, b) in items {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b), "b out of range: {}", b);
            }
        }

        #[test]
        fn maps_compose(v in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 9);
        }

        #[test]
        fn flat_maps_compose(
            (n, items) in (1usize..6).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0usize..10, n))
            }),
        ) {
            prop_assert_eq!(items.len(), n);
        }
    }
}
