//! A minimal JSON data format for the vendored serde shim. Implements the
//! three entry points this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over an in-memory [`Value`] tree.
//!
//! Behavior mirrors the real `serde_json` where the workspace can observe
//! it: externally-tagged enums, `null` for `None` and non-finite floats,
//! shortest round-trip float formatting (with a trailing `.0` for whole
//! floats so numbers re-parse into the same `Number` class).

use std::collections::VecDeque;
use std::fmt;

// ------------------------------------------------------------------- Error

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------- Value

/// A parsed JSON number, keeping the integer/float distinction.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float (always finite; non-finite serializes as `null`).
    Float(f64),
}

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

// ----------------------------------------------------------------- Writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

// ----------------------------------------------------------------- Parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<i64>().is_ok() {
                    let v: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
                    return Ok(Value::Number(Number::NegInt(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(Number::Float(v)))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ------------------------------------------------- Serializer (T -> Value)

struct ValueSerializer;

struct SeqCollector {
    items: Vec<Value>,
}

struct StructCollector {
    fields: Vec<(String, Value)>,
    /// For struct variants: wrap the finished object as `{variant: {...}}`.
    variant: Option<&'static str>,
}

struct MapCollector {
    entries: Vec<(String, Value)>,
}

impl serde::ser::SerializeSeq for SeqCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: serde::Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Array(self.items))
    }
}

impl serde::ser::SerializeStruct for StructCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: serde::Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<()> {
        self.fields
            .push((name.to_owned(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value> {
        let object = Value::Object(self.fields);
        Ok(match self.variant {
            Some(variant) => Value::Object(vec![(variant.to_owned(), object)]),
            None => object,
        })
    }
}

impl serde::ser::SerializeMap for MapCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: serde::Serialize + ?Sized, V: serde::Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<()> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            Value::Number(n) => {
                let mut s = String::new();
                write_number(&mut s, &n);
                s
            }
            other => {
                return Err(Error::new(format!(
                    "map key must be a string, got {other:?}"
                )))
            }
        };
        self.entries.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Object(self.entries))
    }
}

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqCollector;
    type SerializeStruct = StructCollector;
    type SerializeMap = MapCollector;

    fn serialize_bool(self, v: bool) -> Result<Value> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value> {
        Ok(if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        })
    }
    fn serialize_u64(self, v: u64) -> Result<Value> {
        Ok(Value::Number(Number::PosInt(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value> {
        // Mirror serde_json: NaN and infinities become null.
        Ok(if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        })
    }
    fn serialize_str(self, v: &str) -> Result<Value> {
        Ok(Value::String(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Value> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value> {
        Ok(Value::Null)
    }
    fn serialize_some<T: serde::Serialize + ?Sized>(self, value: &T) -> Result<Value> {
        value.serialize(self)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value> {
        Ok(Value::String(variant.to_owned()))
    }
    fn serialize_newtype_variant<T: serde::Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value> {
        Ok(Value::Object(vec![(
            variant.to_owned(),
            value.serialize(ValueSerializer)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqCollector> {
        Ok(SeqCollector {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructCollector> {
        Ok(StructCollector {
            fields: Vec::with_capacity(len),
            variant: None,
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<StructCollector> {
        Ok(StructCollector {
            fields: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapCollector> {
        Ok(MapCollector {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
}

// ----------------------------------------------- Deserializer (Value -> T)

struct ValueDeserializer {
    value: Value,
}

struct SeqDeser {
    items: VecDeque<Value>,
}

impl<'de> serde::de::SeqAccess<'de> for SeqDeser {
    type Error = Error;
    fn next_element<T: serde::Deserialize<'de>>(&mut self) -> Result<Option<T>> {
        match self.items.pop_front() {
            Some(value) => T::deserialize(ValueDeserializer { value }).map(Some),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

struct MapDeser {
    entries: VecDeque<(String, Value)>,
    pending: Option<Value>,
}

impl<'de> serde::de::MapAccess<'de> for MapDeser {
    type Error = Error;
    fn next_key(&mut self) -> Result<Option<String>> {
        match self.entries.pop_front() {
            Some((key, value)) => {
                self.pending = Some(value);
                Ok(Some(key))
            }
            None => Ok(None),
        }
    }
    fn next_value<T: serde::Deserialize<'de>>(&mut self) -> Result<T> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| Error::new("next_value called without next_key"))?;
        T::deserialize(ValueDeserializer { value })
    }
}

impl<'de> serde::Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_any<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(Number::PosInt(v)) => visitor.visit_u64(v),
            Value::Number(Number::NegInt(v)) => visitor.visit_i64(v),
            Value::Number(Number::Float(v)) => visitor.visit_f64(v),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDeser {
                items: items.into(),
            }),
            Value::Object(entries) => visitor.visit_map(MapDeser {
                entries: entries.into(),
                pending: None,
            }),
        }
    }

    fn deserialize_option<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.value {
            Value::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }
}

// -------------------------------------------------------------- Public API

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = value.serialize(ValueSerializer)?;
    let mut out = String::new();
    write_compact(&mut out, &tree);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = value.serialize(ValueSerializer)?;
    let mut out = String::new();
    write_pretty(&mut out, &tree, 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    T::deserialize(ValueDeserializer { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn float_precision_survives() {
        let v = 0.1f64 + 0.2f64;
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), v);
    }
}
