//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. The build environment cannot reach crates.io, so
//! there is no `syn`/`quote`; instead the item is parsed directly from the
//! `proc_macro` token stream and the impls are emitted as source strings.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields
//! - unit structs, newtype structs, tuple structs
//! - enums whose variants are unit, newtype, or struct-like
//!   (externally tagged JSON: `"Variant"` / `{"Variant": ...}`)
//!
//! Not supported: generics, `#[serde(...)]` attributes (accepted and
//! ignored so existing annotations do not break the build).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    ty: String,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(toks: &mut Tokens) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => panic!("serde shim derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Collects type tokens until a top-level comma, preserving token spacing
/// by round-tripping through a `TokenStream` (its `Display` is re-parseable).
fn collect_type(toks: &mut Tokens) -> String {
    let mut depth = 0i32;
    let mut collected: Vec<TokenTree> = Vec::new();
    while let Some(tt) = toks.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if depth == 0 => break,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        collected.push(toks.next().unwrap());
    }
    collected.into_iter().collect::<TokenStream>().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return fields;
        }
        let name = expect_ident(&mut toks, "field name");
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        let ty = collect_type(&mut toks);
        fields.push(Field { name, ty });
        toks.next(); // trailing comma, if any
    }
}

fn parse_tuple_len(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        pending = true;
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut toks, "variant name");
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let len = parse_tuple_len(g.stream());
                assert!(
                    len == 1,
                    "serde shim derive: tuple enum variants with {len} fields are not supported"
                );
                toks.next();
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        toks.next(); // trailing comma, if any
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`");
    if kw != "struct" && kw != "enum" {
        panic!("serde shim derive: unsupported item starting with `{kw}`");
    }
    let name = expect_ident(&mut toks, "type name");
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported");
        }
    }
    let body = if kw == "enum" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(parse_tuple_len(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            None => Body::Unit,
            other => panic!("serde shim derive: expected struct body, found {other:?}"),
        }
    };
    Input { name, body }
}

fn is_option(ty: &str) -> bool {
    let head = ty.trim_start();
    head.starts_with("Option ") || head.starts_with("Option<") || head == "Option"
}

// ---------------------------------------------------------------- Serialize

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => "serde::Serializer::serialize_unit(serializer)".to_owned(),
        Body::Named(fields) => {
            let mut out = format!(
                "let mut state = serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                let fname = &f.name;
                out.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut state, \"{fname}\", &self.{fname})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeStruct::end(state)");
            out
        }
        Body::Tuple(1) => {
            format!("serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)")
        }
        Body::Tuple(n) => {
            let mut out = format!(
                "let mut state = serde::Serializer::serialize_seq(serializer, Some({n}))?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "serde::ser::SerializeSeq::serialize_element(&mut state, &self.{i})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeSeq::end(state)");
            out
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {i}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__field0) => serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {i}u32, \"{vname}\", __field0),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut state = serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {i}u32, \"{vname}\", {})?;\n",
                            binders.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            let fname = &f.name;
                            arm.push_str(&format!(
                                "serde::ser::SerializeStruct::serialize_field(&mut state, \"{fname}\", {fname})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStruct::end(state)\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

// -------------------------------------------------------------- Deserialize

/// Emits a `visit_map` body that fills the named fields of `construct`
/// (a path like `Target` or `Target::Variant` is *not* used here; instead
/// the caller supplies the full constructor expression prefix).
fn gen_named_visit_map(target: &str, fields: &[Field]) -> String {
    let mut out = String::from(
        "fn visit_map<A: serde::de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {\n",
    );
    for (i, _) in fields.iter().enumerate() {
        out.push_str(&format!("let mut __field{i} = None;\n"));
    }
    out.push_str("while let Some(__key) = serde::de::MapAccess::next_key(&mut map)? {\nmatch __key.as_str() {\n");
    for (i, f) in fields.iter().enumerate() {
        let fname = &f.name;
        out.push_str(&format!(
            "\"{fname}\" => __field{i} = Some(serde::de::MapAccess::next_value(&mut map)?),\n"
        ));
    }
    out.push_str(
        "_ => { let _ignored: serde::de::IgnoredAny = serde::de::MapAccess::next_value(&mut map)?; }\n}\n}\n",
    );
    out.push_str(&format!("Ok({target} {{\n"));
    for (i, f) in fields.iter().enumerate() {
        let fname = &f.name;
        if is_option(&f.ty) {
            // Mirror serde: a missing `Option` field deserializes as `None`.
            out.push_str(&format!("{fname}: __field{i}.unwrap_or(None),\n"));
        } else {
            out.push_str(&format!(
                "{fname}: match __field{i} {{ Some(__v) => __v, None => return Err(serde::de::Error::missing_field(\"{fname}\")) }},\n"
            ));
        }
    }
    out.push_str("})\n}\n");
    out
}

fn gen_named_struct_de(name: &str, fields: &[Field]) -> String {
    let visit_map = gen_named_visit_map(name, fields);
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
         struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{ f.write_str(\"struct {name}\") }}\n\
         {visit_map}\
         }}\n\
         serde::Deserializer::deserialize_any(deserializer, __Visitor)\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    match &input.body {
        Body::Unit => format!(
            "#[automatically_derived]\n\
             impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
             struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{ f.write_str(\"unit struct {name}\") }}\n\
             fn visit_unit<E: serde::de::Error>(self) -> Result<Self::Value, E> {{ Ok({name}) }}\n\
             }}\n\
             serde::Deserializer::deserialize_any(deserializer, __Visitor)\n\
             }}\n\
             }}\n"
        ),
        Body::Named(fields) => gen_named_struct_de(name, fields),
        Body::Tuple(1) => format!(
            "#[automatically_derived]\n\
             impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
             Ok({name}(serde::Deserialize::deserialize(deserializer)?))\n\
             }}\n\
             }}\n"
        ),
        Body::Tuple(n) => {
            let mut elems = String::new();
            for i in 0..*n {
                elems.push_str(&format!(
                    "match serde::de::SeqAccess::next_element(&mut seq)? {{ Some(__v) => __v, None => return Err(serde::de::Error::custom(\"tuple struct {name} too short at element {i}\")) }},\n"
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{ f.write_str(\"tuple struct {name}\") }}\n\
                 fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {{\n\
                 Ok({name}(\n{elems}))\n\
                 }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_any(deserializer, __Visitor)\n\
                 }}\n\
                 }}\n"
            )
        }
        Body::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let expected = variant_names.join(", ");

            // Helper structs (fn-body-local) for struct variant payloads.
            let mut helpers = String::new();
            for (i, v) in variants.iter().enumerate() {
                if let VariantKind::Struct(fields) = &v.kind {
                    let helper = format!("__Body{i}");
                    helpers.push_str(&format!("struct {helper} {{\n"));
                    for f in fields {
                        helpers.push_str(&format!("{}: {},\n", f.name, f.ty));
                    }
                    helpers.push_str("}\n");
                    helpers.push_str(&gen_named_struct_de(&helper, fields));
                }
            }

            let mut str_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    str_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                }
            }

            let mut map_arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => map_arms.push_str(&format!(
                        "\"{vname}\" => {{ let _ignored: serde::de::IgnoredAny = serde::de::MapAccess::next_value(&mut map)?; Ok({name}::{vname}) }}\n"
                    )),
                    VariantKind::Newtype => map_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(serde::de::MapAccess::next_value(&mut map)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let moves: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{0}: __body.{0}", f.name))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __body: __Body{i} = serde::de::MapAccess::next_value(&mut map)?; Ok({name}::{vname} {{ {} }}) }}\n",
                            moves.join(", ")
                        ));
                    }
                }
            }

            format!(
                "#[automatically_derived]\n\
                 impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 {helpers}\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{ f.write_str(\"enum {name}\") }}\n\
                 fn visit_str<E: serde::de::Error>(self, __v: &str) -> Result<Self::Value, E> {{\n\
                 match __v {{\n\
                 {str_arms}\
                 _ => Err(serde::de::Error::unknown_variant(__v, &[{expected}])),\n\
                 }}\n\
                 }}\n\
                 fn visit_map<A: serde::de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {{\n\
                 let __key = match serde::de::MapAccess::next_key(&mut map)? {{\n\
                 Some(__k) => __k,\n\
                 None => return Err(serde::de::Error::custom(\"expected a variant tag\")),\n\
                 }};\n\
                 let __value = match __key.as_str() {{\n\
                 {map_arms}\
                 _ => Err(serde::de::Error::unknown_variant(&__key, &[{expected}])),\n\
                 }}?;\n\
                 while serde::de::MapAccess::next_key(&mut map)?.is_some() {{\n\
                 let _ignored: serde::de::IgnoredAny = serde::de::MapAccess::next_value(&mut map)?;\n\
                 }}\n\
                 Ok(__value)\n\
                 }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_any(deserializer, __Visitor)\n\
                 }}\n\
                 }}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_serialize(&parsed);
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid Serialize impl: {e}"))
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_deserialize(&parsed);
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid Deserialize impl: {e}"))
}
