//! Property tests for the network substrate: cost-model orderings and
//! shortest-path correctness on random connected graphs.

use proptest::prelude::*;
use pubsub_netsim::{
    all_pairs_dists, alm_tree_cost, cost_events, dijkstra, multicast_tree_cost,
    multicast_tree_cost_flat, sparse_mode_cost, sparse_mode_cost_flat, unicast_and_tree_cost,
    unicast_cost, unicast_cost_flat, CostScratch, DijkstraScratch, FlatNet, Graph, NodeId,
    SptTable, TransitStubConfig, WaxmanConfig,
};

/// A random connected graph: spanning tree plus extra edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..24)
        .prop_flat_map(|n| {
            let tree = prop::collection::vec((0usize..1000, 0.5f64..20.0), n - 1);
            let extra = prop::collection::vec((0usize..1000, 0usize..1000, 0.5f64..20.0), 0..20);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut g = Graph::new(n);
            for (i, (r, c)) in tree.into_iter().enumerate() {
                let child = i + 1;
                let parent = r % child;
                g.add_edge(NodeId(child as u32), NodeId(parent as u32), c)
                    .unwrap();
            }
            for (a, b, c) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32), c).unwrap();
                }
            }
            g
        })
}

fn receivers_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..1000, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_all_pairs_table(g in graph_strategy()) {
        let apsp = all_pairs_dists(&g, Some(2));
        for (s, row) in apsp.iter().enumerate().take(g.node_count()) {
            let sp = dijkstra(&g, NodeId(s as u32));
            for (t, &d) in row.iter().enumerate().take(g.node_count()) {
                prop_assert!((sp.dist(NodeId(t as u32)) - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flat_dijkstra_equals_node_dijkstra_bitwise(g in graph_strategy()) {
        // The CSR engine must reproduce the node-based walk exactly —
        // distances bit-for-bit and the same SPT parent on ties — because
        // the broker's byte-identical-costs guarantee rests on it.
        let net = FlatNet::compile(&g);
        let mut scratch = DijkstraScratch::new();
        for s in 0..g.node_count() {
            let source = NodeId(s as u32);
            let flat = net.shortest_paths(source, &mut scratch);
            let node = dijkstra(&g, source);
            for t in 0..g.node_count() {
                let v = NodeId(t as u32);
                prop_assert_eq!(flat.dist(v).to_bits(), node.dist(v).to_bits(),
                    "dist bits differ at source {} target {}", source, v);
                prop_assert_eq!(flat.parent(v), node.parent(v),
                    "parent differs at source {} target {}", source, v);
            }
        }
    }

    #[test]
    fn flat_costs_equal_node_costs_bitwise(
        g in graph_strategy(),
        recv in receivers_strategy(),
        src in 0usize..1000,
    ) {
        let n = g.node_count();
        let source = NodeId((src % n) as u32);
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let spt = dijkstra(&g, source);
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[source], Some(1));
        let view = table.view(source).unwrap();
        let mut scratch = CostScratch::new();

        let uni = unicast_cost(&spt, &receivers);
        let tree = multicast_tree_cost(&spt, &receivers);
        prop_assert_eq!(unicast_cost_flat(view, &receivers, &mut scratch).to_bits(), uni.to_bits());
        prop_assert_eq!(
            multicast_tree_cost_flat(view, &receivers, &mut scratch).to_bits(),
            tree.to_bits()
        );
        let pair = unicast_and_tree_cost(view, &receivers, &mut scratch);
        prop_assert_eq!(pair.unicast.to_bits(), uni.to_bits());
        prop_assert_eq!(pair.tree.to_bits(), tree.to_bits());

        let sparse = sparse_mode_cost(&spt, 1.25, &receivers);
        prop_assert_eq!(
            sparse_mode_cost_flat(view, 1.25, &receivers, &mut scratch).to_bits(),
            sparse.to_bits()
        );
    }

    #[test]
    fn batched_cost_events_equal_per_call_costs(
        g in graph_strategy(),
        sets in prop::collection::vec(receivers_strategy(), 1..8),
    ) {
        let n = g.node_count();
        let sets: Vec<Vec<NodeId>> = sets
            .into_iter()
            .map(|s| s.into_iter().map(|r| NodeId((r % n) as u32)).collect())
            .collect();
        let spt = dijkstra(&g, NodeId(0));
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        let mut scratch = CostScratch::new();
        let batched = cost_events(view, sets.iter().map(Vec::as_slice), &mut scratch);
        prop_assert_eq!(batched.len(), sets.len());
        for (set, pair) in sets.iter().zip(&batched) {
            prop_assert_eq!(pair.unicast.to_bits(), unicast_cost(&spt, set).to_bits());
            prop_assert_eq!(pair.tree.to_bits(), multicast_tree_cost(&spt, set).to_bits());
        }
    }

    #[test]
    fn spt_table_rows_match_dijkstra_for_any_thread_count(
        g in graph_strategy(),
        srcs in prop::collection::vec(0usize..1000, 1..6),
        threads in 1usize..5,
    ) {
        let n = g.node_count();
        let sources: Vec<NodeId> = srcs.iter().map(|&s| NodeId((s % n) as u32)).collect();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &sources, Some(threads));
        for &s in &sources {
            let view = table.view(s).unwrap();
            let oracle = dijkstra(&g, s);
            for t in 0..n {
                let v = NodeId(t as u32);
                prop_assert_eq!(view.dist(v).to_bits(), oracle.dist(v).to_bits());
                prop_assert_eq!(view.parent(v), oracle.parent(v));
            }
        }
    }

    #[test]
    fn cost_models_are_ordered(g in graph_strategy(), recv in receivers_strategy(), src in 0usize..1000) {
        let n = g.node_count();
        let source = NodeId((src % n) as u32);
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let spt = dijkstra(&g, source);
        let uni = unicast_cost(&spt, &receivers);
        let multi = multicast_tree_cost(&spt, &receivers);
        let alm = alm_tree_cost(&g, source, &receivers);
        // Both multicast flavors beat unicast (they share work; unicast
        // shares nothing). Dense-mode and ALM are *incomparable* in
        // general: ALM may relay through a member that the shortest-path
        // tree reaches by a divergent branch.
        prop_assert!(multi <= uni + 1e-9, "multi={multi} uni={uni}");
        prop_assert!(alm <= uni + 1e-9, "alm={alm} uni={uni}");
        prop_assert!(multi >= 0.0);
    }

    #[test]
    fn multicast_tree_cost_is_monotone_in_receivers(
        g in graph_strategy(),
        recv in receivers_strategy(),
    ) {
        let n = g.node_count();
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let spt = dijkstra(&g, NodeId(0));
        let all = multicast_tree_cost(&spt, &receivers);
        for k in 0..receivers.len() {
            let subset = &receivers[..k];
            prop_assert!(multicast_tree_cost(&spt, subset) <= all + 1e-9);
        }
    }

    #[test]
    fn singleton_multicast_equals_unicast(g in graph_strategy(), r in 0usize..1000) {
        let n = g.node_count();
        let target = [NodeId((r % n) as u32)];
        let spt = dijkstra(&g, NodeId(0));
        prop_assert!((multicast_tree_cost(&spt, &target) - unicast_cost(&spt, &target)).abs() < 1e-9);
    }

    #[test]
    fn topologies_are_connected_for_any_seed(seed in 0u64..500) {
        let topo = TransitStubConfig::tiny().generate(seed).unwrap();
        prop_assert!(topo.graph().is_connected());
    }

    #[test]
    fn waxman_topologies_are_connected_for_any_seed(seed in 0u64..200) {
        let topo = WaxmanConfig {
            nodes: 40,
            alpha: 0.08,
            beta: 0.3,
            cost_scale: 10.0,
        }
        .generate(seed)
        .unwrap();
        prop_assert!(topo.graph().is_connected());
        prop_assert_eq!(topo.stub_nodes().len(), 40);
    }

    #[test]
    fn sparse_mode_properties(g in graph_strategy(), recv in receivers_strategy(), rp in 0usize..1000) {
        let n = g.node_count();
        let rp = NodeId((rp % n) as u32);
        let source = NodeId(0);
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let src_spt = dijkstra(&g, source);
        let rp_spt = dijkstra(&g, rp);
        let sparse = sparse_mode_cost(&rp_spt, src_spt.dist(rp), &receivers);
        let dense = multicast_tree_cost(&src_spt, &receivers);
        prop_assert!(sparse >= 0.0);
        // RP at the publisher collapses sparse mode to dense mode.
        let collapsed = sparse_mode_cost(&src_spt, 0.0, &receivers);
        prop_assert!((collapsed - dense).abs() < 1e-9);
        // Empty receiver sets are free.
        prop_assert_eq!(sparse_mode_cost(&rp_spt, src_spt.dist(rp), &[]), 0.0);
    }

    #[test]
    fn shortest_path_reconstruction_matches_distance(g in graph_strategy(), t in 0usize..1000) {
        let target = NodeId((t % g.node_count()) as u32);
        let sp = dijkstra(&g, NodeId(0));
        let path = sp.path_to(target).unwrap();
        prop_assert_eq!(path[0], NodeId(0));
        prop_assert_eq!(*path.last().unwrap(), target);
        // Summing the cheapest parallel edge along the path reproduces the
        // distance.
        let mut total = 0.0;
        for w in path.windows(2) {
            let hop = g
                .neighbors(w[0])
                .filter(|&(n, _)| n == w[1])
                .map(|(_, c)| c)
                .fold(f64::INFINITY, f64::min);
            total += hop;
        }
        prop_assert!((total - sp.dist(target)).abs() < 1e-9);
    }
}
