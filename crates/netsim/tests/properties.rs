//! Property tests for the network substrate: cost-model orderings and
//! shortest-path correctness on random connected graphs.

use proptest::prelude::*;
use pubsub_netsim::{
    all_pairs_floyd_warshall, alm_tree_cost, dijkstra, multicast_tree_cost, sparse_mode_cost,
    unicast_cost, Graph, NodeId, TransitStubConfig, WaxmanConfig,
};

/// A random connected graph: spanning tree plus extra edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..24)
        .prop_flat_map(|n| {
            let tree = prop::collection::vec((0usize..1000, 0.5f64..20.0), n - 1);
            let extra = prop::collection::vec((0usize..1000, 0usize..1000, 0.5f64..20.0), 0..20);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut g = Graph::new(n);
            for (i, (r, c)) in tree.into_iter().enumerate() {
                let child = i + 1;
                let parent = r % child;
                g.add_edge(NodeId(child as u32), NodeId(parent as u32), c)
                    .unwrap();
            }
            for (a, b, c) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32), c).unwrap();
                }
            }
            g
        })
}

fn receivers_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..1000, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_floyd_warshall(g in graph_strategy()) {
        let apsp = all_pairs_floyd_warshall(&g);
        for (s, row) in apsp.iter().enumerate().take(g.node_count()) {
            let sp = dijkstra(&g, NodeId(s as u32));
            for (t, &d) in row.iter().enumerate().take(g.node_count()) {
                prop_assert!((sp.dist(NodeId(t as u32)) - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cost_models_are_ordered(g in graph_strategy(), recv in receivers_strategy(), src in 0usize..1000) {
        let n = g.node_count();
        let source = NodeId((src % n) as u32);
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let spt = dijkstra(&g, source);
        let uni = unicast_cost(&spt, &receivers);
        let multi = multicast_tree_cost(&spt, &receivers);
        let alm = alm_tree_cost(&g, source, &receivers);
        // Both multicast flavors beat unicast (they share work; unicast
        // shares nothing). Dense-mode and ALM are *incomparable* in
        // general: ALM may relay through a member that the shortest-path
        // tree reaches by a divergent branch.
        prop_assert!(multi <= uni + 1e-9, "multi={multi} uni={uni}");
        prop_assert!(alm <= uni + 1e-9, "alm={alm} uni={uni}");
        prop_assert!(multi >= 0.0);
    }

    #[test]
    fn multicast_tree_cost_is_monotone_in_receivers(
        g in graph_strategy(),
        recv in receivers_strategy(),
    ) {
        let n = g.node_count();
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let spt = dijkstra(&g, NodeId(0));
        let all = multicast_tree_cost(&spt, &receivers);
        for k in 0..receivers.len() {
            let subset = &receivers[..k];
            prop_assert!(multicast_tree_cost(&spt, subset) <= all + 1e-9);
        }
    }

    #[test]
    fn singleton_multicast_equals_unicast(g in graph_strategy(), r in 0usize..1000) {
        let n = g.node_count();
        let target = [NodeId((r % n) as u32)];
        let spt = dijkstra(&g, NodeId(0));
        prop_assert!((multicast_tree_cost(&spt, &target) - unicast_cost(&spt, &target)).abs() < 1e-9);
    }

    #[test]
    fn topologies_are_connected_for_any_seed(seed in 0u64..500) {
        let topo = TransitStubConfig::tiny().generate(seed).unwrap();
        prop_assert!(topo.graph().is_connected());
    }

    #[test]
    fn waxman_topologies_are_connected_for_any_seed(seed in 0u64..200) {
        let topo = WaxmanConfig {
            nodes: 40,
            alpha: 0.08,
            beta: 0.3,
            cost_scale: 10.0,
        }
        .generate(seed)
        .unwrap();
        prop_assert!(topo.graph().is_connected());
        prop_assert_eq!(topo.stub_nodes().len(), 40);
    }

    #[test]
    fn sparse_mode_properties(g in graph_strategy(), recv in receivers_strategy(), rp in 0usize..1000) {
        let n = g.node_count();
        let rp = NodeId((rp % n) as u32);
        let source = NodeId(0);
        let receivers: Vec<NodeId> = recv.iter().map(|&r| NodeId((r % n) as u32)).collect();
        let src_spt = dijkstra(&g, source);
        let rp_spt = dijkstra(&g, rp);
        let sparse = sparse_mode_cost(&rp_spt, src_spt.dist(rp), &receivers);
        let dense = multicast_tree_cost(&src_spt, &receivers);
        prop_assert!(sparse >= 0.0);
        // RP at the publisher collapses sparse mode to dense mode.
        let collapsed = sparse_mode_cost(&src_spt, 0.0, &receivers);
        prop_assert!((collapsed - dense).abs() < 1e-9);
        // Empty receiver sets are free.
        prop_assert_eq!(sparse_mode_cost(&rp_spt, src_spt.dist(rp), &[]), 0.0);
    }

    #[test]
    fn shortest_path_reconstruction_matches_distance(g in graph_strategy(), t in 0usize..1000) {
        let target = NodeId((t % g.node_count()) as u32);
        let sp = dijkstra(&g, NodeId(0));
        let path = sp.path_to(target).unwrap();
        prop_assert_eq!(path[0], NodeId(0));
        prop_assert_eq!(*path.last().unwrap(), target);
        // Summing the cheapest parallel edge along the path reproduces the
        // distance.
        let mut total = 0.0;
        for w in path.windows(2) {
            let hop = g
                .neighbors(w[0])
                .filter(|&(n, _)| n == w[1])
                .map(|(_, c)| c)
                .fold(f64::INFINITY, f64::min);
            total += hop;
        }
        prop_assert!((total - sp.dist(target)).abs() < 1e-9);
    }
}
