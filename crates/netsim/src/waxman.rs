//! Waxman flat random topologies (extension).
//!
//! Zegura, Calvert and Bhattacharjee's "How to model an internetwork"
//! (the paper's topology reference [17]) contrasts *hierarchical*
//! transit-stub graphs with *flat* random graphs, of which Waxman's is
//! the canonical model: nodes scattered uniformly in the unit square,
//! edge probability decaying with distance,
//! `P(u,v) = α·exp(−d(u,v)/(β·L))`. A flat topology has no shared trunk
//! links for multicast to exploit, which makes it the natural control
//! for the evaluation's hierarchical testbed (see the
//! `ablation_topology` harness).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Graph, NetError, NodeId, NodeRole, StubInfo, Topology};

/// Configuration of the Waxman generator. Passive data: public fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Waxman `α` — overall edge density, in `(0, 1]`.
    pub alpha: f64,
    /// Waxman `β` — how slowly probability decays with distance, in
    /// `(0, 1]`.
    pub beta: f64,
    /// Edge cost per unit of Euclidean distance (plus a small floor so
    /// costs stay positive).
    pub cost_scale: f64,
}

impl WaxmanConfig {
    /// A flat topology sized like the paper's testbed (~600 nodes) with
    /// classic Waxman parameters.
    pub fn riabov_sized() -> Self {
        WaxmanConfig {
            nodes: 615,
            alpha: 0.05,
            beta: 0.3,
            cost_scale: 40.0,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.nodes == 0 {
            return Err(NetError::InvalidConfig {
                parameter: "nodes",
                constraint: ">= 1",
            });
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(NetError::InvalidConfig {
                    parameter: if name == "alpha" { "alpha" } else { "beta" },
                    constraint: "0 < value <= 1",
                });
            }
        }
        if !(self.cost_scale > 0.0 && self.cost_scale.is_finite()) {
            return Err(NetError::InvalidConfig {
                parameter: "cost_scale",
                constraint: "positive and finite",
            });
        }
        Ok(())
    }

    /// Generates a connected flat topology deterministically from `seed`.
    ///
    /// Connectivity is guaranteed by first linking every node to its
    /// nearest already-placed neighbor (a geometric spanning tree), then
    /// adding Waxman edges on top.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for out-of-range parameters.
    pub fn generate(&self, seed: u64) -> Result<Topology, NetError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let positions: Vec<(f64, f64)> = (0..self.nodes)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let dist = |a: usize, b: usize| -> f64 {
            let (ax, ay) = positions[a];
            let (bx, by) = positions[b];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        };
        let cost = |d: f64| (d * self.cost_scale).max(0.1);

        let mut graph = Graph::new(self.nodes);
        // Geometric spanning tree: node i links to its nearest j < i.
        for i in 1..self.nodes {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for j in 0..i {
                let d = dist(i, j);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            graph.add_edge(NodeId(i as u32), NodeId(best as u32), cost(best_d))?;
        }
        // Waxman edges. L = sqrt(2) is the unit-square diameter.
        let l = std::f64::consts::SQRT_2;
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let d = dist(i, j);
                let p = self.alpha * (-d / (self.beta * l)).exp();
                if rng.gen::<f64>() < p {
                    graph.add_edge(NodeId(i as u32), NodeId(j as u32), cost(d))?;
                }
            }
        }
        Ok(Topology::flat(graph))
    }
}

impl Topology {
    /// Wraps a raw graph as a *flat* topology: every node is a member of
    /// one all-encompassing stub network in block 0 (there is no
    /// backbone). Subscription generators that spread load over blocks
    /// and stubs see a single block with a single stub.
    pub fn flat(graph: Graph) -> Topology {
        let nodes: Vec<NodeId> = graph.node_ids().collect();
        let roles = vec![NodeRole::Stub { block: 0, stub: 0 }; graph.node_count()];
        let stubs = if nodes.is_empty() {
            Vec::new()
        } else {
            vec![StubInfo {
                block: 0,
                transit: nodes[0],
                nodes: nodes.clone(),
            }]
        };
        Topology::from_parts(graph, roles, Vec::new(), nodes, stubs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, multicast_tree_cost, unicast_cost};

    #[test]
    fn generates_connected_deterministic_topologies() {
        let cfg = WaxmanConfig {
            nodes: 80,
            alpha: 0.1,
            beta: 0.3,
            cost_scale: 10.0,
        };
        let a = cfg.generate(3).unwrap();
        assert!(a.graph().is_connected());
        assert_eq!(a.graph().node_count(), 80);
        let b = cfg.generate(3).unwrap();
        assert_eq!(a.graph().total_cost(), b.graph().total_cost());
        let c = cfg.generate(4).unwrap();
        assert_ne!(a.graph().total_cost(), c.graph().total_cost());
    }

    #[test]
    fn flat_topology_has_single_stub_and_no_backbone() {
        let topo = WaxmanConfig {
            nodes: 30,
            alpha: 0.2,
            beta: 0.3,
            cost_scale: 5.0,
        }
        .generate(1)
        .unwrap();
        assert!(topo.transit_nodes().is_empty());
        assert_eq!(topo.stubs().len(), 1);
        assert_eq!(topo.stub_nodes().len(), 30);
        assert_eq!(topo.stubs_of_block(0), vec![0]);
        for n in topo.graph().node_ids() {
            assert_eq!(topo.block_of(n), 0);
            assert!(matches!(topo.role(n), NodeRole::Stub { block: 0, stub: 0 }));
        }
        let stats = topo.stats();
        assert_eq!(stats.blocks, 1);
        assert!(stats.connected);
    }

    #[test]
    fn waxman_edges_grow_with_alpha() {
        let base = WaxmanConfig {
            nodes: 100,
            alpha: 0.05,
            beta: 0.3,
            cost_scale: 10.0,
        };
        let dense = WaxmanConfig {
            alpha: 0.5,
            ..base.clone()
        };
        let sparse_edges = base.generate(7).unwrap().graph().edge_count();
        let dense_edges = dense.generate(7).unwrap().graph().edge_count();
        assert!(dense_edges > sparse_edges);
    }

    #[test]
    fn multicast_still_beats_unicast_on_flat_graphs() {
        let topo = WaxmanConfig::riabov_sized().generate(11).unwrap();
        let spt = dijkstra(topo.graph(), NodeId(0));
        let receivers: Vec<NodeId> = (1..60).map(NodeId).collect();
        assert!(multicast_tree_cost(&spt, &receivers) <= unicast_cost(&spt, &receivers));
    }

    #[test]
    fn validation() {
        let mut cfg = WaxmanConfig::riabov_sized();
        cfg.nodes = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = WaxmanConfig::riabov_sized();
        cfg.alpha = 0.0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = WaxmanConfig::riabov_sized();
        cfg.beta = 1.5;
        assert!(cfg.generate(0).is_err());
        let mut cfg = WaxmanConfig::riabov_sized();
        cfg.cost_scale = f64::INFINITY;
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn empty_flat_topology() {
        let topo = Topology::flat(Graph::new(0));
        assert_eq!(topo.stubs().len(), 0);
        assert_eq!(topo.stats().nodes, 0);
    }
}
