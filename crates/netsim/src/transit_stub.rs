//! GT-ITM-style transit-stub topology generation (paper §5, Figure 3).
//!
//! The paper generated its 600-node evaluation network with the GT-ITM
//! package: "three transit blocks ... with an average of five transit nodes
//! in each block. Each transit node was connected to two stubs on average,
//! each stub having an average of twenty nodes." This module reimplements
//! that hierarchical model (Zegura, Calvert, Bhattacharjee, INFOCOM 1996):
//! random connected graphs inside each transit block and each stub, a
//! complete top-level graph between blocks, and one gateway link per stub.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Graph, NetError, NodeId};

/// Role of a node in a transit-stub topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeRole {
    /// A backbone router inside transit block `block`.
    Transit {
        /// Index of the transit block.
        block: usize,
    },
    /// A node of stub network `stub` (index into [`Topology::stubs`]).
    Stub {
        /// Index of the transit block the stub hangs off.
        block: usize,
        /// Index of the stub in [`Topology::stubs`].
        stub: usize,
    },
}

/// A stub network: a leaf domain attached to one transit node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StubInfo {
    /// Transit block this stub belongs to.
    pub block: usize,
    /// The transit node the stub's gateway link attaches to.
    pub transit: NodeId,
    /// Member nodes of the stub.
    pub nodes: Vec<NodeId>,
}

/// Configuration of the transit-stub generator. Passive data: all fields
/// are public.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit blocks (the paper uses 3).
    pub transit_blocks: usize,
    /// Mean transit nodes per block (the paper uses 5).
    pub transit_nodes_per_block: usize,
    /// Mean stubs per transit node (the paper uses 2).
    pub stubs_per_transit: usize,
    /// Mean nodes per stub (the paper uses 20).
    pub stub_size: usize,
    /// Relative jitter applied to every mean count, in `[0, 1)`: an actual
    /// count is drawn uniformly from `mean·(1±jitter)` (at least 1).
    pub size_jitter: f64,
    /// Probability of each extra (non-spanning-tree) edge inside a transit
    /// block, per node pair.
    pub extra_transit_edge_prob: f64,
    /// Probability of each extra edge inside a stub, per node pair.
    pub extra_stub_edge_prob: f64,
    /// Cost range (lo, hi) of intra-stub links.
    pub intra_stub_cost: (f64, f64),
    /// Cost range of stub-gateway-to-transit links.
    pub transit_stub_cost: (f64, f64),
    /// Cost range of links inside a transit block.
    pub intra_transit_cost: (f64, f64),
    /// Cost range of links between transit blocks.
    pub inter_block_cost: (f64, f64),
}

impl TransitStubConfig {
    /// The paper's evaluation network: 3 transit blocks × ~5 transit nodes,
    /// 2 stubs per transit node, ~20 nodes per stub — about 600 nodes.
    /// GT-ITM routing-policy edge weights are modeled as uniform costs with
    /// stub links cheapest and inter-block links most expensive.
    pub fn riabov() -> Self {
        TransitStubConfig {
            transit_blocks: 3,
            transit_nodes_per_block: 5,
            stubs_per_transit: 2,
            stub_size: 20,
            size_jitter: 0.3,
            extra_transit_edge_prob: 0.4,
            extra_stub_edge_prob: 0.05,
            intra_stub_cost: (1.0, 5.0),
            transit_stub_cost: (5.0, 10.0),
            intra_transit_cost: (10.0, 20.0),
            inter_block_cost: (20.0, 40.0),
        }
    }

    /// A miniature topology (one block, small stubs) for fast tests.
    pub fn tiny() -> Self {
        TransitStubConfig {
            transit_blocks: 1,
            transit_nodes_per_block: 2,
            stubs_per_transit: 1,
            stub_size: 4,
            size_jitter: 0.0,
            extra_transit_edge_prob: 0.0,
            extra_stub_edge_prob: 0.0,
            intra_stub_cost: (1.0, 2.0),
            transit_stub_cost: (2.0, 4.0),
            intra_transit_cost: (4.0, 8.0),
            inter_block_cost: (8.0, 16.0),
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        fn check(
            ok: bool,
            parameter: &'static str,
            constraint: &'static str,
        ) -> Result<(), NetError> {
            if ok {
                Ok(())
            } else {
                Err(NetError::InvalidConfig {
                    parameter,
                    constraint,
                })
            }
        }
        check(self.transit_blocks >= 1, "transit_blocks", ">= 1")?;
        check(
            self.transit_nodes_per_block >= 1,
            "transit_nodes_per_block",
            ">= 1",
        )?;
        check(self.stubs_per_transit >= 1, "stubs_per_transit", ">= 1")?;
        check(self.stub_size >= 1, "stub_size", ">= 1")?;
        check(
            (0.0..1.0).contains(&self.size_jitter),
            "size_jitter",
            "0 <= jitter < 1",
        )?;
        check(
            (0.0..=1.0).contains(&self.extra_transit_edge_prob),
            "extra_transit_edge_prob",
            "0 <= p <= 1",
        )?;
        check(
            (0.0..=1.0).contains(&self.extra_stub_edge_prob),
            "extra_stub_edge_prob",
            "0 <= p <= 1",
        )?;
        for (name, &(lo, hi)) in [
            ("intra_stub_cost", &self.intra_stub_cost),
            ("transit_stub_cost", &self.transit_stub_cost),
            ("intra_transit_cost", &self.intra_transit_cost),
            ("inter_block_cost", &self.inter_block_cost),
        ] {
            check(
                lo > 0.0 && hi >= lo && hi.is_finite(),
                name,
                "0 < lo <= hi < inf",
            )?;
        }
        Ok(())
    }

    /// Generates a topology deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for out-of-range parameters.
    pub fn generate(&self, seed: u64) -> Result<Topology, NetError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut builder = Builder {
            nodes: Vec::new(),
            edges: Vec::new(),
        };
        let mut transit_by_block: Vec<Vec<NodeId>> = Vec::new();
        let mut stubs: Vec<StubInfo> = Vec::new();

        // Transit blocks: connected random graphs of transit nodes.
        for block in 0..self.transit_blocks {
            let count = jittered(self.transit_nodes_per_block, self.size_jitter, &mut rng);
            let ids: Vec<NodeId> = (0..count)
                .map(|_| builder.add_node(NodeRole::Transit { block }))
                .collect();
            builder.connect_randomly(
                &ids,
                self.extra_transit_edge_prob,
                self.intra_transit_cost,
                &mut rng,
            );
            transit_by_block.push(ids);
        }
        // Top level: complete graph over blocks, one link per block pair.
        for b1 in 0..self.transit_blocks {
            for b2 in (b1 + 1)..self.transit_blocks {
                let a = *pick(&transit_by_block[b1], &mut rng);
                let b = *pick(&transit_by_block[b2], &mut rng);
                builder
                    .edges
                    .push((a, b, sample(self.inter_block_cost, &mut rng)));
            }
        }
        // Stubs.
        for (block, transit_ids) in transit_by_block.iter().enumerate() {
            for &transit in transit_ids {
                let n_stubs = jittered(self.stubs_per_transit, self.size_jitter, &mut rng);
                for _ in 0..n_stubs {
                    let stub_idx = stubs.len();
                    let count = jittered(self.stub_size, self.size_jitter, &mut rng);
                    let ids: Vec<NodeId> = (0..count)
                        .map(|_| {
                            builder.add_node(NodeRole::Stub {
                                block,
                                stub: stub_idx,
                            })
                        })
                        .collect();
                    builder.connect_randomly(
                        &ids,
                        self.extra_stub_edge_prob,
                        self.intra_stub_cost,
                        &mut rng,
                    );
                    let gateway = *pick(&ids, &mut rng);
                    builder.edges.push((
                        gateway,
                        transit,
                        sample(self.transit_stub_cost, &mut rng),
                    ));
                    stubs.push(StubInfo {
                        block,
                        transit,
                        nodes: ids,
                    });
                }
            }
        }

        let mut graph = Graph::new(builder.nodes.len());
        for (a, b, c) in &builder.edges {
            graph.add_edge(*a, *b, *c)?;
        }
        let transit_nodes = transit_by_block.into_iter().flatten().collect();
        let stub_nodes = stubs.iter().flat_map(|s| s.nodes.iter().copied()).collect();
        Ok(Topology {
            graph,
            roles: builder.nodes,
            transit_nodes,
            stub_nodes,
            stubs,
        })
    }
}

struct Builder {
    nodes: Vec<NodeRole>,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl Builder {
    fn add_node(&mut self, role: NodeRole) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(role);
        id
    }

    /// Random spanning tree plus Bernoulli extra edges over `ids`.
    fn connect_randomly(
        &mut self,
        ids: &[NodeId],
        extra_prob: f64,
        cost: (f64, f64),
        rng: &mut ChaCha8Rng,
    ) {
        for i in 1..ids.len() {
            let j = rng.gen_range(0..i);
            self.edges.push((ids[i], ids[j], sample(cost, rng)));
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if rng.gen::<f64>() < extra_prob {
                    self.edges.push((ids[i], ids[j], sample(cost, rng)));
                }
            }
        }
    }
}

fn jittered(mean: usize, jitter: f64, rng: &mut ChaCha8Rng) -> usize {
    if jitter == 0.0 {
        return mean.max(1);
    }
    let lo = (mean as f64 * (1.0 - jitter)).round() as usize;
    let hi = (mean as f64 * (1.0 + jitter)).round() as usize;
    rng.gen_range(lo..=hi.max(lo)).max(1)
}

fn sample((lo, hi): (f64, f64), rng: &mut ChaCha8Rng) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut ChaCha8Rng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A generated transit-stub topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    graph: Graph,
    roles: Vec<NodeRole>,
    transit_nodes: Vec<NodeId>,
    stub_nodes: Vec<NodeId>,
    stubs: Vec<StubInfo>,
}

impl Topology {
    /// Assembles a topology from parts (used by the flat/Waxman
    /// constructors; invariants are the caller's responsibility).
    pub(crate) fn from_parts(
        graph: Graph,
        roles: Vec<NodeRole>,
        transit_nodes: Vec<NodeId>,
        stub_nodes: Vec<NodeId>,
        stubs: Vec<StubInfo>,
    ) -> Topology {
        Topology {
            graph,
            roles,
            transit_nodes,
            stub_nodes,
            stubs,
        }
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The role of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.0 as usize]
    }

    /// All transit (backbone) nodes, grouped by block in id order.
    pub fn transit_nodes(&self) -> &[NodeId] {
        &self.transit_nodes
    }

    /// All stub (leaf-domain) nodes.
    pub fn stub_nodes(&self) -> &[NodeId] {
        &self.stub_nodes
    }

    /// All stub networks.
    pub fn stubs(&self) -> &[StubInfo] {
        &self.stubs
    }

    /// The transit block a node belongs to.
    pub fn block_of(&self, node: NodeId) -> usize {
        match self.role(node) {
            NodeRole::Transit { block } | NodeRole::Stub { block, .. } => block,
        }
    }

    /// Transit nodes of one block.
    pub fn transit_nodes_of_block(&self, block: usize) -> Vec<NodeId> {
        self.transit_nodes
            .iter()
            .copied()
            .filter(|&n| self.block_of(n) == block)
            .collect()
    }

    /// Stub networks hanging off one block.
    pub fn stubs_of_block(&self, block: usize) -> Vec<usize> {
        (0..self.stubs.len())
            .filter(|&i| self.stubs[i].block == block)
            .collect()
    }

    /// Renders the topology in Graphviz DOT format (what the paper's
    /// Figure 3 shows as a picture). Transit nodes are boxes grouped in
    /// per-block clusters; stub nodes are small circles; edge lengths are
    /// not to scale but costs are attached as labels on backbone links.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph topology {\n  overlap=false;\n  splines=true;\n");
        let blocks = self
            .stubs
            .iter()
            .map(|s| s.block)
            .max()
            .map_or(0, |b| b + 1);
        for b in 0..blocks {
            let _ = writeln!(out, "  subgraph cluster_block{b} {{");
            let _ = writeln!(out, "    label=\"transit block {b}\";");
            for &t in &self.transit_nodes {
                if self.block_of(t) == b {
                    let _ = writeln!(
                        out,
                        "    {} [shape=box, style=filled, fillcolor=lightblue];",
                        t.0
                    );
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for n in self.graph.node_ids() {
            if matches!(self.role(n), NodeRole::Stub { .. }) {
                let _ = writeln!(out, "  {} [shape=point];", n.0);
            }
        }
        for e in 0..self.graph.edge_count() {
            let (a, b, cost) = self.graph.edge(crate::EdgeId(e as u32));
            let backbone = matches!(self.role(a), NodeRole::Transit { .. })
                && matches!(self.role(b), NodeRole::Transit { .. });
            if backbone {
                let _ = writeln!(
                    out,
                    "  {} -- {} [label=\"{:.0}\", penwidth=2];",
                    a.0, b.0, cost
                );
            } else {
                let _ = writeln!(out, "  {} -- {};", a.0, b.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Summary statistics (what Figure 3 conveys visually).
    pub fn stats(&self) -> TopologyStats {
        TopologyStats {
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            transit_nodes: self.transit_nodes.len(),
            stub_nodes: self.stub_nodes.len(),
            stubs: self.stubs.len(),
            blocks: self
                .stubs
                .iter()
                .map(|s| s.block)
                .max()
                .map_or(0, |b| b + 1),
            avg_degree: self.graph.avg_degree(),
            avg_stub_size: if self.stubs.is_empty() {
                0.0
            } else {
                self.stub_nodes.len() as f64 / self.stubs.len() as f64
            },
            connected: self.graph.is_connected(),
        }
    }
}

/// Summary statistics of a [`Topology`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// Number of transit nodes.
    pub transit_nodes: usize,
    /// Number of stub nodes.
    pub stub_nodes: usize,
    /// Number of stub networks.
    pub stubs: usize,
    /// Number of transit blocks.
    pub blocks: usize,
    /// Mean node degree.
    pub avg_degree: f64,
    /// Mean stub network size.
    pub avg_stub_size: f64,
    /// Whether the topology is one connected component (always true for
    /// generated topologies).
    pub connected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riabov_topology_matches_paper_scale() {
        let topo = TransitStubConfig::riabov().generate(7).unwrap();
        let s = topo.stats();
        assert!(s.connected, "topology must be connected");
        assert_eq!(s.blocks, 3);
        // ~600 nodes: 3 blocks x ~5 transit x ~2 stubs x ~20 nodes.
        assert!(
            (350..=950).contains(&s.nodes),
            "unexpected node count {}",
            s.nodes
        );
        assert!((8..=25).contains(&s.transit_nodes));
        assert!(s.avg_stub_size > 10.0 && s.avg_stub_size < 30.0);
        assert_eq!(s.nodes, s.transit_nodes + s.stub_nodes);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = TransitStubConfig::riabov();
        let a = cfg.generate(123).unwrap();
        let b = cfg.generate(123).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.graph().total_cost(), b.graph().total_cost());
        let c = cfg.generate(124).unwrap();
        // Different seeds produce different networks (total cost collision
        // is essentially impossible).
        assert_ne!(a.graph().total_cost(), c.graph().total_cost());
    }

    #[test]
    fn roles_are_consistent() {
        let topo = TransitStubConfig::riabov().generate(5).unwrap();
        for &t in topo.transit_nodes() {
            assert!(matches!(topo.role(t), NodeRole::Transit { .. }));
        }
        for (i, stub) in topo.stubs().iter().enumerate() {
            assert!(
                matches!(topo.role(stub.transit), NodeRole::Transit { block } if block == stub.block)
            );
            for &n in &stub.nodes {
                match topo.role(n) {
                    NodeRole::Stub { block, stub: s } => {
                        assert_eq!(block, stub.block);
                        assert_eq!(s, i);
                    }
                    other => panic!("stub member has role {other:?}"),
                }
            }
        }
    }

    #[test]
    fn block_queries() {
        let topo = TransitStubConfig::riabov().generate(11).unwrap();
        let t0 = topo.transit_nodes_of_block(0);
        assert!(!t0.is_empty());
        assert!(t0.iter().all(|&n| topo.block_of(n) == 0));
        let s0 = topo.stubs_of_block(0);
        assert!(!s0.is_empty());
        assert!(s0.iter().all(|&i| topo.stubs()[i].block == 0));
    }

    #[test]
    fn tiny_config_is_exact() {
        let topo = TransitStubConfig::tiny().generate(1).unwrap();
        let s = topo.stats();
        assert_eq!(s.blocks, 1);
        assert_eq!(s.transit_nodes, 2);
        assert_eq!(s.stubs, 2);
        assert_eq!(s.stub_nodes, 8);
        assert!(s.connected);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = TransitStubConfig::riabov();
        cfg.transit_blocks = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = TransitStubConfig::riabov();
        cfg.size_jitter = 1.5;
        assert!(cfg.generate(0).is_err());
        let mut cfg = TransitStubConfig::riabov();
        cfg.intra_stub_cost = (5.0, 1.0);
        assert!(cfg.generate(0).is_err());
        let mut cfg = TransitStubConfig::riabov();
        cfg.extra_stub_edge_prob = -0.1;
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let topo = TransitStubConfig::tiny().generate(2).unwrap();
        let dot = topo.to_dot();
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("cluster_block0"));
        // Every edge appears as "a -- b".
        let edge_lines = dot.matches(" -- ").count();
        assert_eq!(edge_lines, topo.graph().edge_count());
        // Transit nodes are boxes.
        assert_eq!(dot.matches("shape=box").count(), topo.transit_nodes().len());
        assert_eq!(dot.matches("shape=point").count(), topo.stub_nodes().len());
    }

    #[test]
    fn stub_links_cheaper_than_backbone_links() {
        // Sanity-check the cost hierarchy on the preset.
        let cfg = TransitStubConfig::riabov();
        assert!(cfg.intra_stub_cost.1 <= cfg.transit_stub_cost.1);
        assert!(cfg.transit_stub_cost.1 <= cfg.intra_transit_cost.1);
        assert!(cfg.intra_transit_cost.1 <= cfg.inter_block_cost.1);
    }
}
