//! Network simulation substrate for the ICDCS 2003 pub-sub evaluation.
//!
//! The paper measures communication cost on a ~600-node hierarchical
//! topology produced by Georgia Tech's GT-ITM package: three *transit
//! blocks* of about five *transit nodes* each, every transit node attached
//! to two *stubs* of about twenty nodes. This crate reimplements that
//! transit-stub model and the cost machinery the experiments need:
//!
//! * [`Graph`] — an undirected weighted graph;
//! * [`dijkstra`] / [`ShortestPaths`] — single-source shortest paths and
//!   the shortest-path tree (SPT) rooted at a publisher;
//! * [`TransitStubConfig`] / [`Topology`] — the GT-ITM-style generator,
//!   with [`TransitStubConfig::riabov`] reproducing the paper's parameters;
//! * [`unicast_cost`] / [`multicast_tree_cost`] — the two delivery cost
//!   models: per-receiver unicast along shortest paths, and *dense-mode*
//!   multicast over the SPT (the paper's router model);
//! * [`alm_tree_cost`] — an application-level multicast overlay variant
//!   (extension; the paper notes its results apply to both flavors);
//! * [`FlatNet`] / [`SptTable`] / [`CostScratch`] — the compiled network
//!   engine: CSR adjacency, precomputed shortest-path-tree tables built
//!   in parallel, and epoch-stamped allocation-free cost walks
//!   ([`unicast_cost_flat`], [`multicast_tree_cost_flat`],
//!   [`unicast_and_tree_cost`], [`cost_events`]) that are bit-identical
//!   to the node-based functions.
//!
//! # Example
//!
//! ```
//! use pubsub_netsim::{dijkstra, multicast_tree_cost, unicast_cost, NodeId, TransitStubConfig};
//!
//! # fn main() -> Result<(), pubsub_netsim::NetError> {
//! let topo = TransitStubConfig::riabov().generate(42)?;
//! let publisher = topo.transit_nodes()[0];
//! let spt = dijkstra(topo.graph(), publisher);
//! let receivers: Vec<NodeId> = topo.stub_nodes().iter().take(10).copied().collect();
//! let uni = unicast_cost(&spt, &receivers);
//! let multi = multicast_tree_cost(&spt, &receivers);
//! assert!(multi <= uni); // sharing links never costs more
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod alm;
mod error;
mod fault;
mod flat;
mod graph;
mod multicast;
mod shortest;
mod transit_stub;
mod waxman;

pub use alm::alm_tree_cost;
pub use error::NetError;
pub use fault::{FaultEvent, FaultPlan, FaultPlanConfig, FaultyRouting, ScheduledFault};
pub use flat::{DijkstraScratch, FlatNet, SptTable, SptView, NO_PARENT};
pub use graph::{EdgeId, Graph, NodeId};
pub use multicast::{
    cost_events, cost_events_into, multicast_tree_cost, multicast_tree_cost_flat, sparse_mode_cost,
    sparse_mode_cost_flat, unicast_and_tree_cost, unicast_cost, unicast_cost_flat, CostScratch,
    PairCost,
};
pub use shortest::{all_pairs_dists, dijkstra, ShortestPaths};
pub use transit_stub::{NodeRole, StubInfo, Topology, TopologyStats, TransitStubConfig};
pub use waxman::WaxmanConfig;
