//! Application-level multicast (ALM) cost model — extension.
//!
//! The paper notes its results are "relevant to two flavors of
//! multicasting, network supported and application level" (citing ALMI).
//! In ALM the group members form an overlay tree; every overlay hop is a
//! plain unicast over the underlay, so a link shared by two overlay hops is
//! paid twice. We build the overlay greedily (Prim's algorithm over the
//! metric closure of the member set plus the publisher), which is the
//! standard mesh-first/tree-second ALMI construction collapsed to its tree
//! step.

use crate::{dijkstra, Graph, NodeId};

/// Cost of delivering one message from `source` to all `members` over a
/// greedy minimum-spanning overlay tree.
///
/// Each overlay edge costs the shortest-path distance between its
/// endpoints; unlike dense-mode multicast, underlay links shared by
/// distinct overlay edges are paid once per overlay edge. Duplicate members
/// and members equal to the source are ignored. Unreachable members yield
/// `+∞`.
///
/// # Panics
///
/// Panics if `source` or a member id is out of range for the graph.
pub fn alm_tree_cost(graph: &Graph, source: NodeId, members: &[NodeId]) -> f64 {
    let mut uniq: Vec<NodeId> = Vec::new();
    for &m in members {
        if m != source && !uniq.contains(&m) {
            uniq.push(m);
        }
    }
    if uniq.is_empty() {
        return 0.0;
    }

    // Distances from the source and from every member (metric closure rows
    // we need).
    let from_source = dijkstra(graph, source);
    if uniq.iter().any(|&m| !from_source.reachable(m)) {
        return f64::INFINITY;
    }
    let from_member: Vec<_> = uniq.iter().map(|&m| dijkstra(graph, m)).collect();

    // Prim over {source} ∪ members.
    let n = uniq.len();
    let mut in_tree = vec![false; n];
    let mut best: Vec<f64> = uniq.iter().map(|&m| from_source.dist(m)).collect();
    let mut total = 0.0;
    for _ in 0..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best[i] < pick_d {
                pick_d = best[i];
                pick = i;
            }
        }
        debug_assert!(pick != usize::MAX);
        in_tree[pick] = true;
        total += pick_d;
        for i in 0..n {
            if !in_tree[i] {
                let d = from_member[pick].dist(uniq[i]);
                if d < best[i] {
                    best[i] = d;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{multicast_tree_cost, unicast_cost};

    /// Line graph 0-1-2-3 with unit costs.
    fn line() -> Graph {
        let mut g = Graph::new(4);
        for i in 0..3u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn line_graph_overlay_chains_members() {
        let g = line();
        // Members 1,2,3 from source 0: greedy overlay is the chain
        // 0->1->2->3, total 3 (one hop each).
        assert_eq!(
            alm_tree_cost(&g, NodeId(0), &[NodeId(1), NodeId(2), NodeId(3)]),
            3.0
        );
        // Without member 1 and 2 relaying, 0->3 costs 3 directly.
        assert_eq!(alm_tree_cost(&g, NodeId(0), &[NodeId(3)]), 3.0);
        // Member 2 relays to 3: 0->2 (2) + 2->3 (1).
        assert_eq!(alm_tree_cost(&g, NodeId(0), &[NodeId(2), NodeId(3)]), 3.0);
    }

    #[test]
    fn alm_between_ip_multicast_and_unicast() {
        // Star trunk where sharing matters.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        let spt = dijkstra(&g, NodeId(0));
        let members = [NodeId(2), NodeId(3)];
        let ip = multicast_tree_cost(&spt, &members);
        let alm = alm_tree_cost(&g, NodeId(0), &members);
        let uni = unicast_cost(&spt, &members);
        // IP multicast pays the trunk once (12), ALM pays it once because
        // member 2 relays to 3 (11 + 2 = 13 vs unicast 22).
        assert_eq!(ip, 12.0);
        assert_eq!(alm, 13.0);
        assert_eq!(uni, 22.0);
        assert!(ip <= alm && alm <= uni);
    }

    #[test]
    fn degenerate_inputs() {
        let g = line();
        assert_eq!(alm_tree_cost(&g, NodeId(0), &[]), 0.0);
        assert_eq!(alm_tree_cost(&g, NodeId(0), &[NodeId(0)]), 0.0);
        assert_eq!(
            alm_tree_cost(&g, NodeId(0), &[NodeId(1), NodeId(1)]),
            alm_tree_cost(&g, NodeId(0), &[NodeId(1)])
        );
    }

    #[test]
    fn unreachable_member_is_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert_eq!(alm_tree_cost(&g, NodeId(0), &[NodeId(2)]), f64::INFINITY);
    }
}
