//! Single-source shortest paths (Dijkstra) and the all-pairs distance
//! table.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{DijkstraScratch, FlatNet, Graph, NodeId};

/// The result of a single-source shortest-path computation: distances and
/// the shortest-path tree (SPT) rooted at the source.
///
/// In the paper's *dense-mode* multicast model, "the routing tree is a
/// shortest path tree rooted at the publisher" — this structure *is* that
/// routing tree.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Assembles a result from precomputed rows (the [`FlatNet`] engine
    /// produces bit-identical rows on flat arrays).
    pub(crate) fn from_raw(source: NodeId, dist: Vec<f64>, parent: Vec<Option<NodeId>>) -> Self {
        ShortestPaths {
            source,
            dist,
            parent,
        }
    }

    /// The source node of the computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node` (`+∞` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn dist(&self, node: NodeId) -> f64 {
        self.dist[node.0 as usize]
    }

    /// The parent of `node` in the SPT (`None` for the source and for
    /// unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.0 as usize]
    }

    /// `true` if `node` is reachable from the source.
    pub fn reachable(&self, node: NodeId) -> bool {
        self.dist[node.0 as usize].is_finite()
    }

    /// The path from the source to `node` (inclusive on both ends), or
    /// `None` if unreachable.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(node) {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur.0 as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Number of nodes covered by the computation.
    pub fn node_count(&self) -> usize {
        self.dist.len()
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance via reversed comparison; distances are
        // finite and non-NaN by construction.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes single-source shortest paths with Dijkstra's algorithm.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn dijkstra(graph: &Graph, source: NodeId) -> ShortestPaths {
    let n = graph.node_count();
    assert!((source.0 as usize) < n, "source out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.0 as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        let ni = node.0 as usize;
        if done[ni] {
            continue;
        }
        done[ni] = true;
        for (nbr, cost) in graph.neighbors(node) {
            let nd = d + cost;
            if nd < dist[nbr.0 as usize] {
                dist[nbr.0 as usize] = nd;
                parent[nbr.0 as usize] = Some(node);
                heap.push(HeapItem {
                    dist: nd,
                    node: nbr,
                });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// All-pairs shortest distances: one row per source node.
///
/// Implemented as repeated Dijkstra over the compiled [`FlatNet`] —
/// `O(V·E log V)`, versus the `O(V^3)` Floyd–Warshall this replaced —
/// with the rows computed in parallel on the `pubsub-parallel` scoped
/// pool (`threads = None` means available parallelism). Distances are
/// bit-identical to per-source [`dijkstra`] calls; a Floyd–Warshall
/// parity test keeps the algorithms honest on random Waxman graphs.
pub fn all_pairs_dists(graph: &Graph, threads: Option<usize>) -> Vec<Vec<f64>> {
    let net = FlatNet::compile(graph);
    let sources: Vec<NodeId> = graph.node_ids().collect();
    pubsub_parallel::map_with_scratch(
        &sources,
        pubsub_parallel::effective_threads(threads),
        DijkstraScratch::new,
        |&source, scratch| {
            let mut dist = vec![f64::INFINITY; net.node_count()];
            let mut parent = vec![crate::NO_PARENT; net.node_count()];
            let mut up_cost = vec![0.0; net.node_count()];
            net.sssp_into(source, scratch, &mut dist, &mut parent, &mut up_cost);
            dist
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small weighted graph with a known structure:
    ///
    /// ```text
    ///   0 --1-- 1 --1-- 2
    ///   |               |
    ///   +------10-------+
    /// ```
    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 10.0).unwrap();
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_two_hop_path() {
        let sp = dijkstra(&triangle(), NodeId(0));
        assert_eq!(sp.dist(NodeId(0)), 0.0);
        assert_eq!(sp.dist(NodeId(1)), 1.0);
        assert_eq!(sp.dist(NodeId(2)), 2.0);
        assert_eq!(sp.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(
            sp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(sp.source(), NodeId(0));
        assert_eq!(sp.node_count(), 3);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let sp = dijkstra(&g, NodeId(0));
        assert!(!sp.reachable(NodeId(2)));
        assert_eq!(sp.path_to(NodeId(2)), None);
        assert_eq!(sp.dist(NodeId(2)), f64::INFINITY);
    }

    #[test]
    fn parallel_edges_use_cheapest() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 5.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(NodeId(1)), 2.0);
    }

    /// The `O(V^3)` Floyd–Warshall this module used to ship, retained as
    /// the parity oracle for [`all_pairs_dists`].
    fn floyd_warshall_oracle(graph: &Graph) -> Vec<Vec<f64>> {
        let n = graph.node_count();
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for id in 0..graph.edge_count() {
            let (a, b, c) = graph.edge(crate::EdgeId(id as u32));
            let (ai, bi) = (a.0 as usize, b.0 as usize);
            if c < d[ai][bi] {
                d[ai][bi] = c;
                d[bi][ai] = c;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if d[i][k].is_infinite() {
                    continue;
                }
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        d
    }

    #[test]
    fn all_pairs_matches_dijkstra() {
        // Deterministic pseudo-random graph.
        let n = 20;
        let mut g = Graph::new(n);
        let mut x = 12345u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 1..n {
            let j = (rnd() * i as f64) as usize;
            g.add_edge(NodeId(i as u32), NodeId(j as u32), 1.0 + rnd() * 9.0)
                .unwrap();
        }
        for _ in 0..15 {
            let a = (rnd() * n as f64) as usize % n;
            let b = (rnd() * n as f64) as usize % n;
            if a != b {
                g.add_edge(NodeId(a as u32), NodeId(b as u32), 1.0 + rnd() * 9.0)
                    .unwrap();
            }
        }
        let apsp = all_pairs_dists(&g, Some(2));
        for (s, row) in apsp.iter().enumerate().take(n) {
            let sp = dijkstra(&g, NodeId(s as u32));
            for (t, &d) in row.iter().enumerate().take(n) {
                // Bit-identical to per-source Dijkstra by construction.
                assert_eq!(sp.dist(NodeId(t as u32)), d, "s={s} t={t}");
            }
        }
    }

    #[test]
    fn all_pairs_matches_floyd_warshall_on_waxman_graphs() {
        for seed in [3u64, 17, 42] {
            let topo = crate::WaxmanConfig {
                nodes: 30,
                alpha: 0.4,
                beta: 0.4,
                cost_scale: 10.0,
            }
            .generate(seed)
            .unwrap();
            let g = topo.graph();
            let fast = all_pairs_dists(g, None);
            let oracle = floyd_warshall_oracle(g);
            for s in 0..g.node_count() {
                for t in 0..g.node_count() {
                    assert!(
                        (fast[s][t] - oracle[s][t]).abs() < 1e-9,
                        "seed={seed} s={s} t={t}: {} vs {}",
                        fast[s][t],
                        oracle[s][t]
                    );
                }
            }
        }
    }

    #[test]
    fn spt_distances_are_consistent_with_parents() {
        let g = triangle();
        let sp = dijkstra(&g, NodeId(0));
        for t in 1..3u32 {
            if let Some(p) = sp.parent(NodeId(t)) {
                // dist(child) = dist(parent) + cost(parent, child)
                let edge_cost = g
                    .neighbors(NodeId(t))
                    .filter(|&(n, _)| n == p)
                    .map(|(_, c)| c)
                    .fold(f64::INFINITY, f64::min);
                assert!((sp.dist(NodeId(t)) - sp.dist(p) - edge_cost).abs() < 1e-9);
            }
        }
    }
}
