//! The two delivery cost models of the paper's experiments (§5.2).
//!
//! Costs are sums of edge costs over the links a message traverses:
//!
//! * **unicast** — one message per receiver, each following the shortest
//!   path from the publisher, links are paid once *per message* (no
//!   sharing);
//! * **dense-mode multicast** — one message flooded down the shortest-path
//!   tree rooted at the publisher; each link of the union of root-paths is
//!   paid exactly once.
//!
//! The paper's "100% improvement" reference point — a multicast group
//! formed of exactly the interested subscribers — is
//! [`multicast_tree_cost`] applied to the matched set itself.

use crate::{NodeId, ShortestPaths};

/// Total cost of unicasting one message to each receiver along its
/// shortest path: `Σ_r dist(publisher, r)`.
///
/// Receivers equal to the source cost nothing; duplicate receivers are
/// counted once (a subscriber node receives one copy regardless of how many
/// of its subscriptions matched). Unreachable receivers contribute `+∞`,
/// which surfaces configuration errors loudly rather than silently.
pub fn unicast_cost(spt: &ShortestPaths, receivers: &[NodeId]) -> f64 {
    let mut seen = vec![false; spt.node_count()];
    let mut total = 0.0;
    for &r in receivers {
        if r == spt.source() || seen[r.0 as usize] {
            continue;
        }
        seen[r.0 as usize] = true;
        total += spt.dist(r);
    }
    total
}

/// Total cost of one dense-mode multicast to `receivers`: the sum of edge
/// costs over the union of shortest paths from the publisher to each
/// receiver (each shared link paid once).
///
/// Unreachable receivers contribute `+∞`.
pub fn multicast_tree_cost(spt: &ShortestPaths, receivers: &[NodeId]) -> f64 {
    // Walk each receiver's parent chain toward the source, stopping at the
    // first node already in the tree. Edge cost = dist(child) - dist(parent).
    let mut in_tree = vec![false; spt.node_count()];
    in_tree[spt.source().0 as usize] = true;
    let mut total = 0.0;
    for &r in receivers {
        if !spt.reachable(r) {
            return f64::INFINITY;
        }
        let mut cur = r;
        while !in_tree[cur.0 as usize] {
            in_tree[cur.0 as usize] = true;
            let Some(p) = spt.parent(cur) else { break };
            total += spt.dist(cur) - spt.dist(p);
            cur = p;
        }
    }
    total
}

/// Total cost of one *sparse-mode* multicast: the message is tunneled
/// from the publisher to the rendezvous point (`publisher_to_rp`, a
/// shortest-path unicast) and flooded down the shared tree rooted at the
/// RP (`rp_spt`).
///
/// Sparse mode is the other router flavor the paper names (§5.2); it
/// trades per-publisher tree state for the RP detour. An empty receiver
/// set costs nothing; unreachable receivers contribute `+∞`.
pub fn sparse_mode_cost(rp_spt: &ShortestPaths, publisher_to_rp: f64, receivers: &[NodeId]) -> f64 {
    if receivers.is_empty() {
        return 0.0;
    }
    publisher_to_rp + multicast_tree_cost(rp_spt, receivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, Graph};

    /// A star with a shared trunk:
    ///
    /// ```text
    /// 0 --2-- 1 --3-- 2
    ///          \--4-- 3
    /// ```
    fn trunk() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 3.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 4.0).unwrap();
        g
    }

    #[test]
    fn unicast_pays_trunk_per_receiver() {
        let spt = dijkstra(&trunk(), NodeId(0));
        let cost = unicast_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, (2.0 + 3.0) + (2.0 + 4.0));
    }

    #[test]
    fn multicast_pays_trunk_once() {
        let spt = dijkstra(&trunk(), NodeId(0));
        let cost = multicast_tree_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn multicast_never_exceeds_unicast() {
        let spt = dijkstra(&trunk(), NodeId(0));
        for receivers in [
            vec![NodeId(1)],
            vec![NodeId(2)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3), NodeId(2)],
        ] {
            assert!(multicast_tree_cost(&spt, &receivers) <= unicast_cost(&spt, &receivers) + 1e-9);
        }
    }

    #[test]
    fn source_and_duplicates_cost_nothing_extra() {
        let spt = dijkstra(&trunk(), NodeId(0));
        assert_eq!(unicast_cost(&spt, &[NodeId(0)]), 0.0);
        assert_eq!(multicast_tree_cost(&spt, &[NodeId(0)]), 0.0);
        assert_eq!(
            unicast_cost(&spt, &[NodeId(2), NodeId(2)]),
            unicast_cost(&spt, &[NodeId(2)])
        );
        assert_eq!(
            multicast_tree_cost(&spt, &[NodeId(2), NodeId(2)]),
            multicast_tree_cost(&spt, &[NodeId(2)])
        );
    }

    #[test]
    fn empty_receiver_set_is_free() {
        let spt = dijkstra(&trunk(), NodeId(0));
        assert_eq!(unicast_cost(&spt, &[]), 0.0);
        assert_eq!(multicast_tree_cost(&spt, &[]), 0.0);
    }

    #[test]
    fn unreachable_receiver_is_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let spt = dijkstra(&g, NodeId(0));
        assert_eq!(unicast_cost(&spt, &[NodeId(2)]), f64::INFINITY);
        assert_eq!(multicast_tree_cost(&spt, &[NodeId(2)]), f64::INFINITY);
    }

    #[test]
    fn sparse_mode_adds_the_rendezvous_detour() {
        let g = trunk();
        // RP at node 1: publisher 0 tunnels 0->1 (cost 2), then the shared
        // tree 1->{2,3} costs 3+4.
        let rp_spt = dijkstra(&g, NodeId(1));
        let pub_spt = dijkstra(&g, NodeId(0));
        let to_rp = pub_spt.dist(NodeId(1));
        let cost = sparse_mode_cost(&rp_spt, to_rp, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, 2.0 + 3.0 + 4.0);
        // With RP = publisher, sparse mode equals dense mode.
        let same = sparse_mode_cost(&pub_spt, 0.0, &[NodeId(2), NodeId(3)]);
        assert_eq!(same, multicast_tree_cost(&pub_spt, &[NodeId(2), NodeId(3)]));
        // Empty receivers are free even with a positive tunnel cost.
        assert_eq!(sparse_mode_cost(&rp_spt, to_rp, &[]), 0.0);
    }

    #[test]
    fn multicast_subset_monotonicity() {
        // Adding receivers can only grow the tree.
        let spt = dijkstra(&trunk(), NodeId(0));
        let small = multicast_tree_cost(&spt, &[NodeId(2)]);
        let big = multicast_tree_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert!(big >= small);
    }
}
