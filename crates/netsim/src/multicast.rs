//! The two delivery cost models of the paper's experiments (§5.2).
//!
//! Costs are sums of edge costs over the links a message traverses:
//!
//! * **unicast** — one message per receiver, each following the shortest
//!   path from the publisher, links are paid once *per message* (no
//!   sharing);
//! * **dense-mode multicast** — one message flooded down the shortest-path
//!   tree rooted at the publisher; each link of the union of root-paths is
//!   paid exactly once.
//!
//! The paper's "100% improvement" reference point — a multicast group
//! formed of exactly the interested subscribers — is
//! [`multicast_tree_cost`] applied to the matched set itself.

use crate::{NodeId, ShortestPaths, SptView};

/// Total cost of unicasting one message to each receiver along its
/// shortest path: `Σ_r dist(publisher, r)`.
///
/// Receivers equal to the source cost nothing; duplicate receivers are
/// counted once (a subscriber node receives one copy regardless of how many
/// of its subscriptions matched). Unreachable receivers contribute `+∞`,
/// which surfaces configuration errors loudly rather than silently.
pub fn unicast_cost(spt: &ShortestPaths, receivers: &[NodeId]) -> f64 {
    let mut seen = vec![false; spt.node_count()];
    let mut total = 0.0;
    for &r in receivers {
        if r == spt.source() || seen[r.0 as usize] {
            continue;
        }
        seen[r.0 as usize] = true;
        total += spt.dist(r);
    }
    total
}

/// Total cost of one dense-mode multicast to `receivers`: the sum of edge
/// costs over the union of shortest paths from the publisher to each
/// receiver (each shared link paid once).
///
/// Unreachable receivers contribute `+∞`.
pub fn multicast_tree_cost(spt: &ShortestPaths, receivers: &[NodeId]) -> f64 {
    // Walk each receiver's parent chain toward the source, stopping at the
    // first node already in the tree. Edge cost = dist(child) - dist(parent).
    let mut in_tree = vec![false; spt.node_count()];
    in_tree[spt.source().0 as usize] = true;
    let mut total = 0.0;
    for &r in receivers {
        if !spt.reachable(r) {
            return f64::INFINITY;
        }
        let mut cur = r;
        while !in_tree[cur.0 as usize] {
            in_tree[cur.0 as usize] = true;
            let Some(p) = spt.parent(cur) else { break };
            total += spt.dist(cur) - spt.dist(p);
            cur = p;
        }
    }
    total
}

/// Total cost of one *sparse-mode* multicast: the message is tunneled
/// from the publisher to the rendezvous point (`publisher_to_rp`, a
/// shortest-path unicast) and flooded down the shared tree rooted at the
/// RP (`rp_spt`).
///
/// Sparse mode is the other router flavor the paper names (§5.2); it
/// trades per-publisher tree state for the RP detour. An empty receiver
/// set costs nothing; unreachable receivers contribute `+∞`.
pub fn sparse_mode_cost(rp_spt: &ShortestPaths, publisher_to_rp: f64, receivers: &[NodeId]) -> f64 {
    if receivers.is_empty() {
        return 0.0;
    }
    publisher_to_rp + multicast_tree_cost(rp_spt, receivers)
}

/// Reusable epoch-stamped visited marks for the flat cost walks.
///
/// The node-based cost functions allocate (and zero) a fresh
/// `vec![false; n]` per call — three allocations per published event on
/// the broker's hot path. `CostScratch` replaces the booleans with `u32`
/// epoch stamps: a mark is "set" iff it equals the current epoch, so
/// clearing between calls is a single counter increment and the buffers
/// are allocated once per broker, not once per event.
///
/// Two mark arrays are kept because [`unicast_and_tree_cost`] needs
/// independent "already billed" (unicast dedup) and "already in tree"
/// (tree-walk dedup) sets in one pass.
#[derive(Clone, Debug, Default)]
pub struct CostScratch {
    seen: Vec<u32>,
    tree: Vec<u32>,
    epoch: u32,
}

impl CostScratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new walk over `n` nodes: bumps the epoch (resetting the
    /// marks wholesale on wrap-around or size change) and returns it.
    #[inline]
    fn begin(&mut self, n: usize) -> u32 {
        if self.seen.len() != n {
            self.seen.clear();
            self.seen.resize(n, 0);
            self.tree.clear();
            self.tree.resize(n, 0);
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.tree.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// The unicast and dense-mode tree costs of one receiver set, computed
/// together by [`unicast_and_tree_cost`] / [`cost_events`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PairCost {
    /// `Σ_r dist(source, r)` — see [`unicast_cost`].
    pub unicast: f64,
    /// Dense-mode SPT tree cost — see [`multicast_tree_cost`].
    pub tree: f64,
}

/// [`unicast_cost`] against a precomputed [`SptView`], allocation-free.
/// Bit-identical to the node-based function for the same tree.
pub fn unicast_cost_flat(
    view: SptView<'_>,
    receivers: &[NodeId],
    scratch: &mut CostScratch,
) -> f64 {
    let epoch = scratch.begin(view.node_count());
    let dist = view.raw_dist();
    let source = view.source();
    let mut total = 0.0;
    for &r in receivers {
        let ri = r.0 as usize;
        if r == source || scratch.seen[ri] == epoch {
            continue;
        }
        scratch.seen[ri] = epoch;
        total += dist[ri];
    }
    total
}

/// [`multicast_tree_cost`] against a precomputed [`SptView`],
/// allocation-free: each receiver's parent chain is walked once, stopping
/// at the first epoch-stamped node, and every tree edge is paid via the
/// precomputed `up_cost` row (the same `dist(child) - dist(parent)`
/// subtraction, done once at table-build time). Bit-identical to the
/// node-based function for the same tree.
pub fn multicast_tree_cost_flat(
    view: SptView<'_>,
    receivers: &[NodeId],
    scratch: &mut CostScratch,
) -> f64 {
    let epoch = scratch.begin(view.node_count());
    scratch.tree[view.source().0 as usize] = epoch;
    let parent = view.raw_parent();
    let up_cost = view.raw_up_cost();
    let mut total = 0.0;
    for &r in receivers {
        if !view.reachable(r) {
            return f64::INFINITY;
        }
        let mut cur = r.0 as usize;
        while scratch.tree[cur] != epoch {
            scratch.tree[cur] = epoch;
            let p = parent[cur];
            if p == crate::NO_PARENT {
                break;
            }
            total += up_cost[cur];
            cur = p as usize;
        }
    }
    total
}

/// [`sparse_mode_cost`] against a precomputed rendezvous-point
/// [`SptView`], allocation-free.
pub fn sparse_mode_cost_flat(
    rp_view: SptView<'_>,
    publisher_to_rp: f64,
    receivers: &[NodeId],
    scratch: &mut CostScratch,
) -> f64 {
    if receivers.is_empty() {
        return 0.0;
    }
    publisher_to_rp + multicast_tree_cost_flat(rp_view, receivers, scratch)
}

/// Computes [`unicast_cost`] and [`multicast_tree_cost`] for one receiver
/// set in a single pass over the receivers: each receiver's `dist` load
/// is shared between the unicast sum and the reachability check, and no
/// allocation happens. Both accumulators add terms in exactly the order
/// the separate functions would, so the results are bit-identical.
pub fn unicast_and_tree_cost(
    view: SptView<'_>,
    receivers: &[NodeId],
    scratch: &mut CostScratch,
) -> PairCost {
    let epoch = scratch.begin(view.node_count());
    let source = view.source();
    scratch.tree[source.0 as usize] = epoch;
    let dist = view.raw_dist();
    let parent = view.raw_parent();
    let up_cost = view.raw_up_cost();
    let mut unicast = 0.0;
    let mut tree = 0.0;
    let mut tree_infinite = false;
    for &r in receivers {
        let ri = r.0 as usize;
        if r != source && scratch.seen[ri] != epoch {
            scratch.seen[ri] = epoch;
            unicast += dist[ri];
        }
        if !tree_infinite {
            if !dist[ri].is_finite() {
                tree_infinite = true;
            } else {
                let mut cur = ri;
                while scratch.tree[cur] != epoch {
                    scratch.tree[cur] = epoch;
                    let p = parent[cur];
                    if p == crate::NO_PARENT {
                        break;
                    }
                    tree += up_cost[cur];
                    cur = p as usize;
                }
            }
        }
    }
    PairCost {
        unicast,
        tree: if tree_infinite { f64::INFINITY } else { tree },
    }
}

/// Batched costing: [`unicast_and_tree_cost`] over many receiver sets
/// (one per published event) with a single scratch — the broker's
/// `publish_batch` wires its dense-mode cost stage through this.
pub fn cost_events<'a, I>(view: SptView<'_>, sets: I, scratch: &mut CostScratch) -> Vec<PairCost>
where
    I: IntoIterator<Item = &'a [NodeId]>,
{
    let mut out = Vec::new();
    cost_events_into(view, sets, scratch, &mut out);
    out
}

/// [`cost_events`] writing into a caller-owned buffer: appends one
/// [`PairCost`] per receiver set without clearing `out`, so a warm
/// buffer makes the whole cost stage allocation-free. The fused publish
/// pipeline's per-worker scratch reuses its pair buffer this way.
pub fn cost_events_into<'a, I>(
    view: SptView<'_>,
    sets: I,
    scratch: &mut CostScratch,
    out: &mut Vec<PairCost>,
) where
    I: IntoIterator<Item = &'a [NodeId]>,
{
    out.extend(
        sets.into_iter()
            .map(|receivers| unicast_and_tree_cost(view, receivers, scratch)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, FlatNet, Graph, SptTable};

    /// A star with a shared trunk:
    ///
    /// ```text
    /// 0 --2-- 1 --3-- 2
    ///          \--4-- 3
    /// ```
    fn trunk() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 3.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 4.0).unwrap();
        g
    }

    #[test]
    fn unicast_pays_trunk_per_receiver() {
        let spt = dijkstra(&trunk(), NodeId(0));
        let cost = unicast_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, (2.0 + 3.0) + (2.0 + 4.0));
    }

    #[test]
    fn multicast_pays_trunk_once() {
        let spt = dijkstra(&trunk(), NodeId(0));
        let cost = multicast_tree_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn multicast_never_exceeds_unicast() {
        let spt = dijkstra(&trunk(), NodeId(0));
        for receivers in [
            vec![NodeId(1)],
            vec![NodeId(2)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3), NodeId(2)],
        ] {
            assert!(multicast_tree_cost(&spt, &receivers) <= unicast_cost(&spt, &receivers) + 1e-9);
        }
    }

    #[test]
    fn source_and_duplicates_cost_nothing_extra() {
        let spt = dijkstra(&trunk(), NodeId(0));
        assert_eq!(unicast_cost(&spt, &[NodeId(0)]), 0.0);
        assert_eq!(multicast_tree_cost(&spt, &[NodeId(0)]), 0.0);
        assert_eq!(
            unicast_cost(&spt, &[NodeId(2), NodeId(2)]),
            unicast_cost(&spt, &[NodeId(2)])
        );
        assert_eq!(
            multicast_tree_cost(&spt, &[NodeId(2), NodeId(2)]),
            multicast_tree_cost(&spt, &[NodeId(2)])
        );
    }

    #[test]
    fn empty_receiver_set_is_free() {
        let spt = dijkstra(&trunk(), NodeId(0));
        assert_eq!(unicast_cost(&spt, &[]), 0.0);
        assert_eq!(multicast_tree_cost(&spt, &[]), 0.0);
    }

    #[test]
    fn unreachable_receiver_is_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let spt = dijkstra(&g, NodeId(0));
        assert_eq!(unicast_cost(&spt, &[NodeId(2)]), f64::INFINITY);
        assert_eq!(multicast_tree_cost(&spt, &[NodeId(2)]), f64::INFINITY);
    }

    #[test]
    fn sparse_mode_adds_the_rendezvous_detour() {
        let g = trunk();
        // RP at node 1: publisher 0 tunnels 0->1 (cost 2), then the shared
        // tree 1->{2,3} costs 3+4.
        let rp_spt = dijkstra(&g, NodeId(1));
        let pub_spt = dijkstra(&g, NodeId(0));
        let to_rp = pub_spt.dist(NodeId(1));
        let cost = sparse_mode_cost(&rp_spt, to_rp, &[NodeId(2), NodeId(3)]);
        assert_eq!(cost, 2.0 + 3.0 + 4.0);
        // With RP = publisher, sparse mode equals dense mode.
        let same = sparse_mode_cost(&pub_spt, 0.0, &[NodeId(2), NodeId(3)]);
        assert_eq!(same, multicast_tree_cost(&pub_spt, &[NodeId(2), NodeId(3)]));
        // Empty receivers are free even with a positive tunnel cost.
        assert_eq!(sparse_mode_cost(&rp_spt, to_rp, &[]), 0.0);
    }

    #[test]
    fn flat_costs_equal_node_based_costs() {
        let g = trunk();
        let spt = dijkstra(&g, NodeId(0));
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0), NodeId(1)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        let mut scratch = CostScratch::new();
        for receivers in [
            vec![],
            vec![NodeId(0)],
            vec![NodeId(2)],
            vec![NodeId(2), NodeId(2), NodeId(3)],
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)],
        ] {
            let uni = unicast_cost(&spt, &receivers);
            let tree = multicast_tree_cost(&spt, &receivers);
            assert_eq!(unicast_cost_flat(view, &receivers, &mut scratch), uni);
            assert_eq!(
                multicast_tree_cost_flat(view, &receivers, &mut scratch),
                tree
            );
            let pair = unicast_and_tree_cost(view, &receivers, &mut scratch);
            assert_eq!(pair, PairCost { unicast: uni, tree });
        }
        // Sparse mode through the RP view.
        let rp_spt = dijkstra(&g, NodeId(1));
        let rp_view = table.view(NodeId(1)).unwrap();
        let to_rp = spt.dist(NodeId(1));
        let receivers = [NodeId(2), NodeId(3)];
        assert_eq!(
            sparse_mode_cost_flat(rp_view, to_rp, &receivers, &mut scratch),
            sparse_mode_cost(&rp_spt, to_rp, &receivers)
        );
        assert_eq!(
            sparse_mode_cost_flat(rp_view, to_rp, &[], &mut scratch),
            0.0
        );
    }

    #[test]
    fn flat_costs_handle_unreachable_receivers() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        let mut scratch = CostScratch::new();
        let receivers = [NodeId(2), NodeId(1)];
        assert_eq!(
            unicast_cost_flat(view, &receivers, &mut scratch),
            f64::INFINITY
        );
        assert_eq!(
            multicast_tree_cost_flat(view, &receivers, &mut scratch),
            f64::INFINITY
        );
        let pair = unicast_and_tree_cost(view, &receivers, &mut scratch);
        assert_eq!(pair.unicast, f64::INFINITY);
        assert_eq!(pair.tree, f64::INFINITY);
    }

    #[test]
    fn cost_events_batches_with_one_scratch() {
        let g = trunk();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        let sets: Vec<Vec<NodeId>> = vec![
            vec![NodeId(2), NodeId(3)],
            vec![],
            vec![NodeId(1)],
            vec![NodeId(3), NodeId(3), NodeId(2)],
        ];
        let mut scratch = CostScratch::new();
        let batched = cost_events(view, sets.iter().map(Vec::as_slice), &mut scratch);
        assert_eq!(batched.len(), sets.len());
        let spt = dijkstra(&g, NodeId(0));
        for (set, pair) in sets.iter().zip(&batched) {
            assert_eq!(pair.unicast, unicast_cost(&spt, set));
            assert_eq!(pair.tree, multicast_tree_cost(&spt, set));
        }
    }

    #[test]
    fn cost_scratch_survives_epoch_wraparound_and_resize() {
        let g = trunk();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        let mut scratch = CostScratch {
            epoch: u32::MAX - 2,
            ..CostScratch::new()
        };
        let expected = multicast_tree_cost(&dijkstra(&g, NodeId(0)), &[NodeId(2), NodeId(3)]);
        for _ in 0..6 {
            assert_eq!(
                multicast_tree_cost_flat(view, &[NodeId(2), NodeId(3)], &mut scratch),
                expected
            );
        }
        // A differently-sized view resets the marks.
        let mut g2 = Graph::new(2);
        g2.add_edge(NodeId(0), NodeId(1), 5.0).unwrap();
        let net2 = FlatNet::compile(&g2);
        let table2 = SptTable::build(&net2, &[NodeId(0)], Some(1));
        let view2 = table2.view(NodeId(0)).unwrap();
        assert_eq!(
            multicast_tree_cost_flat(view2, &[NodeId(1)], &mut scratch),
            5.0
        );
        assert_eq!(
            multicast_tree_cost_flat(view, &[NodeId(2), NodeId(3)], &mut scratch),
            expected
        );
    }

    #[test]
    fn multicast_subset_monotonicity() {
        // Adding receivers can only grow the tree.
        let spt = dijkstra(&trunk(), NodeId(0));
        let small = multicast_tree_cost(&spt, &[NodeId(2)]);
        let big = multicast_tree_cost(&spt, &[NodeId(2), NodeId(3)]);
        assert!(big >= small);
    }
}
