//! Fault injection over the compiled network: deterministic fault plans,
//! a degradation overlay that never touches the pristine CSR, and
//! self-healing shortest-path-tree state.
//!
//! Three layers, mirroring the compile-time split of [`FlatNet`]:
//!
//! * [`FaultPlan`] — an epoch-free *schedule* of [`FaultEvent`]s keyed by
//!   publish step, either hand-built or generated deterministically from
//!   a seed ([`FaultPlan::seeded`]).
//! * `FaultOverlay` (internal) — the *current* fault state: a per-CSR-slot
//!   cost factor (`+∞` = cut) and a per-node down flag, epoch-stamped on
//!   every change. Its degraded Dijkstra multiplies each pristine weight
//!   by its factor, so with no active fault the output is **bit-identical**
//!   to [`FlatNet::sssp_into`] (multiplying by `1.0` is exact).
//! * [`FaultyRouting`] — the self-healing routing state: it watches an
//!   [`SptTable`], maintains a tree-edge → rows incidence index, and on
//!   each fault invalidates *only* the rows whose shortest-path tree
//!   actually used a worsened edge (a worsening on a non-tree edge
//!   provably leaves a row bit-identical: distances cannot improve, and a
//!   candidate parent edge that lost before loses harder after). Repairs
//!   can improve distances anywhere and invalidate every row. Stale rows
//!   are rebuilt lazily on [`FaultyRouting::heal`], and
//!   [`FaultyRouting::route_generation`] bumps only when a rebuild
//!   actually changed a row — the signal the broker's scheme-cost memo
//!   keys on, so a fault that touches no live tree costs nothing.

use std::collections::HashMap;

use crate::{DijkstraScratch, EdgeId, FlatNet, Graph, NetError, NodeId, SptTable, NO_PARENT};

/// One fault or repair, addressed by node endpoints (all parallel links
/// between a pair are affected together).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultEvent {
    /// Cuts every link between `a` and `b`.
    LinkCut {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restores every link between `a` and `b` to its pristine cost
    /// (this also clears a degradation).
    LinkRestore {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Multiplies the cost of every link between `a` and `b` by `factor`
    /// (≥ 1 and finite — faults only ever worsen a link; repairs go
    /// through [`FaultEvent::LinkRestore`]).
    LinkDegrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The cost multiplier applied to the pristine weight.
        factor: f64,
    },
    /// Takes a node down: every incident link becomes unusable and the
    /// node can neither publish nor receive.
    NodeDown {
        /// The failing node.
        node: NodeId,
    },
    /// Brings a node back up.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
}

/// A fault event bound to the publish step at which it fires.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScheduledFault {
    /// 0-based publish step: the event is applied immediately before the
    /// `at`-th publication after the plan is installed.
    pub at: u64,
    /// The fault or repair.
    pub event: FaultEvent,
}

/// Parameters for [`FaultPlan::seeded`].
#[derive(Clone, Copy, Debug)]
pub struct FaultPlanConfig {
    /// Fraction of the graph's links to cut, in `[0, 1]`.
    pub link_failure_fraction: f64,
    /// Fraction of the graph's nodes to take down, in `[0, 1]`.
    pub node_failure_fraction: f64,
    /// Failures fire at a pseudo-random step in `[0, horizon]`
    /// (`horizon = 0` fires everything up front).
    pub horizon: u64,
    /// When set, each failure is repaired this many steps after it fired.
    pub repair_after: Option<u64>,
}

impl FaultPlanConfig {
    /// A plan that only cuts links, all up front, with no repairs.
    pub fn link_cuts(fraction: f64) -> FaultPlanConfig {
        FaultPlanConfig {
            link_failure_fraction: fraction,
            node_failure_fraction: 0.0,
            horizon: 0,
            repair_after: None,
        }
    }
}

/// A deterministic schedule of fault events, sorted by step (stable for
/// events sharing a step).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan: installing it changes nothing, ever.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `event` at publish step `at`, keeping the schedule
    /// sorted (events at the same step keep insertion order).
    pub fn push(&mut self, at: u64, event: FaultEvent) -> &mut FaultPlan {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ScheduledFault { at, event });
        self
    }

    /// The schedule, sorted by step.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a reproducible plan for `graph` from a seed: cuts
    /// `link_failure_fraction` of the links and downs
    /// `node_failure_fraction` of the nodes (sampled without
    /// replacement), each firing at a step in `[0, horizon]` and — when
    /// `repair_after` is set — repaired that many steps later.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] if a fraction is outside
    /// `[0, 1]`.
    pub fn seeded(
        graph: &Graph,
        seed: u64,
        config: &FaultPlanConfig,
    ) -> Result<FaultPlan, NetError> {
        for (value, parameter) in [
            (config.link_failure_fraction, "link_failure_fraction"),
            (config.node_failure_fraction, "node_failure_fraction"),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(NetError::InvalidConfig {
                    parameter,
                    constraint: "0 <= fraction <= 1",
                });
            }
        }
        let mut state = seed ^ 0x5DEECE66D;
        let mut plan = FaultPlan::new();
        let links = sample(graph.edge_count(), config.link_failure_fraction, &mut state);
        for id in links {
            let (a, b, _) = graph.edge(EdgeId(id as u32));
            let at = step_in(config.horizon, &mut state);
            plan.push(at, FaultEvent::LinkCut { a, b });
            if let Some(delay) = config.repair_after {
                plan.push(at + delay, FaultEvent::LinkRestore { a, b });
            }
        }
        let nodes = sample(graph.node_count(), config.node_failure_fraction, &mut state);
        for id in nodes {
            let node = NodeId(id as u32);
            let at = step_in(config.horizon, &mut state);
            plan.push(at, FaultEvent::NodeDown { node });
            if let Some(delay) = config.repair_after {
                plan.push(at + delay, FaultEvent::NodeUp { node });
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 step — the crate's only RNG need is reproducible sampling.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `round(fraction · count)` distinct indices via a partial Fisher–Yates
/// shuffle.
fn sample(count: usize, fraction: f64, state: &mut u64) -> Vec<usize> {
    let k = ((count as f64) * fraction).round() as usize;
    let k = k.min(count);
    let mut ids: Vec<usize> = (0..count).collect();
    for i in 0..k {
        let j = i + (splitmix(state) as usize) % (count - i);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

fn step_in(horizon: u64, state: &mut u64) -> u64 {
    if horizon == 0 {
        0
    } else {
        splitmix(state) % (horizon + 1)
    }
}

/// How far an applied fault can reach into precomputed routing state.
#[derive(Clone, PartialEq, Debug)]
enum FaultImpact {
    /// The event changed nothing (e.g. cutting an already-cut link).
    Unchanged,
    /// Costs only got worse, and only across the listed node pairs: a
    /// shortest-path tree using none of them is provably bit-identical.
    Worsened(Vec<(NodeId, NodeId)>),
    /// Costs may have improved anywhere; every row is suspect.
    Global,
}

/// The current fault state as an overlay over the pristine CSR arrays.
#[derive(Clone, Debug)]
struct FaultOverlay {
    /// Per CSR edge slot: cost multiplier. `1.0` = pristine, `+∞` = cut.
    slot_factor: Vec<f64>,
    node_down: Vec<bool>,
    /// Bumped on every state-changing apply.
    epoch: u64,
    /// Slots whose factor is not `1.0`.
    disturbed_slots: usize,
    down_nodes: usize,
}

impl FaultOverlay {
    fn new(net: &FlatNet) -> FaultOverlay {
        FaultOverlay {
            slot_factor: vec![1.0; net.edge_slot_count()],
            node_down: vec![false; net.node_count()],
            epoch: 0,
            disturbed_slots: 0,
            down_nodes: 0,
        }
    }

    fn is_pristine(&self) -> bool {
        self.disturbed_slots == 0 && self.down_nodes == 0
    }

    fn check_node(&self, node: NodeId) -> Result<usize, NetError> {
        let v = node.0 as usize;
        if v >= self.node_down.len() {
            return Err(NetError::NodeOutOfRange {
                node: node.0,
                nodes: self.node_down.len(),
            });
        }
        Ok(v)
    }

    /// Sets the factor of every slot between `a` and `b` (both
    /// directions) to `factor`; returns how many slots actually changed.
    fn set_pair_factor(&mut self, net: &FlatNet, a: NodeId, b: NodeId, factor: f64) -> usize {
        let mut changed = 0;
        for (v, other) in [(a, b), (b, a)] {
            let (lo, hi) = net.row(v.0 as usize);
            for slot in lo..hi {
                if net.cols()[slot] != other.0 {
                    continue;
                }
                let old = self.slot_factor[slot];
                if old.to_bits() == factor.to_bits() {
                    continue;
                }
                if old == 1.0 {
                    self.disturbed_slots += 1;
                } else if factor == 1.0 {
                    self.disturbed_slots -= 1;
                }
                self.slot_factor[slot] = factor;
                changed += 1;
            }
        }
        changed
    }

    fn apply(&mut self, net: &FlatNet, event: &FaultEvent) -> Result<FaultImpact, NetError> {
        let impact = match *event {
            FaultEvent::LinkCut { a, b } => {
                self.check_node(a)?;
                self.check_node(b)?;
                if self.set_pair_factor(net, a, b, f64::INFINITY) == 0 {
                    FaultImpact::Unchanged
                } else {
                    FaultImpact::Worsened(vec![(a, b)])
                }
            }
            FaultEvent::LinkDegrade { a, b, factor } => {
                self.check_node(a)?;
                self.check_node(b)?;
                if !factor.is_finite() || factor < 1.0 {
                    return Err(NetError::InvalidConfig {
                        parameter: "degrade factor",
                        constraint: ">= 1 and finite (use LinkCut / LinkRestore)",
                    });
                }
                // A degrade may *improve* an already-worse link (e.g.
                // 4.0 → 2.0), so only a first-touch degrade is a pure
                // worsening; anything else is conservatively global.
                let mut pure_worsening = true;
                for (v, other) in [(a, b), (b, a)] {
                    let (lo, hi) = net.row(v.0 as usize);
                    for slot in lo..hi {
                        if net.cols()[slot] == other.0 && self.slot_factor[slot] > factor {
                            pure_worsening = false;
                        }
                    }
                }
                if self.set_pair_factor(net, a, b, factor) == 0 {
                    FaultImpact::Unchanged
                } else if pure_worsening {
                    FaultImpact::Worsened(vec![(a, b)])
                } else {
                    FaultImpact::Global
                }
            }
            FaultEvent::LinkRestore { a, b } => {
                self.check_node(a)?;
                self.check_node(b)?;
                if self.set_pair_factor(net, a, b, 1.0) == 0 {
                    FaultImpact::Unchanged
                } else {
                    FaultImpact::Global
                }
            }
            FaultEvent::NodeDown { node } => {
                let v = self.check_node(node)?;
                if self.node_down[v] {
                    FaultImpact::Unchanged
                } else {
                    self.node_down[v] = true;
                    self.down_nodes += 1;
                    let (lo, hi) = net.row(v);
                    let pairs = net.cols()[lo..hi]
                        .iter()
                        .map(|&nbr| (node, NodeId(nbr)))
                        .collect();
                    FaultImpact::Worsened(pairs)
                }
            }
            FaultEvent::NodeUp { node } => {
                let v = self.check_node(node)?;
                if !self.node_down[v] {
                    FaultImpact::Unchanged
                } else {
                    self.node_down[v] = false;
                    self.down_nodes -= 1;
                    FaultImpact::Global
                }
            }
        };
        if impact != FaultImpact::Unchanged {
            self.epoch += 1;
        }
        Ok(impact)
    }

    /// [`FlatNet::sssp_into`] under the overlay: down nodes and cut slots
    /// are skipped, degraded slots relax with `weight · factor`. With no
    /// active fault the output is bit-identical to the pristine walk.
    fn sssp_into(
        &self,
        net: &FlatNet,
        source: NodeId,
        scratch: &mut DijkstraScratch,
        dist: &mut [f64],
        parent: &mut [u32],
        up_cost: &mut [f64],
    ) {
        if self.is_pristine() {
            net.sssp_into(source, scratch, dist, parent, up_cost);
            return;
        }
        let n = net.node_count();
        assert!((source.0 as usize) < n, "source out of range");
        assert!(dist.len() == n && parent.len() == n && up_cost.len() == n);
        dist.fill(f64::INFINITY);
        parent.fill(NO_PARENT);
        up_cost.fill(0.0);
        if self.node_down[source.0 as usize] {
            // A down source reaches nothing — not even itself.
            return;
        }
        scratch.reset(n);
        let cols = net.cols();
        let weights = net.slot_weights();
        dist[source.0 as usize] = 0.0;
        scratch.push(source.0, dist);
        while let Some(v) = scratch.pop(dist) {
            let (lo, hi) = net.row(v as usize);
            let d = dist[v as usize];
            for slot in lo..hi {
                let nbr = cols[slot] as usize;
                let factor = self.slot_factor[slot];
                if factor.is_infinite() || self.node_down[nbr] {
                    continue;
                }
                let nd = d + weights[slot] * factor;
                if nd < dist[nbr] {
                    dist[nbr] = nd;
                    parent[nbr] = v;
                    scratch.push_or_decrease(nbr as u32, dist);
                }
            }
        }
        for v in 0..n {
            let p = parent[v];
            up_cost[v] = if p == NO_PARENT {
                0.0
            } else {
                dist[v] - dist[p as usize]
            };
        }
    }
}

fn edge_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// Tree-edge → rows incidence: which [`SptTable`] rows' shortest-path
/// trees use a given undirected edge. The precision of fault
/// invalidation — only rows that actually routed over a failed link are
/// rebuilt — comes from this index.
#[derive(Clone, Default, Debug)]
struct TreeIncidence {
    rows: HashMap<(u32, u32), Vec<u32>>,
}

impl TreeIncidence {
    fn index_row(&mut self, row: u32, parent: &[u32]) {
        for (v, &p) in parent.iter().enumerate() {
            if p == NO_PARENT {
                continue;
            }
            self.rows
                .entry(edge_key(v as u32, p))
                .or_default()
                .push(row);
        }
    }

    fn forget_row(&mut self, row: u32, parent: &[u32]) {
        for (v, &p) in parent.iter().enumerate() {
            if p == NO_PARENT {
                continue;
            }
            let key = edge_key(v as u32, p);
            if let Some(rows) = self.rows.get_mut(&key) {
                if let Some(pos) = rows.iter().position(|&r| r == row) {
                    rows.swap_remove(pos);
                }
                if rows.is_empty() {
                    self.rows.remove(&key);
                }
            }
        }
    }

    fn rows_using(&self, a: NodeId, b: NodeId) -> &[u32] {
        self.rows
            .get(&edge_key(a.0, b.0))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Self-healing routing state over an [`SptTable`]: applies
/// [`FaultEvent`]s, invalidates exactly the rows a fault can have
/// touched, and rebuilds them lazily on [`FaultyRouting::heal`].
///
/// # Example
///
/// ```
/// use pubsub_netsim::{
///     DijkstraScratch, FaultEvent, FaultyRouting, FlatNet, Graph, NodeId, SptTable,
/// };
///
/// # fn main() -> Result<(), pubsub_netsim::NetError> {
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 1.0)?;
/// let net = FlatNet::compile(&g);
/// let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
/// let mut routing = FaultyRouting::new(&net, &table);
/// routing.apply(&net, &table, &FaultEvent::LinkCut { a: NodeId(1), b: NodeId(2) })?;
/// routing.heal(&net, &mut table, NodeId(0));
/// assert!(!table.view(NodeId(0)).unwrap().reachable(NodeId(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultyRouting {
    overlay: FaultOverlay,
    incidence: TreeIncidence,
    /// Per table row: `true` when the row may not match the overlay.
    stale: Vec<bool>,
    stale_rows: usize,
    /// Bumped whenever a heal actually changed a row's contents.
    route_generation: u64,
    /// `true` once any state-changing event has ever been applied.
    ever_faulted: bool,
    scratch: DijkstraScratch,
    buf_dist: Vec<f64>,
    buf_parent: Vec<u32>,
    buf_up: Vec<f64>,
}

impl FaultyRouting {
    /// Creates pristine fault state watching `table` (whose existing rows
    /// are indexed into the incidence map).
    pub fn new(net: &FlatNet, table: &SptTable) -> FaultyRouting {
        let mut incidence = TreeIncidence::default();
        for (row, &source) in table.sources().iter().enumerate() {
            let view = table.view(source).expect("listed source has a row");
            incidence.index_row(row as u32, view.raw_parent());
        }
        FaultyRouting {
            overlay: FaultOverlay::new(net),
            incidence,
            stale: vec![false; table.len()],
            stale_rows: 0,
            route_generation: 0,
            ever_faulted: false,
            scratch: DijkstraScratch::new(),
            buf_dist: Vec::new(),
            buf_parent: Vec::new(),
            buf_up: Vec::new(),
        }
    }

    /// Applies one fault event, marking exactly the rows it can have
    /// affected as stale. Returns `true` if the event changed anything.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NodeOutOfRange`] for unknown endpoints and
    /// [`NetError::InvalidConfig`] for a degrade factor below 1.
    pub fn apply(
        &mut self,
        net: &FlatNet,
        table: &SptTable,
        event: &FaultEvent,
    ) -> Result<bool, NetError> {
        self.sync_len(table);
        let impact = self.overlay.apply(net, event)?;
        match impact {
            FaultImpact::Unchanged => return Ok(false),
            FaultImpact::Worsened(pairs) => {
                for (a, b) in pairs {
                    // Clone-free would borrow `self.incidence` across the
                    // `mark_stale` mutation; the row lists are tiny.
                    let rows: Vec<u32> = self.incidence.rows_using(a, b).to_vec();
                    for row in rows {
                        self.mark_stale(row as usize);
                    }
                }
                // A node event also invalidates the node's *own* row:
                // a down source reaches nothing (even an isolated one
                // with no tree edges), and symmetrically on the way up.
                if let FaultEvent::NodeDown { node } | FaultEvent::NodeUp { node } = *event {
                    if let Some(row) = table.row_index(node) {
                        self.mark_stale(row);
                    }
                }
            }
            FaultImpact::Global => {
                for row in 0..self.stale.len() {
                    self.mark_stale(row);
                }
            }
        }
        // NodeUp reports Global, but its own row still needs the
        // explicit mark when the table grew since (sync_len covers it).
        self.ever_faulted = true;
        Ok(true)
    }

    fn mark_stale(&mut self, row: usize) {
        if !self.stale[row] {
            self.stale[row] = true;
            self.stale_rows += 1;
        }
    }

    fn sync_len(&mut self, table: &SptTable) {
        // Rows appended to the table behind our back (the pristine
        // `ensure` path) were computed against the pristine net; they are
        // only trustworthy if no fault is active.
        while self.stale.len() < table.len() {
            let row = self.stale.len();
            let source = table.sources()[row];
            let view = table.view(source).expect("listed source has a row");
            self.incidence.index_row(row as u32, view.raw_parent());
            self.stale.push(false);
            if !self.overlay.is_pristine() {
                self.mark_stale(row);
            }
        }
    }

    /// Ensures `source` has a row and that it matches the current fault
    /// state, rebuilding it in place if it was stale (and appending it if
    /// absent). Returns `true` if the row's contents changed — which is
    /// also exactly when [`FaultyRouting::route_generation`] bumps.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range for the table.
    pub fn heal(&mut self, net: &FlatNet, table: &mut SptTable, source: NodeId) -> bool {
        self.sync_len(table);
        let n = net.node_count();
        match table.row_index(source) {
            Some(row) => {
                if !self.stale[row] {
                    return false;
                }
                self.buf_dist.resize(n, 0.0);
                self.buf_parent.resize(n, 0);
                self.buf_up.resize(n, 0.0);
                self.overlay.sssp_into(
                    net,
                    source,
                    &mut self.scratch,
                    &mut self.buf_dist,
                    &mut self.buf_parent,
                    &mut self.buf_up,
                );
                self.stale[row] = false;
                self.stale_rows -= 1;
                let view = table.view(source).expect("row exists");
                let changed = view
                    .raw_dist()
                    .iter()
                    .zip(&self.buf_dist)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                    || view.raw_parent() != self.buf_parent.as_slice()
                    || view
                        .raw_up_cost()
                        .iter()
                        .zip(&self.buf_up)
                        .any(|(a, b)| a.to_bits() != b.to_bits());
                if !changed {
                    return false;
                }
                let old_parent = view.raw_parent().to_vec();
                self.incidence.forget_row(row as u32, &old_parent);
                let (dist, parent, up) = table.row_slices_mut(source).expect("row exists");
                dist.copy_from_slice(&self.buf_dist);
                parent.copy_from_slice(&self.buf_parent);
                up.copy_from_slice(&self.buf_up);
                self.incidence.index_row(row as u32, &self.buf_parent);
                self.route_generation += 1;
                true
            }
            None => {
                let mut dist = vec![f64::INFINITY; n];
                let mut parent = vec![NO_PARENT; n];
                let mut up = vec![0.0; n];
                self.overlay.sssp_into(
                    net,
                    source,
                    &mut self.scratch,
                    &mut dist,
                    &mut parent,
                    &mut up,
                );
                self.incidence.index_row(table.len() as u32, &parent);
                table.insert_row(source, dist, parent, up);
                self.stale.push(false);
                // A fresh row changes no existing cost: the memo key
                // (route_generation) deliberately stays put.
                true
            }
        }
    }

    /// Heals every row currently in the table.
    pub fn heal_all(&mut self, net: &FlatNet, table: &mut SptTable) {
        let sources: Vec<NodeId> = table.sources().to_vec();
        for source in sources {
            self.heal(net, table, source);
        }
    }

    /// `true` if `node` is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_up(&self, node: NodeId) -> bool {
        !self.overlay.node_down[node.0 as usize]
    }

    /// `true` while no fault is active (all links pristine, all nodes
    /// up). Stale rows may still exist right after the last repair; they
    /// heal back to their pristine contents.
    pub fn is_pristine(&self) -> bool {
        self.overlay.is_pristine()
    }

    /// `true` once any state-changing fault has ever been applied.
    pub fn ever_faulted(&self) -> bool {
        self.ever_faulted
    }

    /// The overlay epoch: bumps on every state-changing event.
    pub fn fault_epoch(&self) -> u64 {
        self.overlay.epoch
    }

    /// Bumps exactly when a heal changed a row — with the snapshot epoch,
    /// this keys the broker's scheme-cost memo, so faults that touch no
    /// live tree (and flapping links that heal back bit-identically…
    /// eventually) do not thrash it.
    pub fn route_generation(&self) -> u64 {
        self.route_generation
    }

    /// Number of rows currently marked stale (diagnostics).
    pub fn stale_rows(&self) -> usize {
        self.stale_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;

    /// 0 —1— 1 —1— 2 —1— 3, plus a 10-cost shortcut 0—3.
    fn line_with_shortcut() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 10.0).unwrap();
        g
    }

    fn faulted_oracle(g: &Graph, cut: &[(u32, u32)], down: &[u32], source: NodeId) -> Vec<f64> {
        // Rebuild the graph from scratch without the failed elements.
        let mut rebuilt = Graph::new(g.node_count());
        for i in 0..g.edge_count() {
            let (a, b, cost) = g.edge(EdgeId(i as u32));
            let k = edge_key(a.0, b.0);
            if cut.iter().any(|&(x, y)| edge_key(x, y) == k) {
                continue;
            }
            if down.contains(&a.0) || down.contains(&b.0) {
                continue;
            }
            rebuilt.add_edge(a, b, cost).unwrap();
        }
        let sp = dijkstra(&rebuilt, source);
        (0..g.node_count() as u32)
            .map(|v| {
                if (down.contains(&source.0) || down.contains(&v)) && v != source.0 {
                    f64::INFINITY
                } else {
                    sp.dist(NodeId(v))
                }
            })
            .collect()
    }

    #[test]
    fn cut_reroutes_and_restore_heals_bit_identically() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let pristine: Vec<u64> = table
            .view(NodeId(0))
            .unwrap()
            .raw_dist()
            .iter()
            .map(|d| d.to_bits())
            .collect();
        let mut routing = FaultyRouting::new(&net, &table);

        let cut = FaultEvent::LinkCut {
            a: NodeId(1),
            b: NodeId(2),
        };
        assert!(routing.apply(&net, &table, &cut).unwrap());
        assert_eq!(routing.stale_rows(), 1);
        assert!(routing.heal(&net, &mut table, NodeId(0)));
        let view = table.view(NodeId(0)).unwrap();
        // 2 and 3 reroute over the 10-cost shortcut.
        assert_eq!(view.dist(NodeId(3)), 10.0);
        assert_eq!(view.dist(NodeId(2)), 11.0);
        assert_eq!(routing.route_generation(), 1);

        let restore = FaultEvent::LinkRestore {
            a: NodeId(1),
            b: NodeId(2),
        };
        assert!(routing.apply(&net, &table, &restore).unwrap());
        assert!(routing.is_pristine());
        routing.heal(&net, &mut table, NodeId(0));
        let healed: Vec<u64> = table
            .view(NodeId(0))
            .unwrap()
            .raw_dist()
            .iter()
            .map(|d| d.to_bits())
            .collect();
        assert_eq!(healed, pristine, "restore heals bit-identically");
    }

    #[test]
    fn non_tree_cut_leaves_row_untouched() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        // The 0—3 shortcut is not on 0's SPT (1+1+1 < 10).
        let cut = FaultEvent::LinkCut {
            a: NodeId(0),
            b: NodeId(3),
        };
        assert!(routing.apply(&net, &table, &cut).unwrap());
        assert_eq!(routing.stale_rows(), 0, "no tree touched the cut edge");
        assert!(!routing.heal(&net, &mut table, NodeId(0)));
        assert_eq!(routing.route_generation(), 0);
        // Cutting it again changes nothing at all.
        assert!(!routing.apply(&net, &table, &cut).unwrap());
    }

    #[test]
    fn node_down_matches_scratch_oracle() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0), NodeId(2)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        let down = FaultEvent::NodeDown { node: NodeId(1) };
        assert!(routing.apply(&net, &table, &down).unwrap());
        routing.heal_all(&net, &mut table);
        for &source in &[NodeId(0), NodeId(2)] {
            let oracle = faulted_oracle(&g, &[], &[1], source);
            let view = table.view(source).unwrap();
            for v in 0..4u32 {
                let got = view.dist(NodeId(v));
                let want = oracle[v as usize];
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_infinite() && want.is_infinite()),
                    "source {source:?} node {v}: {got} vs {want}"
                );
            }
            assert!(!view.reachable(NodeId(1)));
        }
        // The downed node's own row reaches nothing.
        let mut t2 = table.clone();
        routing.heal(&net, &mut t2, NodeId(1));
        let view = t2.view(NodeId(1)).unwrap();
        assert!(!view.reachable(NodeId(1)));
    }

    #[test]
    fn degrade_multiplies_cost_and_validates_factor() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        let bad = FaultEvent::LinkDegrade {
            a: NodeId(0),
            b: NodeId(1),
            factor: 0.5,
        };
        assert!(matches!(
            routing.apply(&net, &table, &bad),
            Err(NetError::InvalidConfig { .. })
        ));
        let degrade = FaultEvent::LinkDegrade {
            a: NodeId(1),
            b: NodeId(2),
            factor: 20.0,
        };
        routing.apply(&net, &table, &degrade).unwrap();
        routing.heal(&net, &mut table, NodeId(0));
        let view = table.view(NodeId(0)).unwrap();
        // 3 now routes over the shortcut; 2 over the shortcut + one hop.
        assert_eq!(view.dist(NodeId(3)), 10.0);
        assert_eq!(view.dist(NodeId(2)), 11.0);
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        let cut = FaultEvent::LinkCut {
            a: NodeId(0),
            b: NodeId(99),
        };
        assert!(matches!(
            routing.apply(&net, &table, &cut),
            Err(NetError::NodeOutOfRange { node: 99, .. })
        ));
        assert_eq!(routing.fault_epoch(), 0);
    }

    #[test]
    fn heal_appends_missing_rows_against_the_overlay() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        routing
            .apply(
                &net,
                &table,
                &FaultEvent::LinkCut {
                    a: NodeId(2),
                    b: NodeId(3),
                },
            )
            .unwrap();
        assert!(routing.heal(&net, &mut table, NodeId(3)));
        let view = table.view(NodeId(3)).unwrap();
        assert_eq!(view.dist(NodeId(0)), 10.0, "new row sees the cut");
    }

    #[test]
    fn rows_added_behind_the_overlays_back_are_suspect() {
        let g = line_with_shortcut();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut routing = FaultyRouting::new(&net, &table);
        routing
            .apply(
                &net,
                &table,
                &FaultEvent::LinkCut {
                    a: NodeId(2),
                    b: NodeId(3),
                },
            )
            .unwrap();
        // Pristine `ensure` appends a row that ignores the cut…
        let mut scratch = DijkstraScratch::new();
        table.ensure(&net, NodeId(3), &mut scratch);
        assert_eq!(table.view(NodeId(3)).unwrap().dist(NodeId(0)), 3.0);
        // …and the next heal detects and fixes it.
        assert!(routing.heal(&net, &mut table, NodeId(3)));
        assert_eq!(table.view(NodeId(3)).unwrap().dist(NodeId(0)), 10.0);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_validated() {
        let g = line_with_shortcut();
        let config = FaultPlanConfig {
            link_failure_fraction: 0.5,
            node_failure_fraction: 0.25,
            horizon: 10,
            repair_after: Some(5),
        };
        let a = FaultPlan::seeded(&g, 7, &config).unwrap();
        let b = FaultPlan::seeded(&g, 7, &config).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // 2 of 4 links + 1 of 4 nodes, each with a repair.
        assert_eq!(a.len(), 6);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let bad = FaultPlanConfig {
            link_failure_fraction: 1.5,
            ..config
        };
        assert!(FaultPlan::seeded(&g, 7, &bad).is_err());
    }

    #[test]
    fn plan_push_keeps_stable_step_order() {
        let mut plan = FaultPlan::new();
        let e1 = FaultEvent::NodeDown { node: NodeId(1) };
        let e2 = FaultEvent::NodeUp { node: NodeId(1) };
        let e3 = FaultEvent::NodeDown { node: NodeId(2) };
        plan.push(5, e1).push(0, e2).push(5, e3);
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![0, 5, 5]);
        assert_eq!(plan.events()[1].event, e1, "same-step order is stable");
        assert_eq!(plan.events()[2].event, e3);
    }
}
