use std::error::Error;
use std::fmt;

/// Errors produced while constructing graphs or topologies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id was out of range for the graph.
    NodeOutOfRange {
        /// The offending node id (raw value).
        node: u32,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A self-loop edge was requested.
    SelfLoop {
        /// The node in question.
        node: u32,
    },
    /// An edge cost was not positive and finite.
    InvalidCost {
        /// The offending cost, rendered as a string.
        cost: String,
    },
    /// A topology configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// A node is unreachable under the current fault state — down
    /// itself, or cut off from the rest of the network.
    Unreachable {
        /// The unreachable node (raw id).
        node: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a graph of {nodes} nodes")
            }
            NetError::SelfLoop { node } => write!(f, "self-loop on node {node} is not allowed"),
            NetError::InvalidCost { cost } => {
                write!(f, "edge cost {cost} must be positive and finite")
            }
            NetError::InvalidConfig {
                parameter,
                constraint,
            } => write!(
                f,
                "invalid configuration: {parameter} must satisfy {constraint}"
            ),
            NetError::Unreachable { node } => {
                write!(f, "node {node} is unreachable under the current faults")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(NetError::SelfLoop { node: 3 }.to_string().contains("3"));
        assert!(NetError::NodeOutOfRange { node: 9, nodes: 5 }
            .to_string()
            .contains("9"));
    }
}
