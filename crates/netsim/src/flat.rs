//! The compiled, immutable network representation: CSR adjacency +
//! precomputed shortest-path-tree tables.
//!
//! [`Graph`] is the *construction* representation — `Vec<Vec<(NodeId,
//! u32)>>` adjacency whose neighbor iteration chases an extra pointer into
//! the edge array per hop. [`FlatNet`] is the *query* representation, in
//! the same spirit as the matching side's `FlatSTree`: one compilation
//! pass packs the adjacency into three flat arrays (classic compressed
//! sparse row), so Dijkstra's inner loop reads each node's neighbors and
//! weights as two contiguous runs.
//!
//! On top of the CSR graph sit two precompute layers:
//!
//! * [`DijkstraScratch`] — a reusable indexed-binary-heap Dijkstra whose
//!   buffers persist across runs, so repeated single-source computations
//!   allocate nothing after warm-up;
//! * [`SptTable`] — dense `dist`/`parent`/`up_cost` rows for a set of
//!   sources (the broker's publishers and rendezvous points), built in
//!   parallel and borrowed per event as a zero-cost [`SptView`].
//!
//! Tie-breaking is identical to [`crate::dijkstra`] (smallest distance,
//! then smallest node id, relaxation on strict improvement in adjacency
//! order), so distances **and** parent trees are bit-for-bit equal to the
//! node-based walk — the property the broker's byte-identical-costs
//! guarantee rests on.

use crate::{Graph, NodeId, ShortestPaths};

/// Sentinel parent index: the source itself and unreachable nodes.
pub const NO_PARENT: u32 = u32::MAX;

/// `pos` sentinel: node never entered the heap.
const NOT_IN_HEAP: u32 = u32::MAX;
/// `pos` sentinel: node was popped (settled).
const SETTLED: u32 = u32::MAX - 1;

/// An immutable compressed-sparse-row compilation of a [`Graph`].
///
/// Each undirected edge occupies one slot in each endpoint's row;
/// per-node slot order equals [`Graph::neighbors`] order (insertion
/// order), including parallel edges.
///
/// # Example
///
/// ```
/// use pubsub_netsim::{dijkstra, FlatNet, DijkstraScratch, Graph, NodeId};
///
/// # fn main() -> Result<(), pubsub_netsim::NetError> {
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 2.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 3.0)?;
/// let net = FlatNet::compile(&g);
/// let mut scratch = DijkstraScratch::new();
/// let sp = net.shortest_paths(NodeId(0), &mut scratch);
/// assert_eq!(sp.dist(NodeId(2)), dijkstra(&g, NodeId(0)).dist(NodeId(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FlatNet {
    nodes: usize,
    /// `row_offsets[v]..row_offsets[v + 1]` indexes `col_indices`/`weights`.
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    weights: Vec<f64>,
}

impl FlatNet {
    /// Compiles a graph into CSR form. `O(V + E)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has ≥ `u32::MAX` nodes or edge slots (far
    /// beyond every topology this crate generates).
    pub fn compile(graph: &Graph) -> FlatNet {
        let n = graph.node_count();
        assert!(n < u32::MAX as usize, "node count exceeds u32 index space");
        let slots = 2 * graph.edge_count();
        assert!(
            slots < u32::MAX as usize,
            "edge count exceeds u32 index space"
        );
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut col_indices = Vec::with_capacity(slots);
        let mut weights = Vec::with_capacity(slots);
        row_offsets.push(0);
        for v in graph.node_ids() {
            for (nbr, cost) in graph.neighbors(v) {
                col_indices.push(nbr.0);
                weights.push(cost);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        FlatNet {
            nodes: n,
            row_offsets,
            col_indices,
            weights,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of directed edge slots (twice the undirected edge count).
    pub fn edge_slot_count(&self) -> usize {
        self.col_indices.len()
    }

    /// Neighbors of `node` with edge costs, in [`Graph::neighbors`] order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = self.row(node.0 as usize);
        self.col_indices[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&c, &w)| (NodeId(c), w))
    }

    #[inline]
    pub(crate) fn row(&self, v: usize) -> (usize, usize) {
        (
            self.row_offsets[v] as usize,
            self.row_offsets[v + 1] as usize,
        )
    }

    /// The raw CSR column array (one entry per directed edge slot).
    pub(crate) fn cols(&self) -> &[u32] {
        &self.col_indices
    }

    /// The raw CSR weight array, parallel to [`FlatNet::cols`].
    pub(crate) fn slot_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Single-source shortest paths into caller-owned dense rows:
    /// `dist[v]` (`+∞` if unreachable), `parent[v]` ([`NO_PARENT`] for the
    /// source and unreachable nodes) and `up_cost[v]`, the cost of `v`'s
    /// SPT parent edge computed as `dist[v] - dist[parent[v]]` — the exact
    /// subtraction the tree-cost walk performs, precomputed once.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or a row slice is not exactly
    /// `node_count` long.
    pub fn sssp_into(
        &self,
        source: NodeId,
        scratch: &mut DijkstraScratch,
        dist: &mut [f64],
        parent: &mut [u32],
        up_cost: &mut [f64],
    ) {
        let n = self.nodes;
        assert!((source.0 as usize) < n, "source out of range");
        assert!(dist.len() == n && parent.len() == n && up_cost.len() == n);
        dist.fill(f64::INFINITY);
        parent.fill(NO_PARENT);
        scratch.reset(n);

        dist[source.0 as usize] = 0.0;
        scratch.push(source.0, dist);
        while let Some(v) = scratch.pop(dist) {
            let (lo, hi) = self.row(v as usize);
            let d = dist[v as usize];
            for slot in lo..hi {
                let nbr = self.col_indices[slot] as usize;
                let nd = d + self.weights[slot];
                if nd < dist[nbr] {
                    dist[nbr] = nd;
                    parent[nbr] = v;
                    scratch.push_or_decrease(nbr as u32, dist);
                }
            }
        }

        for v in 0..n {
            let p = parent[v];
            up_cost[v] = if p == NO_PARENT {
                0.0
            } else {
                dist[v] - dist[p as usize]
            };
        }
    }

    /// Single-source shortest paths as a [`ShortestPaths`] — identical
    /// output to [`crate::dijkstra`], computed on the CSR arrays with the
    /// reusable scratch.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn shortest_paths(&self, source: NodeId, scratch: &mut DijkstraScratch) -> ShortestPaths {
        let n = self.nodes;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_PARENT; n];
        let mut up_cost = vec![0.0; n];
        self.sssp_into(source, scratch, &mut dist, &mut parent, &mut up_cost);
        let parent = parent
            .into_iter()
            .map(|p| (p != NO_PARENT).then_some(NodeId(p)))
            .collect();
        ShortestPaths::from_raw(source, dist, parent)
    }
}

/// Reusable state for CSR Dijkstra: an indexed binary heap (decrease-key
/// instead of the lazy-deletion `Reverse` tuple churn of the node-based
/// walk) whose buffers persist across runs — after the first run on a
/// given graph size, a shortest-path computation allocates nothing.
///
/// The heap orders nodes by `(dist, node id)` ascending, matching the
/// node-based walk's tie-breaking exactly.
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    /// Heap of node ids, ordered by `(dist[id], id)`.
    heap: Vec<u32>,
    /// Node → heap slot, [`NOT_IN_HEAP`] or [`SETTLED`].
    pos: Vec<u32>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.pos.clear();
        self.pos.resize(n, NOT_IN_HEAP);
    }

    #[inline]
    fn less(&self, a: u32, b: u32, dist: &[f64]) -> bool {
        let (da, db) = (dist[a as usize], dist[b as usize]);
        da < db || (da == db && a < b)
    }

    #[inline]
    pub(crate) fn push(&mut self, v: u32, dist: &[f64]) {
        let slot = self.heap.len();
        self.heap.push(v);
        self.pos[v as usize] = slot as u32;
        self.sift_up(slot, dist);
    }

    /// Inserts `v` or restores heap order after its key decreased.
    #[inline]
    pub(crate) fn push_or_decrease(&mut self, v: u32, dist: &[f64]) {
        match self.pos[v as usize] {
            NOT_IN_HEAP => self.push(v, dist),
            // With positive edge costs a settled node never improves.
            SETTLED => debug_assert!(false, "decrease-key on a settled node"),
            slot => self.sift_up(slot as usize, dist),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self, dist: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top as usize] = SETTLED;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, dist);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut slot: usize, dist: &[f64]) {
        while slot > 0 {
            let up = (slot - 1) / 2;
            if self.less(self.heap[slot], self.heap[up], dist) {
                self.swap(slot, up);
                slot = up;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize, dist: &[f64]) {
        loop {
            let mut best = slot;
            for child in [2 * slot + 1, 2 * slot + 2] {
                if child < self.heap.len() && self.less(self.heap[child], self.heap[best], dist) {
                    best = child;
                }
            }
            if best == slot {
                break;
            }
            self.swap(slot, best);
            slot = best;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

/// Precomputed shortest-path-tree rows for a set of sources: for each
/// source, dense `dist` / `parent` / `up_cost` arrays over all nodes, all
/// rows stored contiguously. Replaces the broker's lazy
/// `HashMap<NodeId, ShortestPaths>` cache — lookup is one dense-array
/// load, and the per-event cost walks borrow a [`SptView`] with zero
/// indirection.
#[derive(Clone, Debug)]
pub struct SptTable {
    nodes: usize,
    sources: Vec<NodeId>,
    /// Node → row index, `u32::MAX` when the node is not a source.
    row_of: Vec<u32>,
    dist: Vec<f64>,
    parent: Vec<u32>,
    up_cost: Vec<f64>,
}

impl SptTable {
    /// Builds the table for `sources` (duplicates collapse), computing
    /// rows in parallel on the scoped `pubsub-parallel` pool (`None` =
    /// available parallelism). Each worker owns one [`DijkstraScratch`].
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range for `net`.
    pub fn build(net: &FlatNet, sources: &[NodeId], threads: Option<usize>) -> SptTable {
        let mut table = SptTable::empty(net.node_count());
        let mut todo: Vec<NodeId> = Vec::new();
        for &s in sources {
            assert!((s.0 as usize) < net.node_count(), "source out of range");
            if !todo.contains(&s) {
                todo.push(s);
            }
        }
        let workers = pubsub_parallel::effective_threads(threads);
        let rows = pubsub_parallel::map_with_scratch(
            &todo,
            workers,
            DijkstraScratch::new,
            |&source, scratch| {
                let n = net.node_count();
                let mut dist = vec![f64::INFINITY; n];
                let mut parent = vec![NO_PARENT; n];
                let mut up_cost = vec![0.0; n];
                net.sssp_into(source, scratch, &mut dist, &mut parent, &mut up_cost);
                (dist, parent, up_cost)
            },
        );
        for (source, (dist, parent, up_cost)) in todo.into_iter().zip(rows) {
            table.insert_row(source, dist, parent, up_cost);
        }
        table
    }

    fn empty(nodes: usize) -> SptTable {
        SptTable {
            nodes,
            sources: Vec::new(),
            row_of: vec![u32::MAX; nodes],
            dist: Vec::new(),
            parent: Vec::new(),
            up_cost: Vec::new(),
        }
    }

    pub(crate) fn insert_row(
        &mut self,
        source: NodeId,
        dist: Vec<f64>,
        parent: Vec<u32>,
        up_cost: Vec<f64>,
    ) {
        debug_assert_eq!(dist.len(), self.nodes);
        self.row_of[source.0 as usize] = self.sources.len() as u32;
        self.sources.push(source);
        self.dist.extend(dist);
        self.parent.extend(parent);
        self.up_cost.extend(up_cost);
    }

    /// Ensures `source` has a row, computing it with `scratch` if absent
    /// (the broker's `publish_from` path for a publisher not seen at
    /// build time).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn ensure(&mut self, net: &FlatNet, source: NodeId, scratch: &mut DijkstraScratch) {
        assert!((source.0 as usize) < self.nodes, "source out of range");
        if self.contains(source) {
            return;
        }
        let n = self.nodes;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_PARENT; n];
        let mut up_cost = vec![0.0; n];
        net.sssp_into(source, scratch, &mut dist, &mut parent, &mut up_cost);
        self.insert_row(source, dist, parent, up_cost);
    }

    /// `true` if the table has a row for `source`.
    pub fn contains(&self, source: NodeId) -> bool {
        (source.0 as usize) < self.nodes && self.row_of[source.0 as usize] != u32::MAX
    }

    /// The row index of `source`, if present. Rows are append-only, so
    /// the index is stable for the table's lifetime.
    pub(crate) fn row_index(&self, source: NodeId) -> Option<usize> {
        if !self.contains(source) {
            return None;
        }
        Some(self.row_of[source.0 as usize] as usize)
    }

    /// Mutable access to one row's `dist`/`parent`/`up_cost` slices — the
    /// in-place rebuild path of the self-healing fault layer.
    pub(crate) fn row_slices_mut(
        &mut self,
        source: NodeId,
    ) -> Option<(&mut [f64], &mut [u32], &mut [f64])> {
        let row = self.row_index(source)?;
        let (lo, hi) = (row * self.nodes, (row + 1) * self.nodes);
        Some((
            &mut self.dist[lo..hi],
            &mut self.parent[lo..hi],
            &mut self.up_cost[lo..hi],
        ))
    }

    /// Borrows the SPT rooted at `source`, or `None` if absent.
    pub fn view(&self, source: NodeId) -> Option<SptView<'_>> {
        if !self.contains(source) {
            return None;
        }
        let row = self.row_of[source.0 as usize] as usize;
        let (lo, hi) = (row * self.nodes, (row + 1) * self.nodes);
        Some(SptView {
            source,
            dist: &self.dist[lo..hi],
            parent: &self.parent[lo..hi],
            up_cost: &self.up_cost[lo..hi],
        })
    }

    /// The sources with precomputed rows, in insertion order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Number of precomputed rows.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// `true` if no rows have been computed.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Number of nodes each row covers.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

/// A borrowed shortest-path tree: one [`SptTable`] row. `Copy` — pass it
/// by value into the cost walks.
#[derive(Clone, Copy, Debug)]
pub struct SptView<'a> {
    source: NodeId,
    dist: &'a [f64],
    parent: &'a [u32],
    up_cost: &'a [f64],
}

impl<'a> SptView<'a> {
    /// The source node of this tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node` (`+∞` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn dist(&self, node: NodeId) -> f64 {
        self.dist[node.0 as usize]
    }

    /// The parent of `node` in the SPT (`None` for the source and for
    /// unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent[node.0 as usize];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Cost of `node`'s parent edge (`dist(node) - dist(parent)`,
    /// precomputed; `0` for the source and unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn up_cost(&self, node: NodeId) -> f64 {
        self.up_cost[node.0 as usize]
    }

    /// `true` if `node` is reachable from the source.
    #[inline]
    pub fn reachable(&self, node: NodeId) -> bool {
        self.dist[node.0 as usize].is_finite()
    }

    /// Number of nodes the row covers.
    pub fn node_count(&self) -> usize {
        self.dist.len()
    }

    pub(crate) fn raw_parent(&self) -> &'a [u32] {
        self.parent
    }

    pub(crate) fn raw_dist(&self) -> &'a [f64] {
        self.dist
    }

    pub(crate) fn raw_up_cost(&self) -> &'a [f64] {
        self.up_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;

    fn diamond() -> Graph {
        // Two equal-cost routes 0→3 (via 1 and via 2): a distance tie, so
        // the parent tree depends on tie-breaking.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    fn assert_same_spt(g: &Graph, source: NodeId) {
        let net = FlatNet::compile(g);
        let mut scratch = DijkstraScratch::new();
        let flat = net.shortest_paths(source, &mut scratch);
        let node = dijkstra(g, source);
        for v in g.node_ids() {
            assert!(
                flat.dist(v).to_bits() == node.dist(v).to_bits()
                    || (flat.dist(v).is_infinite() && node.dist(v).is_infinite()),
                "dist mismatch at {v}"
            );
            assert_eq!(flat.parent(v), node.parent(v), "parent mismatch at {v}");
        }
    }

    #[test]
    fn csr_preserves_adjacency_order_and_weights() {
        let g = diamond();
        let net = FlatNet::compile(&g);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.edge_slot_count(), 8);
        for v in g.node_ids() {
            let flat: Vec<_> = net.neighbors(v).collect();
            let node: Vec<_> = g.neighbors(v).collect();
            assert_eq!(flat, node);
        }
    }

    #[test]
    fn flat_dijkstra_matches_node_walk_including_ties() {
        assert_same_spt(&diamond(), NodeId(0));
        assert_same_spt(&diamond(), NodeId(3));
    }

    #[test]
    fn scratch_is_reusable_across_runs_and_graphs() {
        let g1 = diamond();
        let mut g2 = Graph::new(6);
        for i in 0..5u32 {
            g2.add_edge(NodeId(i), NodeId(i + 1), f64::from(i) + 0.5)
                .unwrap();
        }
        let n1 = FlatNet::compile(&g1);
        let n2 = FlatNet::compile(&g2);
        let mut scratch = DijkstraScratch::new();
        for _ in 0..3 {
            let a = n1.shortest_paths(NodeId(1), &mut scratch);
            assert_eq!(a.dist(NodeId(3)), dijkstra(&g1, NodeId(1)).dist(NodeId(3)));
            let b = n2.shortest_paths(NodeId(5), &mut scratch);
            assert_eq!(b.dist(NodeId(0)), dijkstra(&g2, NodeId(5)).dist(NodeId(0)));
        }
    }

    #[test]
    fn unreachable_nodes_have_no_parent_and_zero_up_cost() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = FlatNet::compile(&g);
        let table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let view = table.view(NodeId(0)).unwrap();
        assert!(!view.reachable(NodeId(2)));
        assert_eq!(view.parent(NodeId(2)), None);
        assert_eq!(view.up_cost(NodeId(2)), 0.0);
        assert_eq!(view.parent(NodeId(0)), None);
        assert_eq!(view.up_cost(NodeId(1)), 1.0);
    }

    #[test]
    fn table_build_dedups_and_matches_individual_runs() {
        let g = diamond();
        let net = FlatNet::compile(&g);
        let sources = [NodeId(0), NodeId(2), NodeId(0)];
        for threads in [Some(1), Some(3), None] {
            let table = SptTable::build(&net, &sources, threads);
            assert_eq!(table.len(), 2);
            assert_eq!(table.sources(), &[NodeId(0), NodeId(2)]);
            assert_eq!(table.node_count(), 4);
            assert!(!table.is_empty());
            for &s in table.sources() {
                let view = table.view(s).unwrap();
                let oracle = dijkstra(&g, s);
                for v in g.node_ids() {
                    assert_eq!(view.dist(v), oracle.dist(v));
                    assert_eq!(view.parent(v), oracle.parent(v));
                }
            }
            assert!(table.view(NodeId(3)).is_none());
        }
    }

    #[test]
    fn ensure_extends_the_table_lazily() {
        let g = diamond();
        let net = FlatNet::compile(&g);
        let mut table = SptTable::build(&net, &[NodeId(0)], Some(1));
        let mut scratch = DijkstraScratch::new();
        assert!(!table.contains(NodeId(3)));
        table.ensure(&net, NodeId(3), &mut scratch);
        table.ensure(&net, NodeId(3), &mut scratch); // idempotent
        assert_eq!(table.len(), 2);
        let view = table.view(NodeId(3)).unwrap();
        assert_eq!(view.source(), NodeId(3));
        assert_eq!(view.dist(NodeId(0)), 2.0);
    }
}
