use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NetError;

/// Identifier of a network node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected edge (its index in insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Edge {
    a: NodeId,
    b: NodeId,
    cost: f64,
}

/// An undirected graph with positive edge costs: the paper's network
/// `G = (V, E)` with communication costs `c_e ≥ 0` (we require strictly
/// positive costs so shortest paths are well defined without zero-cycles).
///
/// # Example
///
/// ```
/// use pubsub_netsim::{Graph, NodeId};
///
/// # fn main() -> Result<(), pubsub_netsim::NetError> {
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 2.0)?;
/// g.add_edge(NodeId(1), NodeId(2), 3.0)?;
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    nodes: usize,
    edges: Vec<Edge>,
    /// adjacency: per node, (neighbor, edge index)
    adj: Vec<Vec<(NodeId, u32)>>,
}

impl Graph {
    /// Creates a graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        Graph {
            nodes,
            edges: Vec::new(),
            adj: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes as u32).map(NodeId)
    }

    /// Adds an undirected edge, returning its id. Parallel edges are
    /// permitted (shortest paths simply ignore the costlier one).
    ///
    /// # Errors
    ///
    /// * [`NetError::NodeOutOfRange`] if either endpoint is invalid;
    /// * [`NetError::SelfLoop`] if the endpoints coincide;
    /// * [`NetError::InvalidCost`] unless `cost` is positive and finite.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, cost: f64) -> Result<EdgeId, NetError> {
        for n in [a, b] {
            if n.0 as usize >= self.nodes {
                return Err(NetError::NodeOutOfRange {
                    node: n.0,
                    nodes: self.nodes,
                });
            }
        }
        if a == b {
            return Err(NetError::SelfLoop { node: a.0 });
        }
        if !(cost > 0.0 && cost.is_finite()) {
            return Err(NetError::InvalidCost {
                cost: cost.to_string(),
            });
        }
        let id = self.edges.len() as u32;
        self.edges.push(Edge { a, b, cost });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        Ok(EdgeId(id))
    }

    /// Neighbors of `node` with the connecting edge's cost.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.adj[node.0 as usize]
            .iter()
            .map(move |&(n, e)| (n, self.edges[e as usize].cost))
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.0 as usize].len()
    }

    /// The endpoints and cost of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> (NodeId, NodeId, f64) {
        let e = &self.edges[id.0 as usize];
        (e.a, e.b, e.cost)
    }

    /// Sum of all edge costs.
    pub fn total_cost(&self) -> f64 {
        self.edges.iter().map(|e| e.cost).sum()
    }

    /// `true` if every node is reachable from node 0 (vacuously true for
    /// empty graphs).
    pub fn is_connected(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(n, _) in &self.adj[v.0 as usize] {
                if !seen[n.0 as usize] {
                    seen[n.0 as usize] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.nodes
    }

    /// Mean node degree (`0` for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut g = Graph::new(4);
        let e = g.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.5).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(e), (NodeId(0), NodeId(1), 1.5));
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.degree(NodeId(3)), 0);
        assert_eq!(g.total_cost(), 4.0);
        assert_eq!(g.avg_degree(), 1.0);
        let nbrs: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(nbrs, vec![(NodeId(0), 1.5), (NodeId(2), 2.5)]);
    }

    #[test]
    fn edge_validation() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(NetError::NodeOutOfRange { node: 5, nodes: 2 })
        ));
        assert!(matches!(
            g.add_edge(NodeId(1), NodeId(1), 1.0),
            Err(NetError::SelfLoop { node: 1 })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), 0.0),
            Err(NetError::InvalidCost { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(NetError::InvalidCost { .. })
        ));
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::new(3);
        assert!(!g.is_connected());
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(!g.is_connected());
        g.add_edge(NodeId(2), NodeId(1), 1.0).unwrap();
        assert!(g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }
}
