//! The clustering output: the event-space partition `S_1..S_n` plus the
//! catch-all `S_0`.

use pubsub_geom::{CellId, Grid, Point};
use serde::{Deserialize, Serialize};

use crate::ClusterError;

/// A partition of the event space into `n` group regions and the implicit
/// remainder `S_0 = Ω \ ∪S_q`.
///
/// Each region `S_q` is a union of grid cells; a published event maps to a
/// group by locating its cell. Events outside the grid, or in cells not
/// assigned to any group, belong to `S_0` (delivered by unicast).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpacePartition {
    grid: Grid,
    /// Per cell: group index, or `u32::MAX` for `S_0`.
    assignment: Vec<u32>,
    groups: usize,
}

const UNASSIGNED: u32 = u32::MAX;

impl SpacePartition {
    /// Builds a partition from per-group cell lists.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if a cell id is out of range
    /// for the grid or appears in more than one group (the `S_q` must be
    /// non-overlapping).
    pub fn from_clusters(grid: Grid, clusters: &[Vec<CellId>]) -> Result<Self, ClusterError> {
        let mut assignment = vec![UNASSIGNED; grid.cell_count()];
        for (q, cells) in clusters.iter().enumerate() {
            for &cell in cells {
                if cell.0 >= assignment.len() {
                    return Err(ClusterError::InvalidConfig {
                        parameter: "clusters",
                        constraint: "cell ids must be within the grid",
                    });
                }
                if assignment[cell.0] != UNASSIGNED {
                    return Err(ClusterError::InvalidConfig {
                        parameter: "clusters",
                        constraint: "groups must be disjoint",
                    });
                }
                assignment[cell.0] = q as u32;
            }
        }
        Ok(SpacePartition {
            grid,
            assignment,
            groups: clusters.len(),
        })
    }

    /// The grid the partition is defined over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of groups `n` (not counting `S_0`).
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// The group whose region contains the event, or `None` for `S_0`.
    pub fn group_of_point(&self, p: &Point) -> Option<usize> {
        let cell = self.grid.cell_of_point(p)?;
        self.group_of_cell(cell)
    }

    /// The group a cell is assigned to, or `None` for `S_0`.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range.
    pub fn group_of_cell(&self, cell: CellId) -> Option<usize> {
        match self.assignment[cell.0] {
            UNASSIGNED => None,
            q => Some(q as usize),
        }
    }

    /// The cells of group `q`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.group_count()`.
    pub fn cells_of_group(&self, q: usize) -> Vec<CellId> {
        assert!(q < self.groups, "group index out of range");
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == q as u32)
            .map(|(i, _)| CellId(i))
            .collect()
    }

    /// Number of cells assigned to any group (the rest are `S_0`).
    pub fn assigned_cell_count(&self) -> usize {
        self.assignment.iter().filter(|&&a| a != UNASSIGNED).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Rect;

    fn grid() -> Grid {
        Grid::uniform(Rect::from_corners(&[0.0, 0.0], &[4.0, 4.0]).unwrap(), 2).unwrap()
    }

    #[test]
    fn point_lookup_respects_assignment() {
        let g = grid();
        let c00 = g.id_of_coords(&[0, 0]);
        let c11 = g.id_of_coords(&[1, 1]);
        let part = SpacePartition::from_clusters(g, &[vec![c00], vec![c11]]).unwrap();
        assert_eq!(part.group_count(), 2);
        let p = Point::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(part.group_of_point(&p), Some(0));
        let p2 = Point::new(vec![3.0, 3.0]).unwrap();
        assert_eq!(part.group_of_point(&p2), Some(1));
        // Unassigned cell -> S0.
        let p3 = Point::new(vec![3.0, 1.0]).unwrap();
        assert_eq!(part.group_of_point(&p3), None);
        // Outside the grid -> S0.
        let p4 = Point::new(vec![100.0, 100.0]).unwrap();
        assert_eq!(part.group_of_point(&p4), None);
    }

    #[test]
    fn overlap_and_range_checks() {
        let g = grid();
        let c = g.id_of_coords(&[0, 0]);
        assert!(SpacePartition::from_clusters(g.clone(), &[vec![c], vec![c]]).is_err());
        assert!(SpacePartition::from_clusters(g, &[vec![CellId(999)]]).is_err());
    }

    #[test]
    fn cells_of_group_and_counts() {
        let g = grid();
        let cells = vec![g.id_of_coords(&[0, 0]), g.id_of_coords(&[0, 1])];
        let part = SpacePartition::from_clusters(g, &[cells.clone(), vec![]]).unwrap();
        let mut want = cells;
        want.sort();
        assert_eq!(part.cells_of_group(0), want);
        assert!(part.cells_of_group(1).is_empty());
        assert_eq!(part.assigned_cell_count(), 2);
    }

    #[test]
    #[should_panic(expected = "group index out of range")]
    fn cells_of_group_out_of_range_panics() {
        let part = SpacePartition::from_clusters(grid(), &[]).unwrap();
        let _ = part.cells_of_group(0);
    }
}
