//! Incremental group maintenance under subscription churn (extension).
//!
//! The paper takes the clustering as a static preprocessing step; its
//! related work (Wong/Katz/McCanne) stresses that production systems need
//! *initial + incremental* algorithms "to retain high quality in the
//! presence of ongoing and inevitable changes". This module provides that
//! incremental half:
//!
//! * subscription inserts/removals update per-cell membership
//!   *refcounts* (a subscriber leaves a cell's list `l(g)` only when its
//!   last covering subscription goes away);
//! * the partition is refreshed *locally*: surviving working-set cells
//!   keep their group, newly-hot cells join their closest group by the
//!   expected-waste distance, cooled-off cells drop to `S_0`;
//! * after enough churn accumulates, a full re-clustering runs to undo
//!   drift (threshold configurable).
//!
//! This is no longer an unwired island: `pubsub_core::Broker` drives an
//! `IncrementalClusterer` from its `subscribe`/`unsubscribe` path — every
//! registry change is mirrored here, periodic local refreshes rebuild the
//! broker's multicast groups from the refcounted memberships
//! ([`IncrementalClusterer::cell_refcounts`]), and
//! [`IncrementalClusterer::needs_full_recluster`] is the drift trigger for
//! a full engine-snapshot recompile (after which the broker hands the
//! freshly compiled partition back via
//! [`IncrementalClusterer::adopt_partition`]).

use std::collections::HashMap;
use std::fmt;

use pubsub_geom::{CellId, Grid, Rect};
use serde::{Deserialize, Serialize};

use crate::ew::GroupState;
use crate::{cluster, ClusterError, ClusteringConfig, GridModel, SpacePartition, SubscriberSet};

/// Handle identifying one inserted subscription (for later removal).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SubscriptionHandle(u64);

impl fmt::Display for SubscriptionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handle#{}", self.0)
    }
}

/// Counters describing how the clusterer has been maintaining itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MaintenanceStats {
    /// Full re-clusterings performed.
    pub full_reclusters: usize,
    /// Local (assign-new-cells-only) refreshes performed.
    pub local_updates: usize,
    /// Inserts since construction.
    pub inserts: u64,
    /// Removals since construction.
    pub removals: u64,
}

/// Maintains a [`SpacePartition`] under subscription churn.
///
/// # Example
///
/// ```
/// use pubsub_clustering::{
///     ClusteringAlgorithm, ClusteringConfig, IncrementalClusterer,
/// };
/// use pubsub_geom::{Grid, Rect};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = Grid::uniform(Rect::from_corners(&[0.0], &[10.0])?, 10)?;
/// let mut inc = IncrementalClusterer::new(
///     grid,
///     4, // subscribers
///     |_r| 0.1,
///     ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2),
///     0.5, // full re-cluster after 50% churn
/// )?;
/// let h = inc.insert(0, Rect::from_corners(&[0.0], &[3.0])?)?;
/// inc.insert(1, Rect::from_corners(&[6.0], &[10.0])?)?;
/// let partition = inc.partition()?;
/// assert!(partition.group_count() >= 1);
/// inc.remove(h)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalClusterer {
    grid: Grid,
    subscriber_count: usize,
    masses: Vec<f64>,
    /// Per cell: subscriber -> number of covering live subscriptions.
    refcounts: Vec<HashMap<usize, u32>>,
    subscriptions: HashMap<SubscriptionHandle, (usize, Rect)>,
    next_handle: u64,
    config: ClusteringConfig,
    /// Current clusters as cell lists (empty until first `partition()`).
    clusters: Vec<Vec<CellId>>,
    have_clustered: bool,
    /// Churn since the last full re-cluster, as a count of subscription
    /// changes.
    churn: usize,
    /// Full re-cluster when `churn > recluster_fraction * live_subs`.
    recluster_fraction: f64,
    stats: MaintenanceStats,
}

impl IncrementalClusterer {
    /// Creates an empty incremental clusterer.
    ///
    /// `density` is evaluated once per cell (publication behaviour is
    /// assumed stationary; re-create the clusterer if it changes).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDensity`] for negative/non-finite
    /// masses and [`ClusterError::InvalidConfig`] for a non-positive
    /// `recluster_fraction`.
    pub fn new<F>(
        grid: Grid,
        subscriber_count: usize,
        density: F,
        config: ClusteringConfig,
        recluster_fraction: f64,
    ) -> Result<Self, ClusterError>
    where
        F: Fn(&Rect) -> f64,
    {
        if !(recluster_fraction > 0.0 && recluster_fraction.is_finite()) {
            return Err(ClusterError::InvalidConfig {
                parameter: "recluster_fraction",
                constraint: "0 < fraction < inf",
            });
        }
        let mut masses = Vec::with_capacity(grid.cell_count());
        for i in 0..grid.cell_count() {
            let m = density(&grid.cell_rect(CellId(i)));
            if !(m >= 0.0 && m.is_finite()) {
                return Err(ClusterError::InvalidDensity {
                    value: m.to_string(),
                });
            }
            masses.push(m);
        }
        Ok(IncrementalClusterer {
            refcounts: vec![HashMap::new(); grid.cell_count()],
            grid,
            subscriber_count,
            masses,
            subscriptions: HashMap::new(),
            next_handle: 0,
            config,
            clusters: Vec::new(),
            have_clustered: false,
            churn: 0,
            recluster_fraction,
            stats: MaintenanceStats::default(),
        })
    }

    /// The subscriber-index capacity the clusterer was created with.
    pub fn subscriber_count(&self) -> usize {
        self.subscriber_count
    }

    /// Registers a subscription; returns the handle used to remove it.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::SubscriberOutOfRange`] for a bad subscriber
    ///   index;
    /// * [`ClusterError::DimensionMismatch`] for a rectangle of the wrong
    ///   dimensionality.
    pub fn insert(
        &mut self,
        subscriber: usize,
        rect: Rect,
    ) -> Result<SubscriptionHandle, ClusterError> {
        if subscriber >= self.subscriber_count {
            return Err(ClusterError::SubscriberOutOfRange {
                subscriber,
                count: self.subscriber_count,
            });
        }
        if rect.dims() != self.grid.dims() {
            return Err(ClusterError::DimensionMismatch {
                expected: self.grid.dims(),
                got: rect.dims(),
            });
        }
        let clamped = rect.clamp_to(self.grid.bounds());
        for cell in self.grid.cells_intersecting(&clamped) {
            *self.refcounts[cell.0].entry(subscriber).or_insert(0) += 1;
        }
        let handle = SubscriptionHandle(self.next_handle);
        self.next_handle += 1;
        self.subscriptions.insert(handle, (subscriber, clamped));
        self.churn += 1;
        self.stats.inserts += 1;
        Ok(handle)
    }

    /// Removes a previously inserted subscription.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for an unknown handle.
    pub fn remove(&mut self, handle: SubscriptionHandle) -> Result<(), ClusterError> {
        let (subscriber, rect) =
            self.subscriptions
                .remove(&handle)
                .ok_or(ClusterError::InvalidConfig {
                    parameter: "handle",
                    constraint: "handle must refer to a live subscription",
                })?;
        for cell in self.grid.cells_intersecting(&rect) {
            if let Some(count) = self.refcounts[cell.0].get_mut(&subscriber) {
                *count -= 1;
                if *count == 0 {
                    self.refcounts[cell.0].remove(&subscriber);
                }
            }
        }
        self.churn += 1;
        self.stats.removals += 1;
        Ok(())
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// `true` if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// `true` if the next [`IncrementalClusterer::partition`] call would
    /// run a full re-cluster (drift threshold exceeded, or never
    /// clustered).
    ///
    /// Owners that rebuild the whole engine on re-cluster (the core
    /// broker) use this as their recompile trigger instead of calling
    /// `partition` and discovering the rebuild after the fact.
    pub fn needs_full_recluster(&self) -> bool {
        let live = self.subscriptions.len().max(1);
        !self.have_clustered || self.churn as f64 > self.recluster_fraction * live as f64
    }

    /// Churn accumulated since the last full re-cluster (or adoption).
    pub fn churn(&self) -> usize {
        self.churn
    }

    /// Adopts an externally computed partition as the current clustering
    /// state, resetting accumulated churn.
    ///
    /// The core broker calls this after a full engine recompile: the
    /// freshly compiled [`SpacePartition`] becomes the baseline that
    /// subsequent local updates refine, so the clusterer and the compiled
    /// engine agree on the group layout.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the partition's grid
    /// does not match this clusterer's grid.
    pub fn adopt_partition(&mut self, partition: &SpacePartition) -> Result<(), ClusterError> {
        if partition.grid().cell_count() != self.grid.cell_count()
            || partition.grid().dims() != self.grid.dims()
        {
            return Err(ClusterError::InvalidConfig {
                parameter: "partition",
                constraint: "partition grid must match the clusterer grid",
            });
        }
        self.clusters = (0..partition.group_count())
            .map(|q| partition.cells_of_group(q))
            .collect();
        self.have_clustered = true;
        self.churn = 0;
        Ok(())
    }

    /// Iterates `(subscriber, live-subscription count)` pairs for one
    /// cell's refcounted membership (arbitrary order).
    ///
    /// This is the raw form of what [`IncrementalClusterer::model`]
    /// aggregates into [`SubscriberSet`]s; the core broker reads it to
    /// rebuild per-group member lists without materializing a full model.
    pub fn cell_refcounts(&self, cell: CellId) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.refcounts[cell.0].iter().map(|(&s, &c)| (s, c))
    }

    /// The `t` heaviest non-empty cells by `mass · |members|`, decreasing,
    /// ties toward lower ids — identical selection to
    /// [`GridModel::top_cells`], computed from the refcounts without
    /// materializing membership sets.
    fn top_cells_from_refcounts(&self, t: usize) -> Vec<CellId> {
        let weight = |c: CellId| self.masses[c.0] * self.refcounts[c.0].len() as f64;
        let cmp =
            |&a: &CellId, &b: &CellId| weight(b).total_cmp(&weight(a)).then_with(|| a.cmp(&b));
        let mut cells: Vec<CellId> = (0..self.grid.cell_count())
            .map(CellId)
            .filter(|&c| !self.refcounts[c.0].is_empty())
            .collect();
        // The comparator is a total order, so selecting the top `t` and
        // sorting just those yields the same prefix as a full sort.
        if t == 0 {
            return Vec::new();
        }
        if cells.len() > t {
            cells.select_nth_unstable_by(t - 1, cmp);
            cells.truncate(t);
        }
        cells.sort_unstable_by(cmp);
        cells
    }

    /// A [`GridModel`] whose membership sets are materialized only for
    /// `cells`; every other cell reads as empty. Sound only when the
    /// consumer inspects no cell outside `cells` (the local-update path).
    fn sparse_model(&self, cells: &[CellId]) -> GridModel {
        // Untouched cells get zero-capacity sets: no per-cell bitset
        // allocation, and `is_empty()` still reads correctly. Only the
        // listed cells materialize full-width membership.
        let mut members: Vec<SubscriberSet> = (0..self.grid.cell_count())
            .map(|_| SubscriberSet::new(0))
            .collect();
        for &c in cells {
            let mut set = SubscriberSet::new(self.subscriber_count);
            for &s in self.refcounts[c.0].keys() {
                set.insert(s);
            }
            members[c.0] = set;
        }
        GridModel::from_parts_sparse(
            self.grid.clone(),
            self.subscriber_count,
            self.masses.clone(),
            members,
        )
    }

    /// Builds the current [`GridModel`] from the refcounted memberships.
    pub fn model(&self) -> GridModel {
        let members: Vec<SubscriberSet> = self
            .refcounts
            .iter()
            .map(|counts| {
                let mut set = SubscriberSet::new(self.subscriber_count);
                for &s in counts.keys() {
                    set.insert(s);
                }
                set
            })
            .collect();
        GridModel::from_parts(
            self.grid.clone(),
            self.subscriber_count,
            self.masses.clone(),
            members,
        )
        .expect("parts are constructed consistently")
    }

    /// Returns the current partition, refreshing it first:
    ///
    /// * a **full re-cluster** on the first call and whenever accumulated
    ///   churn exceeds `recluster_fraction · live_subscriptions`;
    /// * otherwise a **local update** — surviving working-set cells keep
    ///   their groups, new cells join the group with the smallest
    ///   expected-waste increase, departed cells fall back to `S_0`.
    ///
    /// # Errors
    ///
    /// Propagates clustering configuration errors.
    pub fn partition(&mut self) -> Result<SpacePartition, ClusterError> {
        let live = self.subscriptions.len().max(1);
        let need_full =
            !self.have_clustered || self.churn as f64 > self.recluster_fraction * live as f64;
        if need_full {
            let model = self.model();
            let partition = cluster(&model, &self.config)?;
            self.clusters = (0..partition.group_count())
                .map(|q| partition.cells_of_group(q))
                .collect();
            self.have_clustered = true;
            self.churn = 0;
            self.stats.full_reclusters += 1;
            return Ok(partition);
        }

        // Local update. The working set is selected straight from the
        // refcounts (same weight, same ordering as `GridModel::top_cells`)
        // and the model materializes membership sets only for the cells
        // the update actually inspects — the working set plus the current
        // cluster cells — instead of filling every grid cell. This keeps
        // the refresh cost proportional to the working set, not to the
        // total (cell, subscriber) incidence count.
        let working: Vec<CellId> = self.top_cells_from_refcounts(self.config.max_cells());
        let touched: Vec<CellId> = working
            .iter()
            .copied()
            .chain(self.clusters.iter().flatten().copied())
            .collect();
        let model = self.sparse_model(&touched);
        let mut working_sorted = working.clone();
        working_sorted.sort_unstable();
        let in_working = |c: CellId| working_sorted.binary_search(&c).is_ok();

        // Keep surviving cells; drop departed ones.
        let mut assigned: Vec<CellId> = Vec::new();
        for cells in &mut self.clusters {
            cells.retain(|&c| in_working(c) && !model.members(c).is_empty());
            assigned.extend_from_slice(cells);
        }
        assigned.sort_unstable();
        // Assign new working-set cells to the closest group.
        let mut groups: Vec<GroupState> = self
            .clusters
            .iter()
            .map(|cells| GroupState::from_cells(&model, cells))
            .collect();
        for &cell in &working {
            if assigned.binary_search(&cell).is_ok() {
                continue;
            }
            // Prefer non-empty groups; an empty group adopts the cell only
            // when every group is empty.
            let mut best: Option<(usize, f64)> = None;
            for (q, g) in groups.iter().enumerate() {
                if g.is_empty() {
                    continue;
                }
                let d = g.distance_to(&model, cell);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((q, d));
                }
            }
            let q = best
                .map(|(q, _)| q)
                .or_else(|| (!groups.is_empty()).then_some(0));
            if let Some(q) = q {
                groups[q].add(&model, cell);
                self.clusters[q].push(cell);
            }
        }
        self.stats.local_updates += 1;
        SpacePartition::from_clusters(self.grid.clone(), &self.clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusteringAlgorithm;
    use pubsub_geom::Point;

    fn clusterer(n: usize) -> IncrementalClusterer {
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[10.0]).unwrap(), 10).unwrap();
        IncrementalClusterer::new(
            grid,
            8,
            |_| 0.1,
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, n),
            0.5,
        )
        .unwrap()
    }

    fn rect(lo: f64, hi: f64) -> Rect {
        Rect::from_corners(&[lo], &[hi]).unwrap()
    }

    #[test]
    fn insert_remove_roundtrip_restores_model() {
        let mut inc = clusterer(2);
        let baseline = inc.model();
        let h = inc.insert(3, rect(2.0, 5.0)).unwrap();
        assert_eq!(inc.len(), 1);
        let with = inc.model();
        assert!(with
            .members(
                with.grid()
                    .cell_of_point(&Point::new(vec![3.0]).unwrap())
                    .unwrap()
            )
            .contains(3));
        inc.remove(h).unwrap();
        assert!(inc.is_empty());
        // Memberships return to the baseline (all empty).
        for i in 0..baseline.grid().cell_count() {
            assert!(inc.model().members(CellId(i)).is_empty());
        }
    }

    #[test]
    fn refcounts_keep_overlapping_subscriptions_alive() {
        let mut inc = clusterer(2);
        let h1 = inc.insert(0, rect(0.0, 5.0)).unwrap();
        let _h2 = inc.insert(0, rect(3.0, 6.0)).unwrap();
        inc.remove(h1).unwrap();
        // Cells in (3,5] are still covered by the second subscription.
        let model = inc.model();
        let cell = model
            .grid()
            .cell_of_point(&Point::new(vec![4.0]).unwrap())
            .unwrap();
        assert!(model.members(cell).contains(0));
        // Cells only under the removed one are now empty.
        let cell2 = model
            .grid()
            .cell_of_point(&Point::new(vec![1.0]).unwrap())
            .unwrap();
        assert!(!model.members(cell2).contains(0));
    }

    #[test]
    fn first_partition_is_full_then_local() {
        let mut inc = clusterer(2);
        for s in 0..4usize {
            inc.insert(s, rect(0.0, 4.0)).unwrap();
        }
        for s in 4..8usize {
            inc.insert(s, rect(6.0, 10.0)).unwrap();
        }
        let p1 = inc.partition().unwrap();
        assert_eq!(inc.stats().full_reclusters, 1);
        assert!(p1.group_count() >= 1);

        // One small change: refresh is local.
        inc.insert(0, rect(1.0, 2.0)).unwrap();
        let _ = inc.partition().unwrap();
        assert_eq!(inc.stats().full_reclusters, 1);
        assert_eq!(inc.stats().local_updates, 1);
    }

    #[test]
    fn heavy_churn_triggers_full_recluster() {
        let mut inc = clusterer(2);
        let handles: Vec<_> = (0..8usize)
            .map(|s| inc.insert(s, rect(0.0, 10.0)).unwrap())
            .collect();
        inc.partition().unwrap();
        // Replace most of the population.
        for h in handles.into_iter().take(6) {
            inc.remove(h).unwrap();
        }
        for s in 0..6usize {
            inc.insert(s, rect(5.0, 10.0)).unwrap();
        }
        inc.partition().unwrap();
        assert!(inc.stats().full_reclusters >= 2, "{:?}", inc.stats());
    }

    #[test]
    fn new_hot_cells_join_existing_groups_locally() {
        let mut inc = clusterer(2);
        for s in 0..3usize {
            inc.insert(s, rect(0.0, 3.0)).unwrap();
        }
        for s in 3..6usize {
            inc.insert(s, rect(7.0, 10.0)).unwrap();
        }
        let p1 = inc.partition().unwrap();
        let before = p1.assigned_cell_count();
        // A new subscriber lights up fresh cells near the first camp.
        inc.insert(6, rect(3.0, 4.0)).unwrap();
        let p2 = inc.partition().unwrap();
        assert_eq!(inc.stats().local_updates, 1);
        assert!(p2.assigned_cell_count() >= before);
        // The new cell (3,4] is assigned to some group, not S0.
        let cell = inc
            .grid
            .cell_of_point(&Point::new(vec![3.5]).unwrap())
            .unwrap();
        assert!(p2.group_of_cell(cell).is_some());
    }

    #[test]
    fn errors() {
        let mut inc = clusterer(2);
        assert!(matches!(
            inc.insert(99, rect(0.0, 1.0)),
            Err(ClusterError::SubscriberOutOfRange { .. })
        ));
        assert!(matches!(
            inc.insert(0, Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap()),
            Err(ClusterError::DimensionMismatch { .. })
        ));
        assert!(inc.remove(SubscriptionHandle(123)).is_err());
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[1.0]).unwrap(), 2).unwrap();
        assert!(IncrementalClusterer::new(
            grid.clone(),
            1,
            |_| 0.1,
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 1),
            0.0
        )
        .is_err());
        assert!(IncrementalClusterer::new(
            grid,
            1,
            |_| -1.0,
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 1),
            0.5
        )
        .is_err());
    }

    #[test]
    fn adopt_partition_resets_drift_and_seeds_local_updates() {
        let mut inc = clusterer(2);
        assert!(inc.needs_full_recluster(), "fresh clusterer must recluster");
        for s in 0..4usize {
            inc.insert(s, rect(0.0, 4.0)).unwrap();
        }
        // Adopt an externally computed partition over the same grid.
        let external = {
            let mut other = clusterer(2);
            for s in 0..4usize {
                other.insert(s, rect(0.0, 4.0)).unwrap();
            }
            other.partition().unwrap()
        };
        inc.adopt_partition(&external).unwrap();
        assert!(!inc.needs_full_recluster());
        assert_eq!(inc.churn(), 0);

        // The next refresh is local and starts from the adopted clusters.
        inc.insert(0, rect(1.0, 2.0)).unwrap();
        let p = inc.partition().unwrap();
        assert_eq!(inc.stats().full_reclusters, 0);
        assert_eq!(inc.stats().local_updates, 1);
        assert_eq!(p.group_count(), external.group_count());

        // Mismatched grid is rejected.
        let other_grid = Grid::uniform(Rect::from_corners(&[0.0], &[10.0]).unwrap(), 3).unwrap();
        let bad = SpacePartition::from_clusters(other_grid, &[vec![CellId(0)]]).unwrap();
        assert!(inc.adopt_partition(&bad).is_err());
    }

    #[test]
    fn cell_refcounts_expose_live_membership() {
        let mut inc = clusterer(2);
        let h = inc.insert(3, rect(2.0, 5.0)).unwrap();
        inc.insert(3, rect(2.0, 3.0)).unwrap();
        let cell = inc
            .grid
            .cell_of_point(&Point::new(vec![2.5]).unwrap())
            .unwrap();
        let counts: Vec<(usize, u32)> = inc.cell_refcounts(cell).collect();
        assert_eq!(counts, vec![(3, 2)], "two covering subscriptions");
        inc.remove(h).unwrap();
        let counts: Vec<(usize, u32)> = inc.cell_refcounts(cell).collect();
        assert_eq!(counts, vec![(3, 1)]);
    }

    #[test]
    fn local_partition_matches_full_cluster_membership_semantics() {
        // After a local update the partition must still be a valid
        // disjoint assignment of working-set cells.
        let mut inc = clusterer(3);
        for s in 0..8usize {
            inc.insert(s, rect(s as f64, s as f64 + 2.0)).unwrap();
        }
        inc.partition().unwrap();
        inc.insert(0, rect(8.0, 9.0)).unwrap();
        let p = inc.partition().unwrap();
        let mut seen = std::collections::HashSet::new();
        for q in 0..p.group_count() {
            for c in p.cells_of_group(q) {
                assert!(seen.insert(c), "cell {c:?} in two groups");
            }
        }
    }
}
