//! The grid model: per-cell subscriber membership and publication mass
//! (Appendix A, step 0).

use pubsub_geom::{CellId, Grid, Point, Rect};

use crate::{ClusterError, SubscriberSet};

/// The precomputed grid statistics the clustering algorithms work on:
/// for every cell `g`, the membership list `l(g)` (subscribers whose
/// rectangle intersects the cell) and the publication mass `p_p(g)`.
#[derive(Debug, Clone)]
pub struct GridModel {
    grid: Grid,
    subscriber_count: usize,
    masses: Vec<f64>,
    members: Vec<SubscriberSet>,
}

impl GridModel {
    /// Builds the model.
    ///
    /// * `subscriber_count` — how many distinct subscriber indices exist;
    /// * `subscriptions` — `(subscriber, rectangle)` pairs; rectangles are
    ///   clamped to the grid bounds, so unbounded predicates are fine;
    /// * `density` — the publication density `p_p(·)`: returns the
    ///   probability mass of a rectangle (e.g.
    ///   `|r| publication_model.mass(r)`).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::SubscriberOutOfRange`] for a subscriber index
    ///   `>= subscriber_count`;
    /// * [`ClusterError::DimensionMismatch`] for a rectangle of the wrong
    ///   dimensionality;
    /// * [`ClusterError::InvalidDensity`] if the density callback returns
    ///   a negative or non-finite value.
    pub fn build<F>(
        grid: Grid,
        subscriber_count: usize,
        subscriptions: &[(usize, Rect)],
        density: F,
    ) -> Result<Self, ClusterError>
    where
        F: Fn(&Rect) -> f64,
    {
        Self::build_iter(
            grid,
            subscriber_count,
            subscriptions.iter().map(|(s, r)| (*s, r)),
            density,
        )
    }

    /// [`GridModel::build`] over a streaming subscription source: each
    /// `(subscriber, rectangle)` pair is folded into the per-cell
    /// membership sets as it is yielded, so the caller never has to
    /// materialize an O(N) rectangle array. Per-item operations are
    /// identical to [`GridModel::build`] (which delegates here), so the
    /// two produce bit-identical models from the same sequence.
    ///
    /// # Errors
    ///
    /// As [`GridModel::build`].
    pub fn build_iter<I, R, F>(
        grid: Grid,
        subscriber_count: usize,
        subscriptions: I,
        density: F,
    ) -> Result<Self, ClusterError>
    where
        I: IntoIterator<Item = (usize, R)>,
        R: std::borrow::Borrow<Rect>,
        F: Fn(&Rect) -> f64,
    {
        let cell_count = grid.cell_count();
        let mut members = vec![SubscriberSet::new(subscriber_count); cell_count];
        for (subscriber, rect) in subscriptions {
            let rect = rect.borrow();
            if subscriber >= subscriber_count {
                return Err(ClusterError::SubscriberOutOfRange {
                    subscriber,
                    count: subscriber_count,
                });
            }
            if rect.dims() != grid.dims() {
                return Err(ClusterError::DimensionMismatch {
                    expected: grid.dims(),
                    got: rect.dims(),
                });
            }
            let clamped = rect.clamp_to(grid.bounds());
            for cell in grid.cells_intersecting(&clamped) {
                members[cell.0].insert(subscriber);
            }
        }
        let mut masses = Vec::with_capacity(cell_count);
        for i in 0..cell_count {
            let m = density(&grid.cell_rect(CellId(i)));
            if !(m >= 0.0 && m.is_finite()) {
                return Err(ClusterError::InvalidDensity {
                    value: m.to_string(),
                });
            }
            masses.push(m);
        }
        Ok(GridModel {
            grid,
            subscriber_count,
            masses,
            members,
        })
    }

    /// Assembles a model from precomputed per-cell masses and membership
    /// sets — the constructor incremental maintenance uses (see
    /// [`crate::IncrementalClusterer`]), where memberships are kept as
    /// refcounts across subscription churn rather than recomputed from
    /// scratch.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the vector lengths do
    /// not match the grid's cell count or a membership set's capacity
    /// differs from `subscriber_count`, and [`ClusterError::InvalidDensity`]
    /// for negative or non-finite masses.
    pub fn from_parts(
        grid: Grid,
        subscriber_count: usize,
        masses: Vec<f64>,
        members: Vec<SubscriberSet>,
    ) -> Result<Self, ClusterError> {
        if masses.len() != grid.cell_count() || members.len() != grid.cell_count() {
            return Err(ClusterError::InvalidConfig {
                parameter: "masses/members",
                constraint: "one entry per grid cell",
            });
        }
        if members.iter().any(|m| m.capacity() != subscriber_count) {
            return Err(ClusterError::InvalidConfig {
                parameter: "members",
                constraint: "capacity == subscriber_count",
            });
        }
        if let Some(bad) = masses.iter().find(|&&m| !(m >= 0.0 && m.is_finite())) {
            return Err(ClusterError::InvalidDensity {
                value: bad.to_string(),
            });
        }
        Ok(GridModel {
            grid,
            subscriber_count,
            masses,
            members,
        })
    }

    /// Assembles a model whose membership sets may be *sparse*:
    /// untouched cells carry zero-capacity (empty) sets instead of
    /// full-width bitsets. Sound only for consumers that never union or
    /// diff an untouched cell's set — the incremental local-update path,
    /// which inspects working-set and cluster cells exclusively.
    pub(crate) fn from_parts_sparse(
        grid: Grid,
        subscriber_count: usize,
        masses: Vec<f64>,
        members: Vec<SubscriberSet>,
    ) -> Self {
        debug_assert_eq!(masses.len(), grid.cell_count());
        debug_assert_eq!(members.len(), grid.cell_count());
        GridModel {
            grid,
            subscriber_count,
            masses,
            members,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of distinct subscriber indices.
    pub fn subscriber_count(&self) -> usize {
        self.subscriber_count
    }

    /// The publication mass `p_p(g)` of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range.
    pub fn mass(&self, cell: CellId) -> f64 {
        self.masses[cell.0]
    }

    /// The membership list `l(g)` of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of range.
    pub fn members(&self, cell: CellId) -> &SubscriberSet {
        &self.members[cell.0]
    }

    /// The cell weight `p_p(g)·|l(g)|` used to select the working set.
    pub fn weight(&self, cell: CellId) -> f64 {
        self.masses[cell.0] * self.members[cell.0].len() as f64
    }

    /// The `t` heaviest cells with non-empty membership, by decreasing
    /// weight (ties broken toward lower cell ids). This is the list `h` of
    /// Appendix A; fewer than `t` cells are returned when the grid has
    /// fewer populated cells.
    pub fn top_cells(&self, t: usize) -> Vec<CellId> {
        let mut cells: Vec<CellId> = (0..self.grid.cell_count())
            .map(CellId)
            .filter(|&c| !self.members[c.0].is_empty())
            .collect();
        cells.sort_by(|&a, &b| {
            self.weight(b)
                .total_cmp(&self.weight(a))
                .then_with(|| a.cmp(&b))
        });
        cells.truncate(t);
        cells
    }

    /// The cell containing an event, if inside the grid.
    pub fn cell_of_point(&self, p: &Point) -> Option<CellId> {
        self.grid.cell_of_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Interval;

    fn grid() -> Grid {
        Grid::uniform(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(), 5).unwrap()
    }

    #[test]
    fn membership_via_intersection() {
        let subs = vec![
            (
                0usize,
                Rect::from_corners(&[0.0, 0.0], &[4.0, 4.0]).unwrap(),
            ),
            (
                1usize,
                Rect::from_corners(&[3.0, 3.0], &[5.0, 5.0]).unwrap(),
            ),
        ];
        let model = GridModel::build(grid(), 2, &subs, |_| 0.0).unwrap();
        let g = model.grid().clone();
        // Cell (0,0) covers (0,2]x(0,2]: only subscriber 0.
        let c00 = g.id_of_coords(&[0, 0]);
        assert!(model.members(c00).contains(0));
        assert!(!model.members(c00).contains(1));
        // Cell (1,1) covers (2,4]x(2,4]: both.
        let c11 = g.id_of_coords(&[1, 1]);
        assert_eq!(model.members(c11).len(), 2);
        // Far corner: nobody.
        let c44 = g.id_of_coords(&[4, 4]);
        assert!(model.members(c44).is_empty());
    }

    #[test]
    fn unbounded_subscriptions_are_clamped() {
        let subs = vec![(
            0usize,
            Rect::new(vec![Interval::at_least(6.0), Interval::unbounded()]).unwrap(),
        )];
        let model = GridModel::build(grid(), 1, &subs, |_| 0.0).unwrap();
        // Columns 3..5 (x > 6) of every row contain subscriber 0.
        let g = model.grid().clone();
        for y in 0..5 {
            assert!(model.members(g.id_of_coords(&[4, y])).contains(0));
            assert!(model.members(g.id_of_coords(&[3, y])).contains(0));
            assert!(!model.members(g.id_of_coords(&[2, y])).contains(0));
        }
    }

    #[test]
    fn masses_come_from_density_callback() {
        let subs = vec![(
            0usize,
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
        )];
        let model = GridModel::build(grid(), 1, &subs, |r| r.volume()).unwrap();
        let g = model.grid().clone();
        let c = g.id_of_coords(&[2, 2]);
        assert!((model.mass(c) - 4.0).abs() < 1e-9);
        assert!((model.weight(c) - 4.0).abs() < 1e-9); // 1 member * 4.0
    }

    #[test]
    fn top_cells_ordering_and_filtering() {
        // Subscriber 0 everywhere; subscriber 1 adds weight in one cell.
        let subs = vec![
            (
                0usize,
                Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
            ),
            (
                1usize,
                Rect::from_corners(&[0.5, 0.5], &[1.0, 1.0]).unwrap(),
            ),
        ];
        let model = GridModel::build(grid(), 2, &subs, |_| 0.5).unwrap();
        let top = model.top_cells(3);
        assert_eq!(top.len(), 3);
        // The doubly-subscribed cell (0,0) must rank first.
        assert_eq!(top[0], model.grid().id_of_coords(&[0, 0]));
        // Weights are non-increasing.
        assert!(model.weight(top[0]) >= model.weight(top[1]));
        assert!(model.weight(top[1]) >= model.weight(top[2]));
        // Requesting more cells than exist returns all populated cells.
        let all = model.top_cells(10_000);
        assert_eq!(all.len(), 25);
    }

    #[test]
    fn empty_cells_excluded_from_top() {
        let subs = vec![(
            0usize,
            Rect::from_corners(&[0.0, 0.0], &[2.0, 2.0]).unwrap(),
        )];
        let model = GridModel::build(grid(), 1, &subs, |_| 1.0).unwrap();
        let top = model.top_cells(100);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn build_errors() {
        let subs = vec![(
            5usize,
            Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
        )];
        assert!(matches!(
            GridModel::build(grid(), 2, &subs, |_| 0.0),
            Err(ClusterError::SubscriberOutOfRange { subscriber: 5, .. })
        ));
        let subs = vec![(0usize, Rect::from_corners(&[0.0], &[1.0]).unwrap())];
        assert!(matches!(
            GridModel::build(grid(), 1, &subs, |_| 0.0),
            Err(ClusterError::DimensionMismatch { .. })
        ));
        let subs = vec![(
            0usize,
            Rect::from_corners(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
        )];
        assert!(matches!(
            GridModel::build(grid(), 1, &subs, |_| -1.0),
            Err(ClusterError::InvalidDensity { .. })
        ));
    }

    #[test]
    fn cell_of_point_delegates_to_grid() {
        let model = GridModel::build(grid(), 0, &[], |_| 0.0).unwrap();
        let p = Point::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(model.cell_of_point(&p), model.grid().cell_of_point(&p));
    }
}
