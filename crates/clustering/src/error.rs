use std::error::Error;
use std::fmt;

/// Errors produced while building grid models or running clustering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// A subscriber id exceeded the declared subscriber count.
    SubscriberOutOfRange {
        /// The offending subscriber id.
        subscriber: usize,
        /// The declared count.
        count: usize,
    },
    /// A subscription rectangle had the wrong dimensionality for the grid.
    DimensionMismatch {
        /// Grid dimensionality.
        expected: usize,
        /// Rectangle dimensionality.
        got: usize,
    },
    /// A density callback returned a negative or non-finite mass.
    InvalidDensity {
        /// The offending value, rendered as a string.
        value: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig {
                parameter,
                constraint,
            } => write!(
                f,
                "invalid configuration: {parameter} must satisfy {constraint}"
            ),
            ClusterError::SubscriberOutOfRange { subscriber, count } => {
                write!(f, "subscriber id {subscriber} out of range (count {count})")
            }
            ClusterError::DimensionMismatch { expected, got } => {
                write!(f, "subscription has {got} dimensions, grid has {expected}")
            }
            ClusterError::InvalidDensity { value } => {
                write!(
                    f,
                    "density callback returned {value}, expected a finite non-negative mass"
                )
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render() {
        assert!(ClusterError::SubscriberOutOfRange {
            subscriber: 7,
            count: 5
        }
        .to_string()
        .contains("7"));
    }
}
