//! The expected-waste (EW) distance (Appendix A.2).
//!
//! EW measures the expected number of *wasted* deliveries a multicast
//! group causes: members who receive a message they did not subscribe to.
//! The paper defines it recursively over cell insertions:
//!
//! ```text
//! EW({g}) = 0
//! EW(G ∪ {x}) = [ EW(G)·p(G)·(1 + |l(x)\l(G)|) + p(x)·|l(G)\l(x)| ]
//!               / (p(x) + p(G))
//! ```
//!
//! The recursion is insertion-order dependent; to make group state
//! well-defined under k-means removals we always recompute EW by folding
//! the member cells in ascending cell-id order (DESIGN.md choice 4). The
//! *distance* from a cell to a group is the EW increase caused by adding
//! the cell.

use pubsub_geom::CellId;

use crate::{GridModel, SubscriberSet};

/// Mutable state of one cluster: its cells (kept sorted by id), the union
/// membership, the total mass and the canonical EW value.
#[derive(Debug, Clone)]
pub struct GroupState {
    cells: Vec<CellId>,
    members: SubscriberSet,
    mass: f64,
    ew: f64,
}

impl GroupState {
    /// A group holding a single cell (EW = 0 by definition).
    pub fn singleton(model: &GridModel, cell: CellId) -> Self {
        GroupState {
            cells: vec![cell],
            members: model.members(cell).clone(),
            mass: model.mass(cell),
            ew: 0.0,
        }
    }

    /// Builds a group from arbitrary cells (deduplicated, sorted, folded
    /// canonically). Returns an empty group for an empty slice.
    pub fn from_cells(model: &GridModel, cells: &[CellId]) -> Self {
        let mut sorted: Vec<CellId> = cells.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let (ew, mass, members) = fold_ew(model, &sorted);
        GroupState {
            cells: sorted,
            members,
            mass,
            ew,
        }
    }

    /// The member cells in ascending id order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of member cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the group has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The union membership `l(G)`.
    pub fn members(&self) -> &SubscriberSet {
        &self.members
    }

    /// The total publication mass `p(G)`.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// The canonical EW value.
    pub fn ew(&self) -> f64 {
        self.ew
    }

    /// `true` if `cell` is a member.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// The distance from `cell` to this group: the EW increase if the cell
    /// joined (computed against the canonical fold). Joining an empty
    /// group is free.
    pub fn distance_to(&self, model: &GridModel, cell: CellId) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut with: Vec<CellId> = Vec::with_capacity(self.cells.len() + 1);
        let pos = self.cells.partition_point(|&c| c < cell);
        with.extend_from_slice(&self.cells[..pos]);
        if self.cells.get(pos) == Some(&cell) {
            // Already a member: no increase.
            return 0.0;
        }
        with.push(cell);
        with.extend_from_slice(&self.cells[pos..]);
        let (ew, _, _) = fold_ew(model, &with);
        ew - self.ew
    }

    /// Adds a cell (no-op if already present) and refreshes the canonical
    /// state.
    pub fn add(&mut self, model: &GridModel, cell: CellId) {
        let pos = self.cells.partition_point(|&c| c < cell);
        if self.cells.get(pos) == Some(&cell) {
            return;
        }
        self.cells.insert(pos, cell);
        self.refresh(model);
    }

    /// Removes a cell (no-op if absent) and refreshes the canonical state.
    pub fn remove(&mut self, model: &GridModel, cell: CellId) {
        if let Ok(pos) = self.cells.binary_search(&cell) {
            self.cells.remove(pos);
            self.refresh(model);
        }
    }

    /// Merges another group into this one and refreshes.
    pub fn merge(&mut self, model: &GridModel, other: &GroupState) {
        self.cells.extend_from_slice(&other.cells);
        self.cells.sort_unstable();
        self.cells.dedup();
        self.refresh(model);
    }

    fn refresh(&mut self, model: &GridModel) {
        let (ew, mass, members) = fold_ew(model, &self.cells);
        self.ew = ew;
        self.mass = mass;
        self.members = members;
    }
}

/// Folds the EW recursion over `cells` (must be sorted ascending).
/// Returns `(ew, total_mass, union_members)`.
fn fold_ew(model: &GridModel, cells: &[CellId]) -> (f64, f64, SubscriberSet) {
    let Some((&first, rest)) = cells.split_first() else {
        return (0.0, 0.0, SubscriberSet::new(model.subscriber_count()));
    };
    let mut members = model.members(first).clone();
    let mut mass = model.mass(first);
    let mut ew = 0.0;
    for &cell in rest {
        let l_x = model.members(cell);
        let p_x = model.mass(cell);
        let denom = p_x + mass;
        if denom > 0.0 {
            let new_minus_old = l_x.diff_count(&members) as f64;
            let old_minus_new = members.diff_count(l_x) as f64;
            ew = (ew * mass * (1.0 + new_minus_old) + p_x * old_minus_new) / denom;
        }
        // Zero total mass: no publications land here, waste stays as-is.
        members.union_with(l_x);
        mass += p_x;
    }
    (ew, mass, members)
}

/// The symmetric merge distance used by pairwise grouping and the MST
/// algorithm: the EW increase from merging two groups,
/// `EW(A ∪ B) − EW(A) − EW(B)` (DESIGN.md choice 5). For singleton cells
/// this is simply `EW({a, b})`.
pub(crate) fn merge_distance(model: &GridModel, a: &GroupState, b: &GroupState) -> f64 {
    let mut cells: Vec<CellId> = a.cells().to_vec();
    cells.extend_from_slice(b.cells());
    cells.sort_unstable();
    cells.dedup();
    let (ew, _, _) = fold_ew(model, &cells);
    ew - a.ew() - b.ew()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::{Grid, Rect};

    /// A 4-cell 1-D model with controllable membership and mass.
    fn model(masses: [f64; 4], member_lists: [&[usize]; 4]) -> GridModel {
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[4.0]).unwrap(), 4).unwrap();
        let mut subs: Vec<(usize, Rect)> = Vec::new();
        for (i, list) in member_lists.iter().enumerate() {
            for &s in *list {
                subs.push((
                    s,
                    Rect::from_corners(&[i as f64 + 0.25], &[i as f64 + 0.75]).unwrap(),
                ));
            }
        }
        GridModel::build(grid, 8, &subs, move |r| {
            let i = (r.side(0).lo() + 0.01).floor().max(0.0) as usize;
            masses[i.min(3)]
        })
        .unwrap()
    }

    #[test]
    fn singleton_has_zero_ew() {
        let m = model([0.25; 4], [&[0], &[1], &[2], &[3]]);
        let g = GroupState::singleton(&m, CellId(0));
        assert_eq!(g.ew(), 0.0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.mass(), 0.25);
        assert!(g.contains(CellId(0)));
    }

    #[test]
    fn pair_ew_matches_hand_computation() {
        // Cells 0 and 1, equal mass 0.5, disjoint singleton memberships.
        // Formula: EW = (0 + 0.5 * |l(0)\l(1)|) / 1.0 = 0.5 when adding
        // cell 1 to {0}: |l(G)\l(x)| = 1.
        let m = model([0.5, 0.5, 0.0, 0.0], [&[0], &[1], &[], &[]]);
        let g = GroupState::from_cells(&m, &[CellId(0), CellId(1)]);
        assert!((g.ew() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_memberships_waste_nothing() {
        let m = model([0.25; 4], [&[0, 1], &[0, 1], &[0, 1], &[0, 1]]);
        let g = GroupState::from_cells(&m, &[CellId(0), CellId(1), CellId(2), CellId(3)]);
        assert_eq!(g.ew(), 0.0);
        assert_eq!(g.members().len(), 2);
    }

    #[test]
    fn disjoint_memberships_accumulate_waste() {
        let m = model([0.25; 4], [&[0], &[1], &[2], &[3]]);
        let g12 = GroupState::from_cells(&m, &[CellId(0), CellId(1)]);
        let g123 = GroupState::from_cells(&m, &[CellId(0), CellId(1), CellId(2)]);
        assert!(g123.ew() > g12.ew());
        assert!(g12.ew() > 0.0);
    }

    #[test]
    fn distance_is_ew_increase_and_add_matches() {
        let m = model([0.3, 0.3, 0.2, 0.2], [&[0, 1], &[1, 2], &[3], &[0, 3]]);
        let mut g = GroupState::from_cells(&m, &[CellId(0), CellId(1)]);
        let d = g.distance_to(&m, CellId(2));
        let before = g.ew();
        g.add(&m, CellId(2));
        assert!((g.ew() - before - d).abs() < 1e-12);
        // Adding an existing cell is free and a no-op.
        assert_eq!(g.distance_to(&m, CellId(2)), 0.0);
        let snapshot = g.ew();
        g.add(&m, CellId(2));
        assert_eq!(g.ew(), snapshot);
    }

    #[test]
    fn remove_restores_previous_state() {
        let m = model([0.25; 4], [&[0], &[1], &[0, 1], &[2]]);
        let mut g = GroupState::from_cells(&m, &[CellId(0), CellId(1)]);
        let (ew0, mass0, len0) = (g.ew(), g.mass(), g.members().len());
        g.add(&m, CellId(3));
        g.remove(&m, CellId(3));
        assert!((g.ew() - ew0).abs() < 1e-12);
        assert!((g.mass() - mass0).abs() < 1e-12);
        assert_eq!(g.members().len(), len0);
        // Removing an absent cell is a no-op.
        g.remove(&m, CellId(3));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn merge_matches_from_cells() {
        let m = model([0.3, 0.3, 0.2, 0.2], [&[0], &[1], &[0, 2], &[3]]);
        let mut a = GroupState::from_cells(&m, &[CellId(0), CellId(2)]);
        let b = GroupState::from_cells(&m, &[CellId(1), CellId(3)]);
        let d = merge_distance(&m, &a, &b);
        let (ew_a, ew_b) = (a.ew(), b.ew());
        a.merge(&m, &b);
        assert!((a.ew() - (ew_a + ew_b + d)).abs() < 1e-12);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn zero_mass_groups_have_zero_ew() {
        let m = model([0.0; 4], [&[0], &[1], &[2], &[3]]);
        let g = GroupState::from_cells(&m, &[CellId(0), CellId(1), CellId(2)]);
        assert_eq!(g.ew(), 0.0);
        assert_eq!(g.mass(), 0.0);
        assert_eq!(g.distance_to(&m, CellId(3)), 0.0);
    }

    #[test]
    fn empty_group_behaviour() {
        let m = model([0.25; 4], [&[0], &[1], &[2], &[3]]);
        let g = GroupState::from_cells(&m, &[]);
        assert!(g.is_empty());
        assert_eq!(g.ew(), 0.0);
        assert_eq!(g.distance_to(&m, CellId(0)), 0.0);
    }
}
