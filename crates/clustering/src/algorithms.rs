//! The clustering algorithms (Appendix A.2–A.3) and the top-level driver.

use pubsub_geom::CellId;
use serde::{Deserialize, Serialize};

use crate::ew::{merge_distance, GroupState};
use crate::{ClusterError, GridModel, SpacePartition};

/// Which subscription clustering algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ClusteringAlgorithm {
    /// The appendix's k-means on grid cells with immediate reassignment —
    /// the paper's best performer in both quality and running time.
    ForgyKMeans,
    /// Classic batch (Lloyd-style) k-means: assignments computed against
    /// frozen group state, one update per sweep. The "K-means" companion
    /// algorithm of \[15\].
    BatchKMeans,
    /// Agglomerative pairwise grouping: repeatedly merge the closest pair
    /// of clusters until `n` remain. Best quality in some settings, worst
    /// running time.
    PairwiseGrouping,
    /// Single-linkage via a minimum spanning tree: all pairwise distances
    /// computed once, edges added in increasing order until exactly `n`
    /// connected components remain.
    MinimumSpanningTree,
}

impl ClusteringAlgorithm {
    /// All algorithms, in paper order.
    pub const ALL: [ClusteringAlgorithm; 4] = [
        ClusteringAlgorithm::ForgyKMeans,
        ClusteringAlgorithm::BatchKMeans,
        ClusteringAlgorithm::PairwiseGrouping,
        ClusteringAlgorithm::MinimumSpanningTree,
    ];
}

impl std::fmt::Display for ClusteringAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ClusteringAlgorithm::ForgyKMeans => "forgy-kmeans",
            ClusteringAlgorithm::BatchKMeans => "batch-kmeans",
            ClusteringAlgorithm::PairwiseGrouping => "pairwise-grouping",
            ClusteringAlgorithm::MinimumSpanningTree => "minimum-spanning-tree",
        };
        f.write_str(name)
    }
}

/// Configuration of a clustering run. The paper caps both the working set
/// and the k-means iterations at `T = 200`.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClusteringConfig {
    algorithm: ClusteringAlgorithm,
    groups: usize,
    max_cells: usize,
    max_iterations: usize,
}

impl ClusteringConfig {
    /// Creates a configuration with the paper's defaults (`T = 200` cells,
    /// 200 iterations).
    pub fn new(algorithm: ClusteringAlgorithm, groups: usize) -> Self {
        ClusteringConfig {
            algorithm,
            groups,
            max_cells: 200,
            max_iterations: 200,
        }
    }

    /// Overrides the working-set size `T`.
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.max_cells = max_cells;
        self
    }

    /// Overrides the k-means iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// The algorithm to run.
    pub fn algorithm(&self) -> ClusteringAlgorithm {
        self.algorithm
    }

    /// The requested number of groups `n`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The working-set size `T`.
    pub fn max_cells(&self) -> usize {
        self.max_cells
    }

    /// The iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    fn validate(&self) -> Result<(), ClusterError> {
        if self.groups == 0 {
            return Err(ClusterError::InvalidConfig {
                parameter: "groups",
                constraint: ">= 1",
            });
        }
        if self.max_cells == 0 {
            return Err(ClusterError::InvalidConfig {
                parameter: "max_cells",
                constraint: ">= 1",
            });
        }
        if self.max_iterations == 0 {
            return Err(ClusterError::InvalidConfig {
                parameter: "max_iterations",
                constraint: ">= 1",
            });
        }
        Ok(())
    }
}

/// Runs the configured clustering algorithm over the model's `T` heaviest
/// cells and returns the resulting space partition.
///
/// If fewer than `n` populated cells exist, the partition has one group
/// per populated cell (possibly zero groups for an empty model).
///
/// # Errors
///
/// Returns [`ClusterError::InvalidConfig`] for zero groups, cells or
/// iterations.
pub fn cluster(
    model: &GridModel,
    config: &ClusteringConfig,
) -> Result<SpacePartition, ClusterError> {
    config.validate()?;
    let h = model.top_cells(config.max_cells);
    let n = config.groups.min(h.len());
    let clusters: Vec<Vec<CellId>> = if n == 0 {
        Vec::new()
    } else {
        match config.algorithm {
            ClusteringAlgorithm::ForgyKMeans => kmeans(model, &h, n, config.max_iterations, true),
            ClusteringAlgorithm::BatchKMeans => kmeans(model, &h, n, config.max_iterations, false),
            ClusteringAlgorithm::PairwiseGrouping => pairwise(model, &h, n),
            ClusteringAlgorithm::MinimumSpanningTree => mst(model, &h, n),
        }
    };
    SpacePartition::from_clusters(model.grid().clone(), &clusters)
}

/// The clustering objective, computed *exactly*: the expected number of
/// wasted deliveries per published message under static multicast,
///
/// ```text
/// Σ_q Σ_{g ∈ S_q} p(g) · ( |l(S_q)| − |l(g)| )
/// ```
///
/// — an event landing in cell `g` of group `q` is delivered to all of
/// `M_q`, wasting one delivery per member not interested in `g`. Events
/// in `S_0` are unicast and waste nothing.
///
/// Note this is the quantity the paper's recursive EW *approximates* as a
/// greedy merge distance; the recursion's `(1 + |l(x)\l(G)|)` multiplier
/// compounds across insertions, so recursive EW values of large groups
/// grow without bound and are not comparable across partitions — use this
/// exact form to evaluate clustering quality.
pub fn expected_waste(model: &GridModel, partition: &SpacePartition) -> f64 {
    let mut total = 0.0;
    for q in 0..partition.group_count() {
        let cells = partition.cells_of_group(q);
        let group = GroupState::from_cells(model, &cells);
        let group_size = group.members().len() as f64;
        for cell in cells {
            total += model.mass(cell) * (group_size - model.members(cell).len() as f64);
        }
    }
    total
}

/// K-means on cells (Appendix A.2). `immediate` selects the paper's Forgy
/// variant (groups updated after every move); otherwise assignments are
/// computed against frozen group state and applied once per sweep.
fn kmeans(
    model: &GridModel,
    h: &[CellId],
    n: usize,
    max_iterations: usize,
    immediate: bool,
) -> Vec<Vec<CellId>> {
    // Step 1: the first n cells of h seed the groups; the rest join their
    // closest group.
    let mut groups: Vec<GroupState> = h[..n]
        .iter()
        .map(|&c| GroupState::singleton(model, c))
        .collect();
    let mut assignment: Vec<usize> = (0..n).collect();
    for (i, &cell) in h.iter().enumerate().skip(n) {
        let q = closest_group(model, &groups, cell);
        groups[q].add(model, cell);
        assignment.push(q);
        debug_assert_eq!(assignment.len(), i + 1);
    }

    // Steps 2-3: reassign until stable or the iteration cap.
    for _ in 0..max_iterations {
        let mut changed = false;
        if immediate {
            for (i, &cell) in h.iter().enumerate() {
                let current = assignment[i];
                if groups[current].len() <= 1 {
                    continue; // never orphan a group
                }
                groups[current].remove(model, cell);
                let q = closest_group(model, &groups, cell);
                groups[q].add(model, cell);
                if q != current {
                    changed = true;
                    assignment[i] = q;
                }
            }
        } else {
            // Frozen-state assignment pass.
            let mut next: Vec<usize> = Vec::with_capacity(h.len());
            for (i, &cell) in h.iter().enumerate() {
                let current = assignment[i];
                if groups[current].len() <= 1 {
                    next.push(current);
                    continue;
                }
                next.push(closest_group(model, &groups, cell));
            }
            if next != assignment {
                changed = true;
                assignment = next;
                let mut rebuilt: Vec<Vec<CellId>> = vec![Vec::new(); n];
                for (i, &cell) in h.iter().enumerate() {
                    rebuilt[assignment[i]].push(cell);
                }
                // Guard against emptied groups: reseed each with the
                // worst-fitting cell of the largest group.
                for q in 0..n {
                    if rebuilt[q].is_empty() {
                        let donor = (0..n).max_by_key(|&g| rebuilt[g].len()).expect("n >= 1");
                        let cell = rebuilt[donor].pop().expect("largest group non-empty");
                        rebuilt[q].push(cell);
                        let i = h.iter().position(|&c| c == cell).expect("cell from h");
                        assignment[i] = q;
                    }
                }
                groups = rebuilt
                    .iter()
                    .map(|cells| GroupState::from_cells(model, cells))
                    .collect();
            }
        }
        if !changed {
            break;
        }
    }
    groups.iter().map(|g| g.cells().to_vec()).collect()
}

fn closest_group(model: &GridModel, groups: &[GroupState], cell: CellId) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (q, g) in groups.iter().enumerate() {
        let d = g.distance_to(model, cell);
        if d < best_d {
            best_d = d;
            best = q;
        }
    }
    best
}

/// Pairwise grouping (Appendix A.3): merge the closest pair until `n`
/// clusters remain. Distances to a merged cluster are recomputed; all
/// others are cached.
fn pairwise(model: &GridModel, h: &[CellId], n: usize) -> Vec<Vec<CellId>> {
    let mut groups: Vec<Option<GroupState>> = h
        .iter()
        .map(|&c| Some(GroupState::singleton(model, c)))
        .collect();
    let t = groups.len();
    let mut dist = vec![f64::INFINITY; t * t];
    for i in 0..t {
        for j in (i + 1)..t {
            let d = merge_distance(
                model,
                groups[i].as_ref().expect("alive"),
                groups[j].as_ref().expect("alive"),
            );
            dist[i * t + j] = d;
        }
    }
    let mut alive = t;
    while alive > n {
        // Find the closest alive pair.
        let (mut bi, mut bj, mut bd) = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..t {
            if groups[i].is_none() {
                continue;
            }
            for j in (i + 1)..t {
                if groups[j].is_none() {
                    continue;
                }
                if dist[i * t + j] < bd {
                    bd = dist[i * t + j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let other = groups[bj].take().expect("alive");
        groups[bi].as_mut().expect("alive").merge(model, &other);
        alive -= 1;
        // Refresh distances involving the merged cluster.
        for k in 0..t {
            if k == bi || groups[k].is_none() {
                continue;
            }
            let d = merge_distance(
                model,
                groups[bi].as_ref().expect("alive"),
                groups[k].as_ref().expect("alive"),
            );
            let (a, b) = if k < bi { (k, bi) } else { (bi, k) };
            dist[a * t + b] = d;
        }
    }
    groups
        .into_iter()
        .flatten()
        .map(|g| g.cells().to_vec())
        .collect()
}

/// Minimum-spanning-tree clustering (Appendix A.3): distances computed
/// once between the singleton cells, edges added in increasing order until
/// exactly `n` components remain (single linkage with union-find).
fn mst(model: &GridModel, h: &[CellId], n: usize) -> Vec<Vec<CellId>> {
    let t = h.len();
    let singletons: Vec<GroupState> = h.iter().map(|&c| GroupState::singleton(model, c)).collect();
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(t * (t - 1) / 2);
    for i in 0..t {
        for j in (i + 1)..t {
            edges.push((merge_distance(model, &singletons[i], &singletons[j]), i, j));
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut parent: Vec<usize> = (0..t).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut components = t;
    for (_, i, j) in edges {
        if components == n {
            break;
        }
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
            components -= 1;
        }
    }
    let mut clusters: Vec<Vec<CellId>> = Vec::new();
    let mut root_to_cluster: Vec<Option<usize>> = vec![None; t];
    for (i, &cell) in h.iter().enumerate().take(t) {
        let r = find(&mut parent, i);
        let idx = match root_to_cluster[r] {
            Some(idx) => idx,
            None => {
                clusters.push(Vec::new());
                root_to_cluster[r] = Some(clusters.len() - 1);
                clusters.len() - 1
            }
        };
        clusters[idx].push(cell);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::{Grid, Rect};

    /// Two subscriber populations interested in opposite halves of a 1-D
    /// space, with a publication hot spot in each half (so the top-2 cells
    /// seed both camps — with perfectly uniform weights the paper's
    /// first-n-cells seeding can start k-means with both seeds in one camp
    /// and the EW greedy cannot escape). A good 2-clustering separates the
    /// halves.
    fn two_camp_model() -> GridModel {
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[8.0]).unwrap(), 8).unwrap();
        let mut subs = Vec::new();
        for s in 0..4usize {
            subs.push((s, Rect::from_corners(&[0.0], &[4.0]).unwrap()));
        }
        for s in 4..8usize {
            subs.push((s, Rect::from_corners(&[4.0], &[8.0]).unwrap()));
        }
        GridModel::build(grid, 8, &subs, |r| {
            let c = r.side(0).center();
            if !(1.0..=7.0).contains(&c) {
                0.3 // hot spots at both ends
            } else {
                0.05
            }
        })
        .unwrap()
    }

    fn camps_separated(model: &GridModel, part: &SpacePartition) -> bool {
        // Every group's cells must lie entirely in one half.
        (0..part.group_count()).all(|q| {
            let cells = part.cells_of_group(q);
            let halves: Vec<bool> = cells
                .iter()
                .map(|&c| model.grid().cell_rect(c).side(0).hi() <= 4.0)
                .collect();
            halves.iter().all(|&h| h) || halves.iter().all(|&h| !h)
        })
    }

    #[test]
    fn all_algorithms_separate_two_camps() {
        let model = two_camp_model();
        for alg in ClusteringAlgorithm::ALL {
            let part = cluster(&model, &ClusteringConfig::new(alg, 2)).unwrap();
            assert_eq!(part.group_count(), 2, "{alg}");
            assert_eq!(part.assigned_cell_count(), 8, "{alg}");
            assert!(camps_separated(&model, &part), "{alg} mixed the camps");
        }
    }

    #[test]
    fn partitions_cover_top_cells_disjointly() {
        let model = two_camp_model();
        for alg in ClusteringAlgorithm::ALL {
            let part = cluster(&model, &ClusteringConfig::new(alg, 3)).unwrap();
            let mut seen = std::collections::HashSet::new();
            let mut total = 0;
            for q in 0..part.group_count() {
                for c in part.cells_of_group(q) {
                    assert!(seen.insert(c), "{alg}: cell in two groups");
                    total += 1;
                }
            }
            assert_eq!(total, 8, "{alg}");
        }
    }

    #[test]
    fn more_groups_than_cells_collapses_to_cell_count() {
        let model = two_camp_model();
        let part = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 100),
        )
        .unwrap();
        assert_eq!(part.group_count(), 8);
    }

    #[test]
    fn empty_model_yields_no_groups() {
        let grid = Grid::uniform(Rect::from_corners(&[0.0], &[1.0]).unwrap(), 4).unwrap();
        let model = GridModel::build(grid, 0, &[], |_| 1.0).unwrap();
        let part = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::PairwiseGrouping, 5),
        )
        .unwrap();
        assert_eq!(part.group_count(), 0);
        assert_eq!(part.assigned_cell_count(), 0);
    }

    #[test]
    fn max_cells_limits_working_set() {
        let model = two_camp_model();
        let part = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::MinimumSpanningTree, 2).with_max_cells(4),
        )
        .unwrap();
        assert_eq!(part.assigned_cell_count(), 4);
    }

    #[test]
    fn config_validation() {
        let model = two_camp_model();
        let bad = [
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 0),
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_cells(0),
            ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2).with_max_iterations(0),
        ];
        for cfg in bad {
            assert!(cluster(&model, &cfg).is_err());
        }
        let cfg = ClusteringConfig::new(ClusteringAlgorithm::BatchKMeans, 3)
            .with_max_cells(50)
            .with_max_iterations(10);
        assert_eq!(cfg.algorithm(), ClusteringAlgorithm::BatchKMeans);
        assert_eq!(cfg.groups(), 3);
        assert_eq!(cfg.max_cells(), 50);
        assert_eq!(cfg.max_iterations(), 10);
    }

    #[test]
    fn expected_waste_objective_behaviour() {
        let model = two_camp_model();
        // The perfect 2-clustering separates the camps: zero waste.
        let perfect = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2),
        )
        .unwrap();
        assert!(expected_waste(&model, &perfect) < 1e-12);
        // Forcing everything into one group mixes the camps: positive
        // waste.
        let one = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 1),
        )
        .unwrap();
        assert!(expected_waste(&model, &one) > 0.0);
        // More groups can only reduce (or preserve) the best objective
        // found here: 8 singleton groups also waste nothing.
        let singletons = cluster(
            &model,
            &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 8),
        )
        .unwrap();
        assert!(expected_waste(&model, &singletons) < 1e-12);
    }

    #[test]
    fn clustering_is_deterministic() {
        let model = two_camp_model();
        for alg in ClusteringAlgorithm::ALL {
            let a = cluster(&model, &ClusteringConfig::new(alg, 3)).unwrap();
            let b = cluster(&model, &ClusteringConfig::new(alg, 3)).unwrap();
            assert_eq!(a, b, "{alg}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ClusteringAlgorithm::ForgyKMeans.to_string(), "forgy-kmeans");
        assert_eq!(
            ClusteringAlgorithm::MinimumSpanningTree.to_string(),
            "minimum-spanning-tree"
        );
    }
}
