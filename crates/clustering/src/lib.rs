//! Subscription clustering: precomputing multicast groups (paper §4 and
//! Appendix A, following the authors' ICDCS 2002 paper \[15\]).
//!
//! The event space `Ω` is covered by a regular grid. For every cell `g` the
//! model records the subscriber membership list `l(g)` (who has a
//! subscription intersecting the cell) and the publication probability mass
//! `p_p(g)`. The `T` heaviest cells (by `p_p(g)·|l(g)|`) are then clustered
//! into `n` groups using the *expected waste* distance — the increase in
//! the expected number of unwanted deliveries when a cell joins a group —
//! by one of three algorithms:
//!
//! * [`ClusteringAlgorithm::ForgyKMeans`] — the appendix's k-means variant
//!   with immediate reassignment (the paper's best performer);
//! * [`ClusteringAlgorithm::BatchKMeans`] — a classic Lloyd-style batch
//!   variant (assignments against frozen group state, one update per
//!   sweep), included as the "K-means" companion of \[15\];
//! * [`ClusteringAlgorithm::PairwiseGrouping`] — agglomerative merging of
//!   the closest pair until `n` clusters remain;
//! * [`ClusteringAlgorithm::MinimumSpanningTree`] — single-linkage: all
//!   pairwise distances computed once, edges added in increasing order
//!   until exactly `n` components remain.
//!
//! The result is a [`SpacePartition`]: the `n` subsets `S_1..S_n` plus the
//! implicit catch-all `S_0`, with point→group lookup for the distribution
//! scheme.
//!
//! # Example
//!
//! ```
//! use pubsub_clustering::{cluster, ClusteringAlgorithm, ClusteringConfig, GridModel};
//! use pubsub_geom::{Grid, Rect};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::uniform(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0])?, 5)?;
//! // Two subscribers interested in opposite corners.
//! let subs = vec![
//!     (0usize, Rect::from_corners(&[0.0, 0.0], &[3.0, 3.0])?),
//!     (1usize, Rect::from_corners(&[7.0, 7.0], &[10.0, 10.0])?),
//! ];
//! let model = GridModel::build(grid, 2, &subs, |_r| 0.01)?;
//! let partition = cluster(
//!     &model,
//!     &ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2),
//! )?;
//! assert_eq!(partition.group_count(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod algorithms;
mod bitset;
mod cells;
mod error;
mod ew;
mod incremental;
mod partition;

pub use algorithms::{cluster, expected_waste, ClusteringAlgorithm, ClusteringConfig};
pub use bitset::SubscriberSet;
pub use cells::GridModel;
pub use error::ClusterError;
pub use ew::GroupState;
pub use incremental::{IncrementalClusterer, MaintenanceStats, SubscriptionHandle};
pub use partition::SpacePartition;
