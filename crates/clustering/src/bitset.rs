use serde::{Deserialize, Serialize};

/// A fixed-capacity bitset over subscriber indices.
///
/// Cell membership lists `l(g)` and group membership unions are sets of
/// subscriber nodes; the expected-waste distance needs fast
/// `|A \ B|`-style counts, which popcounts over packed words provide.
///
/// # Example
///
/// ```
/// use pubsub_clustering::SubscriberSet;
///
/// let mut a = SubscriberSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// let mut b = SubscriberSet::new(100);
/// b.insert(64);
/// assert_eq!(a.len(), 2);
/// assert_eq!(a.diff_count(&b), 1); // {3}
/// assert_eq!(b.diff_count(&a), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SubscriberSet {
    words: Vec<u64>,
    capacity: usize,
}

impl SubscriberSet {
    /// Creates an empty set that can hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        SubscriberSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an index; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        let (w, b) = (index / 64, index % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test (indices beyond capacity are simply absent).
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self \ other|`: members of `self` absent from `other`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on capacity mismatch.
    pub fn diff_count(&self, other: &SubscriberSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Adds every member of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on capacity mismatch.
    pub fn union_with(&mut self, other: &SubscriberSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates over member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

impl FromIterator<usize> for SubscriberSet {
    /// Collects indices into a set sized to the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().max().map_or(0, |&m| m + 1);
        let mut set = SubscriberSet::new(capacity);
        for i in indices {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = SubscriberSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(5000));
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_beyond_capacity_panics() {
        SubscriberSet::new(4).insert(4);
    }

    #[test]
    fn diff_and_union() {
        let a: SubscriberSet = [1usize, 2, 3, 70].into_iter().collect();
        let mut b = SubscriberSet::new(71);
        b.insert(2);
        b.insert(70);
        // Capacities differ (71 vs 71): from_iter sized a to 71 too.
        assert_eq!(a.capacity(), 71);
        assert_eq!(a.diff_count(&b), 2); // {1, 3}
        assert_eq!(b.diff_count(&a), 0);
        b.union_with(&a);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn iter_ascending() {
        let s: SubscriberSet = [64usize, 1, 127].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 64, 127]);
    }

    #[test]
    fn empty_from_iter() {
        let s: SubscriberSet = std::iter::empty().collect();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.len(), 0);
    }
}
