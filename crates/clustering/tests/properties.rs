//! Property tests: clustering invariants on random subscription layouts.

use proptest::prelude::*;
use pubsub_clustering::{
    cluster, ClusteringAlgorithm, ClusteringConfig, GridModel, GroupState, SubscriberSet,
};
use pubsub_geom::{CellId, Grid, Rect};

fn model_strategy() -> impl Strategy<Value = GridModel> {
    let sub = (
        0usize..12,
        (0.0f64..9.0, 0.5f64..6.0),
        (0.0f64..9.0, 0.5f64..6.0),
    );
    (prop::collection::vec(sub, 1..40), 2usize..6).prop_map(|(subs, cells)| {
        let grid = Grid::uniform(
            Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).unwrap(),
            cells,
        )
        .unwrap();
        let rects: Vec<(usize, Rect)> = subs
            .into_iter()
            .map(|(s, (x, w), (y, h))| {
                (
                    s,
                    Rect::from_corners(&[x, y], &[(x + w).min(10.0), (y + h).min(10.0)]).unwrap(),
                )
            })
            .collect();
        // A synthetic density putting more mass near the origin.
        GridModel::build(grid, 12, &rects, |r| {
            let c = r.center();
            (20.0 - c.coord(0) - c.coord(1)).max(0.0) / 400.0
        })
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_are_disjoint_and_cover_the_working_set(
        model in model_strategy(),
        n in 1usize..8,
        alg_idx in 0usize..4,
    ) {
        let alg = ClusteringAlgorithm::ALL[alg_idx];
        let cfg = ClusteringConfig::new(alg, n).with_max_cells(30);
        let part = cluster(&model, &cfg).unwrap();
        let h = model.top_cells(30);
        prop_assert_eq!(part.group_count(), n.min(h.len()));
        // Every working-set cell is assigned to exactly one group.
        let mut seen = std::collections::HashSet::new();
        for q in 0..part.group_count() {
            for c in part.cells_of_group(q) {
                prop_assert!(seen.insert(c));
                prop_assert!(h.contains(&c));
            }
        }
        prop_assert_eq!(seen.len(), h.len());
        // Cell lookup agrees with group membership.
        for q in 0..part.group_count() {
            for c in part.cells_of_group(q) {
                prop_assert_eq!(part.group_of_cell(c), Some(q));
            }
        }
    }

    #[test]
    fn ew_is_nonnegative_and_zero_for_singletons(
        model in model_strategy(),
        cells in prop::collection::vec(0usize..16, 1..10),
    ) {
        let count = model.grid().cell_count();
        let ids: Vec<CellId> = cells.iter().map(|&c| CellId(c % count)).collect();
        let g = GroupState::from_cells(&model, &ids);
        prop_assert!(g.ew() >= 0.0, "EW = {}", g.ew());
        let single = GroupState::singleton(&model, ids[0]);
        prop_assert_eq!(single.ew(), 0.0);
    }

    #[test]
    fn distance_equals_add_increment(
        model in model_strategy(),
        cells in prop::collection::vec(0usize..16, 2..8),
    ) {
        let count = model.grid().cell_count();
        let ids: Vec<CellId> = cells.iter().map(|&c| CellId(c % count)).collect();
        let (extra, rest) = ids.split_first().unwrap();
        let mut g = GroupState::from_cells(&model, rest);
        if !g.contains(*extra) && !g.is_empty() {
            let d = g.distance_to(&model, *extra);
            let before = g.ew();
            g.add(&model, *extra);
            prop_assert!((g.ew() - before - d).abs() < 1e-9);
        }
    }

    #[test]
    fn top_cells_are_sorted_by_weight(model in model_strategy(), t in 1usize..40) {
        let top = model.top_cells(t);
        for w in top.windows(2) {
            prop_assert!(model.weight(w[0]) >= model.weight(w[1]) - 1e-12);
        }
        for &c in &top {
            prop_assert!(!model.members(c).is_empty());
        }
    }

    #[test]
    fn subscriber_set_algebra(
        a in prop::collection::vec(0usize..100, 0..30),
        b in prop::collection::vec(0usize..100, 0..30),
    ) {
        let mut sa = SubscriberSet::new(100);
        for &i in &a { sa.insert(i); }
        let mut sb = SubscriberSet::new(100);
        for &i in &b { sb.insert(i); }
        use std::collections::HashSet;
        let ha: HashSet<_> = a.iter().copied().collect();
        let hb: HashSet<_> = b.iter().copied().collect();
        prop_assert_eq!(sa.len(), ha.len());
        prop_assert_eq!(sa.diff_count(&sb), ha.difference(&hb).count());
        prop_assert_eq!(sb.diff_count(&sa), hb.difference(&ha).count());
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), ha.union(&hb).count());
        let collected: Vec<usize> = u.iter().collect();
        let mut expected: Vec<usize> = ha.union(&hb).copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }
}
