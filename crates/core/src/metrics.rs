//! Cost accounting and the paper's improvement-percentage metric (§5.2),
//! plus the serving-path observability types: the fixed-bucket
//! [`LatencyHisto`] behind the per-stage latency gauges and the combined
//! [`MetricsSnapshot`] returned by `Broker::metrics_snapshot`.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets in a [`LatencyHisto`]: bucket `i`
/// covers `[2^i, 2^(i+1))` nanoseconds, so 40 buckets span 1 ns to
/// ~18 minutes — more than any per-stage latency the broker can see.
pub const HISTO_BUCKETS: usize = 40;

/// A cheap fixed-bucket log₂ latency histogram.
///
/// Recording is one `leading_zeros` and one array increment — cheap
/// enough to sit on the per-batch serving hot path. Quantiles are read
/// back with [`LatencyHisto::quantile_ns`], which interpolates linearly
/// inside the winning power-of-two bucket (so the answer is exact to
/// within a factor of 2, plenty for p50/p99/p999 gauges; the serving
/// bench keeps exact end-to-end latencies separately).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LatencyHisto {
    /// Sample counts per power-of-two bucket; see [`HISTO_BUCKETS`].
    pub buckets: [u64; HISTO_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (ns), for mean latency.
    pub total_ns: u64,
}

// `[u64; 40]` has no std `Default` (arrays stop at 32), so spell it out.
impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            total_ns: 0,
        }
    }
}

impl LatencyHisto {
    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(HISTO_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) in nanoseconds, interpolated
    /// linearly within the winning bucket. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = (1u64 << i) as f64;
                let within = (rank - seen) as f64 / n as f64;
                return lo + lo * within;
            }
            seen += n;
        }
        // Unreachable: counts sum to `count`. Keep a sane fallback.
        (1u64 << (HISTO_BUCKETS - 1)) as f64
    }

    /// Folds another histogram into this one (used to merge per-stage
    /// histograms kept by other threads back into the broker's counters
    /// at shutdown).
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

/// The three costs of delivering one publication.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct MessageCosts {
    /// What the configured scheme actually paid.
    pub scheme: f64,
    /// What pure unicast to the interested set would have paid (the 0%
    /// reference).
    pub unicast: f64,
    /// What a dedicated multicast group of exactly the interested
    /// subscribers would have paid (the 100% reference; the paper notes
    /// achieving it in general needs `O(k^N)` groups).
    pub ideal: f64,
}

/// Aggregated delivery statistics over a stream of publications.
///
/// The improvement percentage is computed on aggregated costs,
/// `100·(ΣC_unicast − ΣC_scheme)/(ΣC_unicast − ΣC_ideal)`, which avoids
/// the per-message singularity when a message has a single receiver
/// (unicast cost = ideal cost); see DESIGN.md choice 7.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Publications processed.
    pub messages: u64,
    /// Publications dropped (no interested subscribers).
    pub dropped: u64,
    /// Publications delivered by unicast.
    pub unicasts: u64,
    /// Publications delivered by multicast.
    pub multicasts: u64,
    /// Publications delivered by partial multicast — a fault-degraded
    /// group send covering only the reachable members.
    #[serde(default)]
    pub partial_multicasts: u64,
    /// Total cost paid by the scheme.
    pub scheme_cost: f64,
    /// Total cost pure unicast would have paid.
    pub unicast_cost: f64,
    /// Total cost of ideal per-message multicast.
    pub ideal_cost: f64,
    /// Total deliveries to uninterested group members (filtered at the
    /// receiver) — the realized "waste" the EW distance estimates.
    pub wasted_deliveries: u64,
    /// Total matched subscribers that were skipped because the fault
    /// state made them unreachable from the publisher. Zero on a
    /// fault-free broker.
    #[serde(default)]
    pub unreachable_skipped: u64,
}

impl CostReport {
    /// Folds one message's outcome into the report. `unreachable` is the
    /// number of matched subscribers skipped as unreachable under the
    /// current fault state (0 on a fault-free broker).
    pub fn record(
        &mut self,
        costs: MessageCosts,
        delivered: Delivery,
        wasted: u64,
        unreachable: u64,
    ) {
        self.messages += 1;
        match delivered {
            Delivery::Dropped { .. } => self.dropped += 1,
            Delivery::Unicast => self.unicasts += 1,
            Delivery::Multicast => self.multicasts += 1,
            Delivery::PartialMulticast => self.partial_multicasts += 1,
        }
        self.scheme_cost += costs.scheme;
        self.unicast_cost += costs.unicast;
        self.ideal_cost += costs.ideal;
        self.wasted_deliveries += wasted;
        self.unreachable_skipped += unreachable;
    }

    /// The improvement over pure unicast on the paper's scale: 0% means
    /// the scheme paid what unicast pays, 100% means it paid what ideal
    /// per-message multicast pays. Negative values mean the scheme was
    /// *worse* than unicast (possible with a bad threshold). Returns 0
    /// when there is no headroom (`ΣC_unicast == ΣC_ideal`).
    pub fn improvement_percent(&self) -> f64 {
        let headroom = self.unicast_cost - self.ideal_cost;
        if headroom <= f64::EPSILON {
            return 0.0;
        }
        100.0 * (self.unicast_cost - self.scheme_cost) / headroom
    }

    /// Mean scheme cost per message (0 if no messages).
    pub fn avg_cost(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.scheme_cost / self.messages as f64
        }
    }
}

/// Counters describing the broker's churn machinery: how the live
/// subscription set has been mutated and how the engine kept up.
/// Assembled by `Broker::churn_counters`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ChurnCounters {
    /// Current engine-snapshot epoch (bumps on every snapshot swap:
    /// recompiles, churn-driven group updates, local partition refreshes).
    pub epoch: u64,
    /// Subscriptions added via `subscribe` since construction.
    pub subscribes: u64,
    /// Subscriptions removed via `unsubscribe` since construction.
    pub unsubscribes: u64,
    /// Full engine recompiles (drift-triggered, explicit `recompile`, or
    /// `set_clustering`).
    pub recompiles: u64,
    /// Local partition refreshes (incremental-clusterer local updates
    /// folded into the snapshot without a recompile).
    pub local_refreshes: u64,
    /// Subscriptions currently in the delta overlay (added since the last
    /// recompile).
    pub overlay_len: usize,
    /// Compiled subscriptions currently tombstoned (removed since the
    /// last recompile).
    pub tombstone_len: usize,
}

/// Counters describing the fused batch-publish pipeline: how batches
/// were dispatched on the persistent worker pool and whether the
/// per-worker arenas are being reused (steady state) or still growing.
/// Assembled by `Broker::pipeline_counters`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PipelineCounters {
    /// Batches pushed through `publish_batch` / `publish_batch_stats`.
    pub batches: u64,
    /// Batches fanned out on the persistent worker pool (> 1 worker).
    pub pooled_batches: u64,
    /// Batches run inline on the caller's thread (1 worker or at most
    /// one block of events).
    pub inline_batches: u64,
    /// Events pushed through the pipeline.
    pub events: u64,
    /// Largest worker count any batch used.
    pub max_workers: u64,
    /// Batches in which some worker's arena or metadata buffer had to
    /// reallocate. Stops increasing once the states are warm — the
    /// steady-state batch path performs no per-event allocation.
    pub arena_growths: u64,
    /// Workers whose fused pass panicked and were quarantined; their
    /// blocks were recomputed inline so the batch still completed.
    #[serde(default)]
    pub quarantined_workers: u64,
    /// Batches that needed at least one inline quarantine retry.
    #[serde(default)]
    pub retried_batches: u64,
    /// Event blocks dispatched through the SIMD block-mode matcher
    /// (events are matched 8 per block).
    #[serde(default)]
    pub match_blocks: u64,
    /// Blocks matched by a runtime-detected SIMD kernel (SSE2 or AVX2).
    #[serde(default)]
    pub simd_blocks: u64,
    /// Blocks matched by the portable scalar fallback kernels (non-x86
    /// hosts or `PUBSUB_NO_SIMD`).
    #[serde(default)]
    pub scalar_blocks: u64,
    /// Active event lanes summed over all blocks; lane utilization is
    /// `match_lanes / (8 × match_blocks)`.
    #[serde(default)]
    pub match_lanes: u64,
    /// Fault-clock segments dispatched by batches under an installed
    /// fault plan (each segment is one pipeline pass).
    #[serde(default)]
    pub fault_segments: u64,
    /// Fault-clock segments that ran in degraded (reachability-masked)
    /// mode.
    #[serde(default)]
    pub degraded_segments: u64,
    /// High-water mark of the staged serving path's ingest queue (in
    /// queued work items). 0 until a serving front-end reports it via
    /// `Broker::note_queue_depth`.
    #[serde(default)]
    pub ingest_queue_max_depth: u64,
    /// Submissions the serving front-end rejected under backpressure
    /// (full ingest queue ⇒ explicit reject ack). 0 on the synchronous
    /// path.
    #[serde(default)]
    pub ingest_rejected: u64,
    /// Per-event ingest-stage latency (submission → dequeue by the
    /// pipeline stage), recorded by the serving path. The sum of the two
    /// split histograms below, kept for cross-PR comparability.
    #[serde(default)]
    pub stage_ingest: LatencyHisto,
    /// Ingest split, per event: submission → shard-batcher flush — how
    /// long the event waited for the size-or-deadline trigger. This is
    /// the number adaptive batching shrinks when the queue is shallow.
    #[serde(default)]
    pub stage_batcher: LatencyHisto,
    /// Ingest split, per event: batcher flush → dequeue by a pipeline
    /// executor — time spent in the bounded ingest queue. This is the
    /// backlog signal adaptive batching grows the deadline under.
    #[serde(default)]
    pub stage_queue_wait: LatencyHisto,
    /// Per-batch pipeline-stage latency (the fused match → cost → decide
    /// pass plus the sequential fold), recorded by the serving path.
    #[serde(default)]
    pub stage_pipeline: LatencyHisto,
    /// Per-batch egress-stage latency (delivery fan-out and record
    /// stamping), recorded by the serving path.
    #[serde(default)]
    pub stage_egress: LatencyHisto,
}

/// Counters describing crash-recovery activity: journal replays at
/// `Broker::recover` time and supervised stage restarts reported by a
/// serving supervisor. All-zero on a broker that has never recovered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RecoveryCounters {
    /// Supervised stage restarts (executor/fold/egress threads replaced
    /// after a panic).
    pub restarts: u64,
    /// In-flight batches salvaged from a dead stage and replayed.
    pub replayed_batches: u64,
    /// Torn trailing journal records discarded during the last recovery.
    pub truncated_records: u64,
    /// Wall-clock milliseconds the last `Broker::recover` took (journal
    /// load + registry restore + engine compile).
    pub recovery_ms: u64,
    /// Journal tail operations replayed by the last recovery (ops after
    /// the last snapshot).
    pub replayed_ops: u64,
    /// Stale journal records the last recovery skipped because the
    /// snapshot had already folded them — a crash landed between the
    /// snapshot rename and the WAL truncation.
    #[serde(default)]
    pub stale_ops: u64,
}

/// One coherent view of every broker-side counter family, assembled by
/// `Broker::metrics_snapshot` — what a serving front-end or benchmark
/// polls instead of stitching the individual accessors together.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Current engine-snapshot epoch.
    pub epoch: u64,
    /// Cumulative delivery-cost report.
    pub report: CostReport,
    /// Churn machinery counters.
    pub churn: ChurnCounters,
    /// Batch-pipeline and serving-stage counters.
    pub pipeline: PipelineCounters,
    /// Scheme-cost memo misses (cost walks actually performed).
    pub scheme_cost_walks: u64,
    /// Crash-recovery counters (journal replays, supervised restarts).
    #[serde(default)]
    pub recovery: RecoveryCounters,
}

/// How a message ended up being delivered (for accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Not sent at all — nobody matched, or every matched subscriber was
    /// unreachable under the current fault state.
    Dropped {
        /// Matched subscribers that could not be reached (0 when the
        /// event simply matched nobody).
        unreachable: u32,
    },
    /// Sent as per-receiver unicasts.
    Unicast,
    /// Sent as one group multicast.
    Multicast,
    /// Sent as one multicast over the reachable subset of a
    /// fault-degraded group's tree.
    PartialMulticast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates() {
        let mut r = CostReport::default();
        r.record(
            MessageCosts {
                scheme: 5.0,
                unicast: 10.0,
                ideal: 4.0,
            },
            Delivery::Multicast,
            2,
            0,
        );
        r.record(
            MessageCosts {
                scheme: 3.0,
                unicast: 3.0,
                ideal: 2.0,
            },
            Delivery::Unicast,
            0,
            0,
        );
        r.record(
            MessageCosts::default(),
            Delivery::Dropped { unreachable: 0 },
            0,
            0,
        );
        assert_eq!(r.messages, 3);
        assert_eq!(r.multicasts, 1);
        assert_eq!(r.unicasts, 1);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.wasted_deliveries, 2);
        assert_eq!(r.scheme_cost, 8.0);
        // improvement = 100*(13-8)/(13-6) = 71.43%
        assert!((r.improvement_percent() - 100.0 * 5.0 / 7.0).abs() < 1e-9);
        assert!((r.avg_cost() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_bounds() {
        let mut r = CostReport::default();
        // Scheme == unicast -> 0%.
        r.record(
            MessageCosts {
                scheme: 10.0,
                unicast: 10.0,
                ideal: 5.0,
            },
            Delivery::Unicast,
            0,
            0,
        );
        assert_eq!(r.improvement_percent(), 0.0);
        // Scheme == ideal -> 100%.
        let mut r = CostReport::default();
        r.record(
            MessageCosts {
                scheme: 5.0,
                unicast: 10.0,
                ideal: 5.0,
            },
            Delivery::Multicast,
            0,
            0,
        );
        assert_eq!(r.improvement_percent(), 100.0);
        // Scheme worse than unicast -> negative.
        let mut r = CostReport::default();
        r.record(
            MessageCosts {
                scheme: 12.0,
                unicast: 10.0,
                ideal: 5.0,
            },
            Delivery::Multicast,
            3,
            0,
        );
        assert!(r.improvement_percent() < 0.0);
    }

    #[test]
    fn no_headroom_is_zero() {
        let mut r = CostReport::default();
        r.record(
            MessageCosts {
                scheme: 7.0,
                unicast: 7.0,
                ideal: 7.0,
            },
            Delivery::Unicast,
            0,
            0,
        );
        assert_eq!(r.improvement_percent(), 0.0);
        assert_eq!(CostReport::default().improvement_percent(), 0.0);
        assert_eq!(CostReport::default().avg_cost(), 0.0);
    }

    #[test]
    fn degraded_deliveries_are_accounted() {
        let mut r = CostReport::default();
        r.record(
            MessageCosts {
                scheme: 4.0,
                unicast: 6.0,
                ideal: 3.0,
            },
            Delivery::PartialMulticast,
            1,
            2,
        );
        r.record(
            MessageCosts::default(),
            Delivery::Dropped { unreachable: 3 },
            0,
            3,
        );
        assert_eq!(r.messages, 2);
        assert_eq!(r.partial_multicasts, 1);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.multicasts, 0);
        assert_eq!(r.wasted_deliveries, 1);
        assert_eq!(r.unreachable_skipped, 5);
    }

    #[test]
    fn histo_records_into_log2_buckets() {
        let mut h = LatencyHisto::default();
        h.record(0); // clamps to 1 → bucket 0
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.total_ns, 1 + 2 + 3 + 1024);
        // A sample beyond the last bucket clamps instead of panicking.
        h.record(u64::MAX);
        assert_eq!(h.buckets[HISTO_BUCKETS - 1], 1);
    }

    #[test]
    fn histo_quantiles_bracket_the_samples() {
        let mut h = LatencyHisto::default();
        for _ in 0..99 {
            h.record(1000);
        }
        h.record(1_000_000);
        // p50 lives in the 1000ns bucket [512, 1024); p999 in the
        // millisecond-ish bucket.
        let p50 = h.quantile_ns(0.50);
        assert!((512.0..=1024.0).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile_ns(0.999);
        assert!((524_288.0..=1_048_576.0).contains(&p999), "p999 = {p999}");
        assert!(h.quantile_ns(0.0) >= 512.0);
        assert_eq!(LatencyHisto::default().quantile_ns(0.5), 0.0);
        assert!((h.mean_ns() - (99.0 * 1000.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histo_merge_adds_counts() {
        let mut a = LatencyHisto::default();
        let mut b = LatencyHisto::default();
        a.record(10);
        b.record(10);
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets[3], 2);
        assert_eq!(a.total_ns, 10 + 10 + 100_000);
    }

    #[test]
    fn counters_with_histos_roundtrip_serde() {
        let mut c = PipelineCounters {
            ingest_queue_max_depth: 7,
            ingest_rejected: 3,
            ..PipelineCounters::default()
        };
        c.stage_pipeline.record(12_345);
        let json = serde_json::to_string(&c).expect("serialize");
        let back: PipelineCounters = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }

    #[test]
    fn empty_histo_quantiles_are_zero() {
        let h = LatencyHisto::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile_ns(q), 0.0, "q={q} on an empty histogram");
        }
    }

    #[test]
    fn single_sample_histo_quantiles_share_one_bucket() {
        let mut h = LatencyHisto::default();
        h.record(1_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 1_000.0);
        // Every quantile of a single sample resolves in its bucket
        // [512, 1024): above the bucket floor, at most the next power.
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = h.quantile_ns(q);
            assert!((512.0..=1024.0).contains(&v), "q={q} gave {v}");
        }
        // A zero-ns sample clamps to the first bucket instead of
        // underflowing the log2 index.
        let mut h = LatencyHisto::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ns(0.5) >= 1.0);
    }

    #[test]
    fn values_beyond_the_top_bucket_clamp() {
        let mut h = LatencyHisto::default();
        // 2^63 ns is far past the top bucket (index HISTO_BUCKETS - 1 =
        // 39); the sample must clamp there, not index out of bounds.
        h.record(u64::MAX);
        h.record(1u64 << 62);
        assert_eq!(h.count(), 2);
        let top_floor = (1u64 << (HISTO_BUCKETS - 1)) as f64;
        assert!(h.quantile_ns(0.5) >= top_floor);
        assert!(h.quantile_ns(1.0) <= 2.0 * top_floor);
        // total_ns saturates instead of wrapping.
        assert_eq!(h.mean_ns(), u64::MAX as f64 / 2.0);
    }

    #[test]
    fn quantiles_are_monotone_across_p50_p99_p999() {
        let mut h = LatencyHisto::default();
        // A spread of magnitudes, heavily skewed to the low end.
        for i in 0..1000u64 {
            h.record(100 + i);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        h.record(500_000_000);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
        assert!((64.0..=2048.0).contains(&p50), "p50 {p50} off the data");
        assert!(p999 >= p50);
        // Degenerate quantile arguments clamp instead of panicking.
        assert!(h.quantile_ns(-1.0) <= h.quantile_ns(2.0));
    }
}
