//! The shared read path of the concurrent pipeline stage.
//!
//! The broker's publish path splits into two halves with very different
//! concurrency needs:
//!
//! * the **fused pass** (match → cost → decide) only *reads*: the
//!   epoch-versioned [`EngineSnapshot`], the distribution policy, the
//!   churn overlay, and the publisher's shortest-path-tree rows;
//! * the **fold** *mutates*: the scheme-cost memo, the cumulative f64
//!   cost report, fault health/clock state.
//!
//! [`PublishView`] materializes the first half as an owned, immutable
//! value: `Broker::publish_view` snapshots everything the pass reads
//! (Arc-sharing the engine snapshot, cloning the small mutable bits —
//! overlay, SPT rows, policy) so any number of serving executor threads
//! can run `PublishView::process_into` concurrently without touching
//! the broker, while the broker-owning fold thread consumes their
//! scratches in submission order via `Broker::fold_staged`. The view is
//! epoch-stamped; the staged server republishes it through a
//! `pubsub_parallel::VersionedCell` exactly when a control operation
//! (subscribe / unsubscribe / recompile) lands — the epoch barrier that
//! keeps in-flight batches on their submission-time engine state.
//!
//! Memoized scheme costs and fault health deliberately stay on the fold
//! side rather than being sharded into the view: the fused pass only
//! ever computes per-event unicast/ideal costs (pure functions of the
//! SPT rows), and every state the fallback ladder reads — memo rows,
//! hysteresis counters, the fault step clock — is keyed by publisher
//! and mutated in publish order, which the in-order fold preserves and
//! concurrent executors could not.

use std::fmt;
use std::sync::Arc;

use pubsub_geom::{EventSoA, Point};
use pubsub_netsim::{NodeId, SptTable};
use pubsub_stree::{DeltaOverlay, Tombstones};

use crate::broker::{DeliveryMode, FusedPass};
use crate::matcher::MatchOverlay;
use crate::pipeline::PublishScratch;
use crate::{BrokerError, DistributionPolicy, EngineSnapshot};

/// An owned clone of the broker's churn overlay, so a [`PublishView`]
/// can outlive the broker borrow it was built from. Rebuilt on every
/// view publication (i.e. per control operation, not per batch).
#[derive(Clone, Debug)]
pub(crate) struct OwnedOverlay {
    pub(crate) overlay: DeltaOverlay,
    pub(crate) tombstones: Tombstones,
    pub(crate) owners: Vec<NodeId>,
    pub(crate) base_count: u32,
    pub(crate) max_node: u32,
}

/// Everything the fused match → cost → decide pass reads, owned and
/// immutable — the shared read path of the concurrent pipeline stage.
/// Built by `Broker::publish_view`; see the module docs for the
/// read/write split.
pub struct PublishView {
    pub(crate) snapshot: Arc<EngineSnapshot>,
    pub(crate) policy: DistributionPolicy,
    pub(crate) delivery: DeliveryMode,
    pub(crate) publisher: NodeId,
    pub(crate) alm_dist: Option<Vec<Vec<f64>>>,
    pub(crate) overlay: Option<OwnedOverlay>,
    /// Cloned SPT rows; always contains the publisher's row (and the
    /// rendezvous point's in sparse mode) — `publish_view` ensures them
    /// before cloning.
    pub(crate) spt: SptTable,
    pub(crate) epoch: u64,
    pub(crate) dims: usize,
    pub(crate) faults_active: bool,
}

impl fmt::Debug for PublishView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PublishView")
            .field("epoch", &self.epoch)
            .field("publisher", &self.publisher)
            .field("delivery", &self.delivery)
            .field("dims", &self.dims)
            .field("overlaid", &self.overlay.is_some())
            .field("faults_active", &self.faults_active)
            .finish_non_exhaustive()
    }
}

impl PublishView {
    /// The engine-snapshot epoch this view was built at — the epoch
    /// every batch processed through it must be folded under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dimensionality of the event space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether a fault plan was installed on the source broker. The
    /// fused pass is fault-oblivious (the fault clock is fold-side,
    /// per-event state); a staged server must route batches through the
    /// broker's own segmented fault path instead of this view while a
    /// plan is active.
    pub fn faults_active(&self) -> bool {
        self.faults_active
    }

    /// Runs the fused match → cost → decide pass over `events` into
    /// `scratch` (reset first), exactly as one synchronous
    /// single-worker `Broker::publish_batch` pass would — bit-identical
    /// arena slices and per-event meta. When `soa` is given it must
    /// mirror `events` (same coordinates in append order); the SIMD
    /// blocks then fill from its columns without transposing.
    ///
    /// Read-only and reentrant: any number of threads may process
    /// batches through the same view concurrently, each with its own
    /// scratch. Fold the scratch into the broker with
    /// `Broker::fold_staged` in submission order, under this view's
    /// [`PublishView::epoch`].
    ///
    /// # Errors
    ///
    /// [`BrokerError::DimensionMismatch`] if any event's dimensionality
    /// differs from the event space's — the whole batch rejects before
    /// anything is processed, matching `Broker::publish_batch`.
    pub fn process_into(
        &self,
        events: &[Point],
        soa: Option<&EventSoA>,
        scratch: &mut PublishScratch,
    ) -> Result<(), BrokerError> {
        for event in events {
            if event.dims() != self.dims {
                return Err(BrokerError::DimensionMismatch {
                    expected: self.dims,
                    got: event.dims(),
                });
            }
        }
        debug_assert!(soa.is_none_or(|s| s.len() == events.len() && s.dims() == self.dims));
        let overlay = self.overlay.as_ref().map(|o| MatchOverlay {
            overlay: &o.overlay,
            owners: &o.owners,
            tombstones: &o.tombstones,
            base_count: o.base_count,
            max_node: o.max_node,
        });
        let pub_view = self.spt.view(self.publisher).expect("publisher row cloned");
        let sparse = match self.delivery {
            DeliveryMode::SparseMode { rendezvous } => {
                let rp_view = self.spt.view(rendezvous).expect("rendezvous row cloned");
                Some((rp_view, pub_view.dist(rendezvous)))
            }
            _ => None,
        };
        let pass = FusedPass {
            snapshot: &self.snapshot,
            policy: &self.policy,
            delivery: self.delivery,
            publisher: self.publisher,
            alm_dist: self.alm_dist.as_deref(),
            overlay,
            pub_view,
            sparse,
            degraded: false,
            events,
            soa,
        };
        pubsub_parallel::pipeline_inline(scratch, events.len(), |_w, state, ranges| {
            pass.run(state, ranges)
        });
        Ok(())
    }
}
