//! The immutable half of the two-layer broker core: one compiled engine
//! snapshot.
//!
//! An [`EngineSnapshot`] bundles everything the publish path reads —
//! the compiled [`Matcher`] (S-tree + flat index), the clustering
//! [`GridModel`], the [`SpacePartition`] and the materialized
//! [`MulticastGroups`] — behind one epoch number. The [`crate::Broker`]
//! swaps the whole bundle atomically (`Arc` replacement) whenever any of
//! it changes: a full recompile bumps the epoch and replaces everything; a
//! churn-driven group update bumps the epoch and replaces only the
//! groups/partition `Arc`s, sharing the rest. Epoch-keyed caches (the
//! scheme-cost memo) invalidate themselves by comparing epochs instead of
//! being told.

use std::sync::Arc;

use pubsub_clustering::{GridModel, SpacePartition};

use crate::{Matcher, MulticastGroups, SubscriptionHandle, SubscriptionId};

/// One immutable, epoch-versioned compilation of the engine state the
/// publish path reads. Obtained from [`crate::Broker::snapshot`]; all
/// fields are shared (`Arc`), so cloning a snapshot is cheap and a clone
/// stays valid (if stale) across later broker mutations.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    pub(crate) epoch: u64,
    pub(crate) matcher: Arc<Matcher>,
    pub(crate) grid_model: Arc<GridModel>,
    pub(crate) partition: Arc<SpacePartition>,
    pub(crate) groups: Arc<MulticastGroups>,
    /// Compiled [`SubscriptionId`] → registry handle, in id order.
    pub(crate) id_to_handle: Arc<Vec<SubscriptionHandle>>,
}

impl EngineSnapshot {
    /// The snapshot's version. Strictly increases on every swap; two
    /// snapshots with the same epoch are the same snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The compiled matcher.
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The grid model the partition was clustered from. Between full
    /// recompiles this is the model of the *last compile*: churn-driven
    /// group updates keep the groups exact but do not rebuild the model.
    pub fn grid_model(&self) -> &GridModel {
        &self.grid_model
    }

    /// The event-space partition `S_1..S_n` (+ implicit `S_0`).
    pub fn partition(&self) -> &SpacePartition {
        &self.partition
    }

    /// The multicast groups `M_1..M_n`.
    pub fn groups(&self) -> &MulticastGroups {
        &self.groups
    }

    /// The registry handle a *compiled* subscription id maps to (`None`
    /// for overlay ids at or past the compiled range).
    pub fn handle_of(&self, id: SubscriptionId) -> Option<SubscriptionHandle> {
        self.id_to_handle.get(id.0 as usize).copied()
    }

    /// Number of compiled subscriptions (overlay ids start here).
    pub fn compiled_count(&self) -> usize {
        self.id_to_handle.len()
    }
}
