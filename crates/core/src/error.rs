use std::error::Error;
use std::fmt;

use pubsub_clustering::ClusterError;
use pubsub_geom::GeomError;
use pubsub_netsim::NetError;
use pubsub_stree::IndexError;

/// Errors produced while building or driving a [`crate::Broker`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BrokerError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// A subscription or event did not match the space's dimensionality.
    DimensionMismatch {
        /// Space dimensionality.
        expected: usize,
        /// Offending object's dimensionality.
        got: usize,
    },
    /// A subscription referenced a node that is not in the topology.
    UnknownNode {
        /// The offending node id (raw value).
        node: u32,
    },
    /// A subscription handle that was never issued, or whose subscription
    /// has already been removed.
    UnknownHandle {
        /// The raw handle value.
        handle: u32,
    },
    /// Error from the durable subscription journal: an I/O failure while
    /// appending or snapshotting, or corrupt data found during recovery.
    /// If appending fails after an op was applied in memory, the broker
    /// is ahead of the journal and the op must be considered unacked.
    Journal {
        /// What failed.
        message: String,
    },
    /// Error from the spatial index layer.
    Index(IndexError),
    /// Error from the clustering layer.
    Cluster(ClusterError),
    /// Error from the geometry layer.
    Geom(GeomError),
    /// Error from the network layer.
    Net(NetError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::InvalidConfig {
                parameter,
                constraint,
            } => write!(
                f,
                "invalid configuration: {parameter} must satisfy {constraint}"
            ),
            BrokerError::DimensionMismatch { expected, got } => {
                write!(f, "object has {got} dimensions, event space has {expected}")
            }
            BrokerError::UnknownNode { node } => {
                write!(f, "node {node} is not in the topology")
            }
            BrokerError::UnknownHandle { handle } => {
                write!(f, "subscription handle {handle} is not live")
            }
            BrokerError::Journal { message } => write!(f, "journal error: {message}"),
            BrokerError::Index(e) => write!(f, "index error: {e}"),
            BrokerError::Cluster(e) => write!(f, "clustering error: {e}"),
            BrokerError::Geom(e) => write!(f, "geometry error: {e}"),
            BrokerError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Index(e) => Some(e),
            BrokerError::Cluster(e) => Some(e),
            BrokerError::Geom(e) => Some(e),
            BrokerError::Net(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<IndexError> for BrokerError {
    fn from(e: IndexError) -> Self {
        BrokerError::Index(e)
    }
}

#[doc(hidden)]
impl From<ClusterError> for BrokerError {
    fn from(e: ClusterError) -> Self {
        BrokerError::Cluster(e)
    }
}

#[doc(hidden)]
impl From<GeomError> for BrokerError {
    fn from(e: GeomError) -> Self {
        BrokerError::Geom(e)
    }
}

#[doc(hidden)]
impl From<NetError> for BrokerError {
    fn from(e: NetError) -> Self {
        BrokerError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_sources() {
        let e = BrokerError::Index(IndexError::UnboundedRect { index: 3 });
        assert!(e.to_string().contains("index error"));
        assert!(Error::source(&e).is_some());
        let c = BrokerError::InvalidConfig {
            parameter: "threshold",
            constraint: "0 <= t <= 1",
        };
        assert!(Error::source(&c).is_none());
        assert!(c.to_string().contains("threshold"));
    }
}
