//! The distribution-method scheme (paper §4): the per-message decision.

use pubsub_netsim::NodeId;
use serde::{Deserialize, Serialize};

use crate::BrokerError;

/// How one publication is delivered.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Decision {
    /// No interested subscribers: "the publication will be not sent".
    Drop,
    /// Unicast to exactly the interested subscribers — either the event
    /// fell in the catch-all `S_0`, or the interested fraction of the
    /// group was below the threshold.
    Unicast {
        /// Why unicast was chosen.
        reason: UnicastReason,
    },
    /// One dense-mode multicast to group `M_q` (uninterested members
    /// filter the message out locally).
    Multicast {
        /// The group index `q`.
        group: usize,
    },
    /// One multicast over only the *reachable* members of a
    /// fault-degraded group `M_q` — the middle rung of the degraded-mode
    /// fallback ladder (multicast → partial multicast → unicast). Only
    /// produced by brokers with an installed fault plan.
    PartialMulticast {
        /// The group index `q`.
        group: usize,
    },
}

/// Why a publication was unicast.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UnicastReason {
    /// The event fell in the catch-all region `S_0`.
    CatchAll,
    /// The event fell in `S_q` but `|s|/|M_q| < t`.
    BelowThreshold,
    /// The event fell in `S_q` but faults severed the group's multicast
    /// tree (fewer than half the members reachable): the bottom rung of
    /// the degraded-mode fallback ladder.
    GroupSevered,
}

/// The threshold rule: unicast iff `|s| / |M_q| < t`.
///
/// `t = 0` reproduces the *static* scheme (always multicast when a group
/// region is hit); the paper finds `t ≈ 0.15` consistently best.
///
/// Beyond the paper, the policy supports *per-group* threshold overrides
/// — the §6 future-work question of "where to draw the line" for each
/// individual group; see [`crate::AdaptiveController`] for a controller
/// that learns them from observed costs.
///
/// # Example
///
/// ```
/// use pubsub_core::{Decision, DistributionPolicy};
/// use pubsub_netsim::NodeId;
///
/// # fn main() -> Result<(), pubsub_core::BrokerError> {
/// let policy = DistributionPolicy::new(0.15)?;
/// // 1 interested out of a 10-member group: 10% < 15% -> unicast.
/// let d = policy.decide(Some(2), &[NodeId(4)], 10);
/// assert!(matches!(d, Decision::Unicast { .. }));
/// // 3 of 10: 30% >= 15% -> multicast to the group.
/// let d = policy.decide(Some(2), &[NodeId(4), NodeId(5), NodeId(6)], 10);
/// assert_eq!(d, Decision::Multicast { group: 2 });
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DistributionPolicy {
    threshold: f64,
    /// The paper's alternative rule ("the number (or the ratio of the
    /// number to the group size)"): when set, unicast iff
    /// `|s| < min_interested`, ignoring the group size.
    min_interested: Option<usize>,
    /// Sparse per-group overrides; indexes beyond the vector fall back to
    /// the global threshold.
    group_overrides: Vec<Option<f64>>,
}

impl DistributionPolicy {
    /// Creates a policy with global threshold `t`.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] unless `0 ≤ t ≤ 1`.
    pub fn new(threshold: f64) -> Result<Self, BrokerError> {
        Self::check(threshold)?;
        Ok(DistributionPolicy {
            threshold,
            min_interested: None,
            group_overrides: Vec::new(),
        })
    }

    /// Creates a policy using the *absolute count* rule (§1 mentions both
    /// flavors): multicast iff at least `min_interested` subscribers
    /// matched, regardless of group size. `0` is the static scheme.
    pub fn by_count(min_interested: usize) -> Self {
        DistributionPolicy {
            threshold: 0.0,
            min_interested: Some(min_interested),
            group_overrides: Vec::new(),
        }
    }

    /// The absolute-count rule in force, if any.
    pub fn min_interested(&self) -> Option<usize> {
        self.min_interested
    }

    fn check(threshold: f64) -> Result<(), BrokerError> {
        if !(0.0..=1.0).contains(&threshold) || threshold.is_nan() {
            return Err(BrokerError::InvalidConfig {
                parameter: "threshold",
                constraint: "0 <= t <= 1",
            });
        }
        Ok(())
    }

    /// The global threshold `t`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The threshold in force for a group (the override if set, the
    /// global threshold otherwise).
    pub fn threshold_for(&self, group: usize) -> f64 {
        self.group_overrides
            .get(group)
            .copied()
            .flatten()
            .unwrap_or(self.threshold)
    }

    /// Overrides the threshold of one group.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] unless `0 ≤ t ≤ 1`.
    pub fn set_group_threshold(&mut self, group: usize, threshold: f64) -> Result<(), BrokerError> {
        Self::check(threshold)?;
        if self.group_overrides.len() <= group {
            self.group_overrides.resize(group + 1, None);
        }
        self.group_overrides[group] = Some(threshold);
        Ok(())
    }

    /// Removes every per-group override.
    pub fn clear_group_thresholds(&mut self) {
        self.group_overrides.clear();
    }

    /// Decides how to deliver a publication.
    ///
    /// * `group` — the group region `S_q` containing the event (`None`
    ///   for `S_0`);
    /// * `interested` — the matched subscriber list `s`;
    /// * `group_size` — `|M_q|` (ignored when `group` is `None`).
    pub fn decide(
        &self,
        group: Option<usize>,
        interested: &[NodeId],
        group_size: usize,
    ) -> Decision {
        self.decide_counts(group, interested.len(), group_size)
    }

    /// [`DistributionPolicy::decide`] on bare counts — the rule only ever
    /// looks at `|s|` and `|M_q|`, so hot paths that already hold the
    /// deduplicated count can skip the slice.
    pub fn decide_counts(
        &self,
        group: Option<usize>,
        interested: usize,
        group_size: usize,
    ) -> Decision {
        if interested == 0 {
            return Decision::Drop;
        }
        match group {
            None => Decision::Unicast {
                reason: UnicastReason::CatchAll,
            },
            Some(q) => {
                let below = match self.min_interested {
                    Some(min) => interested < min,
                    None => {
                        let ratio = if group_size == 0 {
                            0.0
                        } else {
                            interested as f64 / group_size as f64
                        };
                        ratio < self.threshold_for(q)
                    }
                };
                if below {
                    Decision::Unicast {
                        reason: UnicastReason::BelowThreshold,
                    }
                } else {
                    Decision::Multicast { group: q }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    #[test]
    fn validation() {
        assert!(DistributionPolicy::new(-0.1).is_err());
        assert!(DistributionPolicy::new(1.1).is_err());
        assert!(DistributionPolicy::new(f64::NAN).is_err());
        assert_eq!(DistributionPolicy::new(0.3).unwrap().threshold(), 0.3);
    }

    #[test]
    fn empty_interest_drops_even_inside_a_group() {
        let p = DistributionPolicy::new(0.15).unwrap();
        assert_eq!(p.decide(Some(1), &[], 10), Decision::Drop);
        assert_eq!(p.decide(None, &[], 10), Decision::Drop);
    }

    #[test]
    fn catch_all_always_unicasts() {
        let p = DistributionPolicy::new(0.0).unwrap();
        assert_eq!(
            p.decide(None, &nodes(5), 0),
            Decision::Unicast {
                reason: UnicastReason::CatchAll
            }
        );
    }

    #[test]
    fn threshold_zero_is_the_static_scheme() {
        let p = DistributionPolicy::new(0.0).unwrap();
        // Even 1 of 1000 multicasts: ratio 0.001 >= 0.
        assert_eq!(
            p.decide(Some(7), &nodes(1), 1000),
            Decision::Multicast { group: 7 }
        );
    }

    #[test]
    fn threshold_boundary_is_inclusive_for_multicast() {
        let p = DistributionPolicy::new(0.15).unwrap();
        // Exactly 15%: 3/20 -> multicast (rule is `< t` for unicast).
        assert_eq!(
            p.decide(Some(0), &nodes(3), 20),
            Decision::Multicast { group: 0 }
        );
        // Just below: 2/20 = 10% -> unicast.
        assert_eq!(
            p.decide(Some(0), &nodes(2), 20),
            Decision::Unicast {
                reason: UnicastReason::BelowThreshold
            }
        );
    }

    #[test]
    fn threshold_one_multicasts_only_full_groups() {
        let p = DistributionPolicy::new(1.0).unwrap();
        assert_eq!(
            p.decide(Some(0), &nodes(10), 10),
            Decision::Multicast { group: 0 }
        );
        assert!(matches!(
            p.decide(Some(0), &nodes(9), 10),
            Decision::Unicast { .. }
        ));
    }

    #[test]
    fn absolute_count_rule() {
        let p = DistributionPolicy::by_count(3);
        assert_eq!(p.min_interested(), Some(3));
        // Group size is irrelevant: 2 interested always unicasts...
        assert!(matches!(
            p.decide(Some(0), &nodes(2), 4),
            Decision::Unicast {
                reason: UnicastReason::BelowThreshold
            }
        ));
        assert!(matches!(
            p.decide(Some(0), &nodes(2), 10_000),
            Decision::Unicast { .. }
        ));
        // ...and 3 interested always multicasts.
        assert_eq!(
            p.decide(Some(5), &nodes(3), 4),
            Decision::Multicast { group: 5 }
        );
        assert_eq!(
            p.decide(Some(5), &nodes(3), 10_000),
            Decision::Multicast { group: 5 }
        );
        // Count 0 is the static scheme; drops still apply.
        let p0 = DistributionPolicy::by_count(0);
        assert_eq!(
            p0.decide(Some(1), &nodes(1), 9),
            Decision::Multicast { group: 1 }
        );
        assert_eq!(p0.decide(Some(1), &[], 9), Decision::Drop);
        // Fraction policies report no count rule.
        assert_eq!(DistributionPolicy::new(0.5).unwrap().min_interested(), None);
    }

    #[test]
    fn decide_counts_agrees_with_decide() {
        for p in [
            DistributionPolicy::new(0.15).unwrap(),
            DistributionPolicy::new(0.0).unwrap(),
            DistributionPolicy::by_count(3),
        ] {
            for group in [None, Some(0), Some(3)] {
                for interested in 0..6usize {
                    for group_size in [0usize, 1, 5, 20] {
                        assert_eq!(
                            p.decide_counts(group, interested, group_size),
                            p.decide(group, &nodes(interested), group_size),
                            "group={group:?} interested={interested} size={group_size}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_group_overrides() {
        let mut p = DistributionPolicy::new(0.15).unwrap();
        p.set_group_threshold(2, 0.5).unwrap();
        assert_eq!(p.threshold_for(0), 0.15);
        assert_eq!(p.threshold_for(2), 0.5);
        assert_eq!(p.threshold_for(99), 0.15);
        // 3/10 = 30%: multicast for group 0 (t=.15) but unicast for
        // group 2 (t=.5).
        assert_eq!(
            p.decide(Some(0), &nodes(3), 10),
            Decision::Multicast { group: 0 }
        );
        assert!(matches!(
            p.decide(Some(2), &nodes(3), 10),
            Decision::Unicast { .. }
        ));
        assert!(p.set_group_threshold(1, 1.5).is_err());
        p.clear_group_thresholds();
        assert_eq!(p.threshold_for(2), 0.15);
    }

    #[test]
    fn zero_sized_group_unicasts() {
        // Degenerate: matched subscribers but an empty group (can happen
        // if the group's cells lost all members). Ratio treated as 0.
        let p = DistributionPolicy::new(0.15).unwrap();
        assert!(matches!(
            p.decide(Some(0), &nodes(2), 0),
            Decision::Unicast { .. }
        ));
        // ...unless t = 0, where the static scheme multicasts regardless.
        let p0 = DistributionPolicy::new(0.0).unwrap();
        assert_eq!(
            p0.decide(Some(0), &nodes(2), 0),
            Decision::Multicast { group: 0 }
        );
    }
}
