//! The mutable half of the two-layer broker core: a registry of live
//! subscriptions with stable handles.
//!
//! The [`crate::Broker`] splits its state into this registry (the only
//! structure `subscribe`/`unsubscribe` mutate directly) and an immutable
//! [`crate::EngineSnapshot`] compiled from it. Handles stay valid across
//! engine recompiles — the registry slot is the subscription's identity,
//! while the engine-internal [`crate::SubscriptionId`]s are reassigned on
//! every recompile.

use std::fmt;

use pubsub_geom::Rect;
use pubsub_netsim::NodeId;
use serde::{Deserialize, Serialize};

use crate::BrokerError;

/// Stable identity of one registered subscription, valid until it is
/// explicitly removed — in particular across engine recompiles, which
/// renumber the internal [`crate::SubscriptionId`]s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SubscriptionHandle(u32);

impl SubscriptionHandle {
    /// The raw slot index (diagnostics; not an engine id).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from its raw slot index — journal replay only,
    /// where the raw value was issued by this registry before a crash.
    pub(crate) fn from_raw(raw: u32) -> Self {
        SubscriptionHandle(raw)
    }
}

impl fmt::Display for SubscriptionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-handle#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    node: NodeId,
    /// The subscription as registered (pre-clamp; the engine clamps).
    rect: Rect,
    alive: bool,
    /// The engine id currently bound to this slot: the compiled
    /// [`crate::SubscriptionId`] after the last recompile, or an overlay
    /// id past the compiled range for subscriptions added since.
    engine_id: u32,
}

/// The mutable subscription store: insert/remove with stable
/// [`SubscriptionHandle`]s, per-node live refcounts, and iteration in
/// insertion order (the order every engine compile indexes).
///
/// Slots are never reused, so a removed handle stays invalid forever
/// instead of silently aliasing a newer subscription.
#[derive(Debug, Clone)]
pub struct SubscriptionRegistry {
    slots: Vec<Slot>,
    live: usize,
    /// Per node (by raw id): number of live subscriptions it owns.
    node_refcounts: Vec<u32>,
    /// Number of nodes with at least one live subscription.
    active_nodes: usize,
}

impl SubscriptionRegistry {
    /// Creates an empty registry for a topology of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        SubscriptionRegistry {
            slots: Vec::new(),
            live: 0,
            node_refcounts: vec![0; node_count],
            active_nodes: 0,
        }
    }

    /// Registers a subscription and returns its stable handle.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownNode`] if `node` is outside the
    /// topology the registry was created for.
    pub fn insert(&mut self, node: NodeId, rect: Rect) -> Result<SubscriptionHandle, BrokerError> {
        if node.0 as usize >= self.node_refcounts.len() {
            return Err(BrokerError::UnknownNode { node: node.0 });
        }
        let handle = SubscriptionHandle(self.slots.len() as u32);
        self.slots.push(Slot {
            node,
            rect,
            alive: true,
            engine_id: u32::MAX,
        });
        self.live += 1;
        let rc = &mut self.node_refcounts[node.0 as usize];
        if *rc == 0 {
            self.active_nodes += 1;
        }
        *rc += 1;
        Ok(handle)
    }

    /// Removes a live subscription, returning its node and rectangle.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownHandle`] for a handle that was never
    /// issued or is already removed.
    pub fn remove(&mut self, handle: SubscriptionHandle) -> Result<(NodeId, Rect), BrokerError> {
        let slot = self
            .slots
            .get_mut(handle.0 as usize)
            .filter(|s| s.alive)
            .ok_or(BrokerError::UnknownHandle { handle: handle.0 })?;
        slot.alive = false;
        self.live -= 1;
        let node = slot.node;
        let rect = slot.rect.clone();
        let rc = &mut self.node_refcounts[node.0 as usize];
        *rc -= 1;
        if *rc == 0 {
            self.active_nodes -= 1;
        }
        Ok((node, rect))
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no subscription is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `true` if the handle refers to a live subscription.
    pub fn contains(&self, handle: SubscriptionHandle) -> bool {
        self.slots.get(handle.0 as usize).is_some_and(|s| s.alive)
    }

    /// The owning node of a live subscription.
    pub fn node(&self, handle: SubscriptionHandle) -> Option<NodeId> {
        self.slots
            .get(handle.0 as usize)
            .filter(|s| s.alive)
            .map(|s| s.node)
    }

    /// The registered (pre-clamp) rectangle of a live subscription.
    pub fn rect(&self, handle: SubscriptionHandle) -> Option<&Rect> {
        self.slots
            .get(handle.0 as usize)
            .filter(|s| s.alive)
            .map(|s| &s.rect)
    }

    /// Number of live subscriptions owned by `node` (0 for out-of-range
    /// nodes).
    pub fn node_refcount(&self, node: NodeId) -> u32 {
        self.node_refcounts
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct nodes with at least one live subscription.
    pub fn subscriber_count(&self) -> usize {
        self.active_nodes
    }

    /// Iterates live subscriptions in insertion order — the order every
    /// engine compile assigns [`crate::SubscriptionId`]s in, which is what
    /// makes an incremental recompile bit-identical to a from-scratch
    /// build over the same survivors.
    pub fn live(&self) -> impl Iterator<Item = (SubscriptionHandle, NodeId, &Rect)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, s)| (SubscriptionHandle(i as u32), s.node, &s.rect))
    }

    /// Total handles ever issued (live + dead slots) — the next raw
    /// handle value `insert` would assign.
    pub fn issued(&self) -> usize {
        self.slots.len()
    }

    /// Node capacity the registry was created for (topology node count).
    pub(crate) fn node_capacity(&self) -> usize {
        self.node_refcounts.len()
    }

    /// Rebuilds a registry from a journal snapshot: `next_slot` slots,
    /// all dead except the `live` entries, so handle numbering (and the
    /// never-reuse guarantee) is identical to the pre-crash registry.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Journal`] for out-of-range handles or nodes, or a
    /// handle listed twice.
    pub(crate) fn restore<I>(
        node_count: usize,
        next_slot: u32,
        live: I,
    ) -> Result<Self, BrokerError>
    where
        I: IntoIterator<Item = (u32, NodeId, Rect)>,
    {
        let mut registry = SubscriptionRegistry::new(node_count);
        let dead = Rect::from_corners(&[0.0], &[0.0]).expect("degenerate placeholder rect");
        registry.slots = (0..next_slot)
            .map(|_| Slot {
                node: NodeId(0),
                rect: dead.clone(),
                alive: false,
                engine_id: u32::MAX,
            })
            .collect();
        for (raw, node, rect) in live {
            let slot =
                registry
                    .slots
                    .get_mut(raw as usize)
                    .ok_or_else(|| BrokerError::Journal {
                        message: format!("snapshot handle {raw} is outside the issued range"),
                    })?;
            if slot.alive {
                return Err(BrokerError::Journal {
                    message: format!("snapshot lists handle {raw} twice"),
                });
            }
            if node.0 as usize >= node_count {
                return Err(BrokerError::Journal {
                    message: format!("snapshot node {} is outside the topology", node.0),
                });
            }
            slot.node = node;
            slot.rect = rect;
            slot.alive = true;
            registry.live += 1;
            let rc = &mut registry.node_refcounts[node.0 as usize];
            if *rc == 0 {
                registry.active_nodes += 1;
            }
            *rc += 1;
        }
        Ok(registry)
    }

    /// The engine id currently bound to a live handle.
    pub(crate) fn engine_id(&self, handle: SubscriptionHandle) -> Option<u32> {
        self.slots
            .get(handle.0 as usize)
            .filter(|s| s.alive)
            .map(|s| s.engine_id)
    }

    /// Binds an engine id to a live handle (compile or overlay insert).
    pub(crate) fn set_engine_id(&mut self, handle: SubscriptionHandle, engine_id: u32) {
        self.slots[handle.0 as usize].engine_id = engine_id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: f64, hi: f64) -> Rect {
        Rect::from_corners(&[lo], &[hi]).unwrap()
    }

    #[test]
    fn insert_remove_refcounts() {
        let mut reg = SubscriptionRegistry::new(4);
        let a = reg.insert(NodeId(1), rect(0.0, 1.0)).unwrap();
        let b = reg.insert(NodeId(1), rect(2.0, 3.0)).unwrap();
        let c = reg.insert(NodeId(3), rect(4.0, 5.0)).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.subscriber_count(), 2);
        assert_eq!(reg.node_refcount(NodeId(1)), 2);
        assert_eq!(reg.node(b), Some(NodeId(1)));
        assert_eq!(reg.rect(c), Some(&rect(4.0, 5.0)));

        let (node, r) = reg.remove(a).unwrap();
        assert_eq!((node, r), (NodeId(1), rect(0.0, 1.0)));
        assert_eq!(reg.node_refcount(NodeId(1)), 1);
        assert_eq!(reg.subscriber_count(), 2);
        reg.remove(b).unwrap();
        assert_eq!(reg.node_refcount(NodeId(1)), 0);
        assert_eq!(reg.subscriber_count(), 1);
        assert!(!reg.contains(a));
        assert!(reg.contains(c));
    }

    #[test]
    fn handles_are_never_reused() {
        let mut reg = SubscriptionRegistry::new(2);
        let a = reg.insert(NodeId(0), rect(0.0, 1.0)).unwrap();
        reg.remove(a).unwrap();
        let b = reg.insert(NodeId(0), rect(0.0, 1.0)).unwrap();
        assert_ne!(a, b);
        assert!(matches!(
            reg.remove(a),
            Err(BrokerError::UnknownHandle { .. })
        ));
        assert!(reg.node(a).is_none() && reg.rect(a).is_none());
    }

    #[test]
    fn live_iterates_in_insertion_order() {
        let mut reg = SubscriptionRegistry::new(8);
        let handles: Vec<_> = (0..5)
            .map(|i| {
                reg.insert(NodeId(i), rect(f64::from(i), f64::from(i) + 1.0))
                    .unwrap()
            })
            .collect();
        reg.remove(handles[1]).unwrap();
        reg.remove(handles[3]).unwrap();
        let order: Vec<NodeId> = reg.live().map(|(_, n, _)| n).collect();
        assert_eq!(order, vec![NodeId(0), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut reg = SubscriptionRegistry::new(2);
        assert!(matches!(
            reg.insert(NodeId(2), rect(0.0, 1.0)),
            Err(BrokerError::UnknownNode { node: 2 })
        ));
        assert!(reg.is_empty());
    }
}
