//! Group-efficiency measures and adaptive per-group thresholds — the
//! paper's §6 future work, implemented.
//!
//! The paper closes with: *"It would be nice to have some theoretical and
//! practical measures which could help determine how efficient a
//! multicast group has to be in order to actually employ it. … The
//! question is where to draw the line on this. We leave this for future
//! work."*
//!
//! This module draws the line. Observe that for a group `q`:
//!
//! * one multicast to `M_q` costs a (per-group) constant `m_q` — the
//!   dense-mode tree (or ALM overlay) spanning the whole group;
//! * unicasting the interested set `s` costs about `|s| · ū_q`, where
//!   `ū_q` is the group's average per-receiver unicast cost.
//!
//! Multicast wins exactly when `|s| > m_q / ū_q`, i.e. at the interest
//! ratio `t*_q = m_q / (ū_q · |M_q|)`. [`EfficiencyTracker`] estimates
//! `ū_q` (and the realized waste) from published traffic;
//! [`AdaptiveController`] turns the estimates into per-group threshold
//! overrides on the broker's [`crate::DistributionPolicy`].

use serde::{Deserialize, Serialize};

use crate::{Broker, BrokerError, Decision, PublishOutcome};

/// Accumulated per-group observations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
struct GroupObservation {
    /// Messages whose event fell in this group's region.
    hits: u64,
    /// Of those, how many were multicast.
    multicasts: u64,
    /// Sum of `|s|` over hits.
    interested_sum: u64,
    /// Sum of unicast costs over hits (what unicasting `s` costs).
    unicast_cost_sum: f64,
    /// Realized wasted deliveries from this group's multicasts.
    wasted: u64,
}

/// A per-group efficiency summary (the §6 "practical measures").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupEfficiency {
    /// Group index `q`.
    pub group: usize,
    /// `|M_q|`.
    pub size: usize,
    /// Messages that fell in `S_q`.
    pub hits: u64,
    /// Of those, how many were multicast.
    pub multicasts: u64,
    /// Mean interest ratio `|s|/|M_q|` over hits.
    pub avg_interest_ratio: f64,
    /// Mean per-receiver unicast cost `ū_q` observed for this group.
    pub avg_unicast_cost_per_receiver: f64,
    /// One multicast to the full group costs this much (`m_q`).
    pub group_multicast_cost: f64,
    /// The estimated break-even interest ratio `t*_q = m_q/(ū_q·|M_q|)`,
    /// clamped to `[0, 1]`. Below this ratio unicast is cheaper.
    pub break_even_ratio: f64,
    /// Realized wasted deliveries from this group's multicasts.
    pub wasted_deliveries: u64,
}

/// Observes publish outcomes and aggregates per-group efficiency
/// statistics.
///
/// # Example
///
/// ```no_run
/// # use pubsub_core::{Broker, EfficiencyTracker};
/// # fn demo(broker: &mut Broker, events: &[pubsub_geom::Point]) {
/// let mut tracker = EfficiencyTracker::new(broker.groups().len());
/// for e in events {
///     let outcome = broker.publish(e).unwrap();
///     tracker.observe(&outcome);
/// }
/// for g in tracker.summarize(broker) {
///     println!("group {}: break-even ratio {:.2}", g.group, g.break_even_ratio);
/// }
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyTracker {
    groups: Vec<GroupObservation>,
    /// `|M_q|` per group, used to derive realized waste from multicast
    /// decisions; zeros when constructed without a broker.
    sizes: Vec<usize>,
}

impl EfficiencyTracker {
    /// Creates a tracker for `groups` multicast groups (group sizes
    /// unknown, so realized waste is not derived; prefer
    /// [`EfficiencyTracker::for_broker`]).
    pub fn new(groups: usize) -> Self {
        EfficiencyTracker {
            groups: vec![GroupObservation::default(); groups],
            sizes: vec![0; groups],
        }
    }

    /// Creates a tracker sized for a broker's groups.
    pub fn for_broker(broker: &Broker) -> Self {
        EfficiencyTracker {
            groups: vec![GroupObservation::default(); broker.groups().len()],
            sizes: broker.groups().sizes(),
        }
    }

    /// Number of tracked groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Folds one outcome into the statistics (events in `S_0` are
    /// ignored — there is no group to attribute them to).
    pub fn observe(&mut self, outcome: &PublishOutcome) {
        let Some(q) = outcome.group_region else {
            return;
        };
        let Some(obs) = self.groups.get_mut(q) else {
            return;
        };
        obs.hits += 1;
        obs.interested_sum += outcome.interested.len() as u64;
        obs.unicast_cost_sum += outcome.costs.unicast;
        if let Decision::Multicast { .. } = outcome.decision {
            obs.multicasts += 1;
            obs.wasted += self.sizes[q].saturating_sub(outcome.interested.len()) as u64;
        }
    }

    /// Total observed messages attributed to any group.
    pub fn observed(&self) -> u64 {
        self.groups.iter().map(|g| g.hits).sum()
    }

    /// Produces the per-group summaries, pricing each group's full
    /// multicast against the broker's cost model.
    pub fn summarize(&self, broker: &Broker) -> Vec<GroupEfficiency> {
        self.groups
            .iter()
            .enumerate()
            .map(|(q, obs)| {
                let size = broker.groups().members(q).len();
                let m_q = broker.group_multicast_cost(q);
                let avg_interested = if obs.hits > 0 {
                    obs.interested_sum as f64 / obs.hits as f64
                } else {
                    0.0
                };
                let u_q = if obs.interested_sum > 0 {
                    obs.unicast_cost_sum / obs.interested_sum as f64
                } else {
                    0.0
                };
                let break_even = if u_q > 0.0 && size > 0 {
                    (m_q / (u_q * size as f64)).clamp(0.0, 1.0)
                } else {
                    // No observations: no basis to deviate from default.
                    0.0
                };
                GroupEfficiency {
                    group: q,
                    size,
                    hits: obs.hits,
                    multicasts: obs.multicasts,
                    avg_interest_ratio: if size > 0 {
                        avg_interested / size as f64
                    } else {
                        0.0
                    },
                    avg_unicast_cost_per_receiver: u_q,
                    group_multicast_cost: m_q,
                    break_even_ratio: break_even,
                    wasted_deliveries: obs.wasted,
                }
            })
            .collect()
    }
}

/// Configuration of the adaptive controller. Passive data: public fields.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Minimum observations a group needs before its threshold is
    /// adapted (groups below this keep the global threshold).
    pub min_hits: u64,
    /// Safety margin multiplied onto the break-even ratio; `1.0` sets the
    /// threshold exactly at break-even, values above bias toward unicast.
    pub margin: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_hits: 30,
            margin: 1.0,
        }
    }
}

/// Learns per-group thresholds from observed traffic and installs them on
/// the broker's policy — answering §6's "where to draw the line".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    tracker: EfficiencyTracker,
    config: AdaptiveConfig,
}

impl AdaptiveController {
    /// Creates a controller for a broker's group count.
    pub fn new(groups: usize, config: AdaptiveConfig) -> Self {
        AdaptiveController {
            tracker: EfficiencyTracker::new(groups),
            config,
        }
    }

    /// Creates a controller sized for a broker (tracks realized waste).
    pub fn for_broker(broker: &Broker, config: AdaptiveConfig) -> Self {
        AdaptiveController {
            tracker: EfficiencyTracker::for_broker(broker),
            config,
        }
    }

    /// Observes one outcome (delegates to the tracker).
    pub fn observe(&mut self, outcome: &PublishOutcome) {
        self.tracker.observe(outcome);
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &EfficiencyTracker {
        &self.tracker
    }

    /// Computes the suggested per-group thresholds: the break-even
    /// interest ratio times the safety margin for groups with enough
    /// observations, `None` (keep global) otherwise.
    pub fn suggest(&self, broker: &Broker) -> Vec<Option<f64>> {
        self.tracker
            .summarize(broker)
            .into_iter()
            .map(|g| {
                if g.hits >= self.config.min_hits && g.break_even_ratio > 0.0 {
                    Some((g.break_even_ratio * self.config.margin).clamp(0.0, 1.0))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Installs the suggested thresholds on the broker's policy.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors (cannot occur: suggestions
    /// are clamped into `[0, 1]`).
    pub fn apply(&self, broker: &mut Broker) -> Result<usize, BrokerError> {
        let suggestions = self.suggest(broker);
        let mut applied = 0;
        for (q, t) in suggestions.into_iter().enumerate() {
            if let Some(t) = t {
                broker.policy_mut().set_group_threshold(q, t)?;
                applied += 1;
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, MessageCosts, SubscriptionId, UnicastReason};
    use pubsub_netsim::NodeId;

    fn outcome(
        group: Option<usize>,
        interested: usize,
        unicast_cost: f64,
        multicast: bool,
    ) -> PublishOutcome {
        PublishOutcome {
            decision: if multicast {
                Decision::Multicast {
                    group: group.unwrap_or(0),
                }
            } else if interested == 0 {
                Decision::Drop
            } else {
                Decision::Unicast {
                    reason: UnicastReason::BelowThreshold,
                }
            },
            group_region: group,
            matched_subscriptions: (0..interested as u32).map(SubscriptionId).collect(),
            interested: (0..interested as u32).map(NodeId).collect(),
            unreachable: Vec::new(),
            costs: MessageCosts {
                scheme: 0.0,
                unicast: unicast_cost,
                ideal: 0.0,
            },
        }
    }

    #[test]
    fn tracker_attributes_hits_to_regions() {
        let mut t = EfficiencyTracker::new(3);
        t.observe(&outcome(Some(1), 4, 40.0, true));
        t.observe(&outcome(Some(1), 2, 20.0, false));
        t.observe(&outcome(None, 5, 50.0, false)); // S0: ignored
        t.observe(&outcome(Some(99), 5, 50.0, false)); // out of range: ignored
        assert_eq!(t.observed(), 2);
        assert_eq!(t.group_count(), 3);
        let obs = &t.groups[1];
        assert_eq!(obs.hits, 2);
        assert_eq!(obs.multicasts, 1);
        assert_eq!(obs.interested_sum, 6);
        assert!((obs.unicast_cost_sum - 60.0).abs() < 1e-12);
    }

    #[test]
    fn controller_suggests_only_with_enough_data() {
        let mut c = AdaptiveController::new(
            2,
            AdaptiveConfig {
                min_hits: 5,
                margin: 1.0,
            },
        );
        for _ in 0..4 {
            c.observe(&outcome(Some(0), 3, 30.0, true));
        }
        // Group 0 has 4 < 5 hits; both groups must keep the default.
        // (suggest() needs a broker to price group multicasts; the
        // end-to-end path is covered by the integration tests — here we
        // check the tracker counts feeding the min_hits rule.)
        assert_eq!(c.tracker().observed(), 4);
        assert_eq!(c.tracker().group_count(), 2);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = AdaptiveConfig::default();
        assert!(cfg.min_hits > 0);
        assert!(cfg.margin > 0.0);
    }
}
