//! The pipeline-stage seam of the staged serving architecture.
//!
//! The serving front-end (crate `pubsub-server`) splits publishing into
//! three stages — transport-in (ingest), pipeline, transport-out
//! (egress) — decoupled by bounded queues. The middle stage is the
//! existing fused match → cost → decide pass; [`PublishStage`] re-exposes
//! it behind a trait so the same engine serves both the legacy
//! synchronous API (`Broker::publish_batch`, kept bit-identical) and the
//! async staged path, and so tests can interpose instrumented stages.
//!
//! A [`StagedBatch`] carries the engine **epoch the batch was actually
//! processed under** out of the stage. That stamp is the async-handoff
//! safety rail: when a recompile lands between ingest and match, the
//! batch that was queued first still processes first (the ingest queue is
//! ordered) and its outcomes are stamped with the pre-recompile epoch,
//! while the epoch-keyed scheme-cost memo self-invalidates on the bump —
//! there is no window where a stale memo row can serve a new-epoch batch
//! or vice versa. The regression test `serving_churn.rs` pins this down.

use pubsub_geom::Point;

use crate::{Broker, BrokerError, PublishOutcome};

/// Which serving stage a latency sample belongs to; see
/// [`Broker::note_stage_latency`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// Transport-in: submission → dequeue by the pipeline stage
    /// (per-event queueing delay in the ingest queue). The sum of
    /// [`StageKind::Batcher`] and [`StageKind::QueueWait`], kept whole
    /// for cross-version comparability.
    Ingest,
    /// Transport-in split: submission → shard-batcher flush (per-event
    /// residency under the size-or-deadline trigger).
    Batcher,
    /// Transport-in split: batcher flush → dequeue by a pipeline
    /// executor (per-event wait in the bounded ingest queue).
    QueueWait,
    /// The fused match → cost → decide pass plus the in-order fold
    /// (per-batch).
    Pipeline,
    /// Transport-out: delivery fan-out and record stamping (per-batch).
    Egress,
}

/// The result of pushing one batch through a [`PublishStage`]: the
/// per-event outcomes plus the engine epoch they were computed under.
#[derive(Clone, PartialEq, Debug)]
pub struct StagedBatch {
    /// Per-event outcomes, in submission order — bit-identical to what
    /// the synchronous [`Broker::publish_batch`] would have returned for
    /// the same events at the same engine state.
    pub outcomes: Vec<PublishOutcome>,
    /// The engine-snapshot epoch the batch was processed under. Egress
    /// stamps this into every delivery record, so a consumer can tell
    /// exactly which compile served each event when churn and publishing
    /// interleave.
    pub epoch: u64,
}

/// The pipeline stage of the staged serving path: consumes one batch of
/// events, produces in-order outcomes stamped with the processing epoch.
///
/// Implemented by [`Broker`] (delegating to the fused batch pipeline, so
/// async and synchronous callers run byte-for-byte the same engine) and
/// by test doubles that wrap a broker to inject delays or extra
/// bookkeeping between stages.
pub trait PublishStage {
    /// Processes one batch with up to `threads` pipeline workers
    /// (`None` = available parallelism).
    ///
    /// # Errors
    ///
    /// Whatever the underlying engine rejects — for [`Broker`] this is
    /// [`BrokerError::DimensionMismatch`] on a malformed event (the
    /// whole batch rejects before anything records) or a fault-plan
    /// abort; see [`Broker::publish_batch`].
    fn process_batch(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Result<StagedBatch, BrokerError>;

    /// The engine epoch a batch submitted *now* would process under.
    /// Advisory (the answer may be stale by the time the batch runs);
    /// the authoritative stamp is [`StagedBatch::epoch`].
    fn current_epoch(&self) -> u64;
}

impl PublishStage for Broker {
    fn process_batch(
        &mut self,
        events: &[Point],
        threads: Option<usize>,
    ) -> Result<StagedBatch, BrokerError> {
        let outcomes = self.publish_batch(events, threads)?;
        Ok(StagedBatch {
            outcomes,
            // publish_batch never swaps the snapshot, so this is the
            // epoch the whole batch was matched and costed under.
            epoch: self.epoch(),
        })
    }

    fn current_epoch(&self) -> u64 {
        self.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_clustering::{ClusteringAlgorithm, ClusteringConfig};
    use pubsub_geom::{Rect, Space};
    use pubsub_netsim::TransitStubConfig;

    fn tiny_broker() -> Broker {
        let topo = TransitStubConfig::tiny().generate(5).expect("tiny topo");
        let space = Space::anonymous(Rect::from_corners(&[0.0, 0.0], &[10.0, 10.0]).expect("rect"))
            .expect("space");
        let nodes = topo.stub_nodes().to_vec();
        Broker::builder(topo, space)
            .subscription(
                nodes[0],
                Rect::from_corners(&[0.0, 0.0], &[5.0, 5.0]).expect("rect"),
            )
            .subscription(
                nodes[1 % nodes.len()],
                Rect::from_corners(&[2.0, 2.0], &[8.0, 8.0]).expect("rect"),
            )
            .clustering(ClusteringConfig::new(ClusteringAlgorithm::ForgyKMeans, 2))
            .threshold(0.15)
            .build()
            .expect("broker")
    }

    #[test]
    fn stage_matches_synchronous_batch() {
        let mut staged = tiny_broker();
        let mut sync = tiny_broker();
        let events: Vec<Point> = (0..10)
            .map(|i| Point::new(vec![i as f64, (10 - i) as f64]).expect("point"))
            .collect();
        let batch = staged.process_batch(&events, Some(2)).expect("staged");
        let reference = sync.publish_batch(&events, Some(1)).expect("sync");
        assert_eq!(batch.outcomes, reference);
        assert_eq!(batch.epoch, sync.epoch());
        assert_eq!(staged.current_epoch(), batch.epoch);
        // The cumulative reports advanced identically too.
        assert_eq!(staged.report(), sync.report());
    }

    #[test]
    fn stage_epoch_tracks_recompile() {
        let mut broker = tiny_broker();
        let events = [Point::new(vec![3.0, 3.0]).expect("point")];
        let before = broker.process_batch(&events, None).expect("batch");
        broker.recompile().expect("recompile");
        let after = broker.process_batch(&events, None).expect("batch");
        assert!(after.epoch > before.epoch);
    }
}
