//! Named-attribute event construction.
//!
//! Publishers think in attributes (`price = 78.25`), not coordinate
//! vectors. [`EventBuilder`] assembles a [`Point`] against a [`Space`],
//! catching misspelled, missing and duplicate attributes at build time.

use std::collections::BTreeMap;

use pubsub_geom::{Point, Space};

use crate::BrokerError;

/// Builds an event point from named attribute values.
///
/// # Example
///
/// ```
/// use pubsub_core::EventBuilder;
/// use pubsub_geom::{Rect, Space};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = Space::new(
///     vec!["price".into(), "volume".into()],
///     Rect::from_corners(&[0.0, 0.0], &[100.0, 1e6])?,
/// )?;
/// let event = EventBuilder::new(&space)
///     .set("volume", 1500.0)?
///     .set("price", 78.25)?
///     .build()?;
/// assert_eq!(event.as_slice(), &[78.25, 1500.0]); // space order
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventBuilder<'a> {
    space: &'a Space,
    values: BTreeMap<usize, f64>,
}

impl<'a> EventBuilder<'a> {
    /// Starts building an event for `space`.
    pub fn new(space: &'a Space) -> Self {
        EventBuilder {
            space,
            values: BTreeMap::new(),
        }
    }

    /// Sets one attribute.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::InvalidConfig`] for an unknown attribute name or
    ///   a repeated attribute;
    /// * [`BrokerError::Geom`] for a non-finite value.
    pub fn set(mut self, attribute: &str, value: f64) -> Result<Self, BrokerError> {
        let d = self
            .space
            .dim_of(attribute)
            .ok_or(BrokerError::InvalidConfig {
                parameter: "attribute",
                constraint: "attribute must exist in the space",
            })?;
        if !value.is_finite() {
            return Err(BrokerError::Geom(pubsub_geom::GeomError::NotANumber));
        }
        if self.values.insert(d, value).is_some() {
            return Err(BrokerError::InvalidConfig {
                parameter: "attribute",
                constraint: "each attribute set at most once",
            });
        }
        Ok(self)
    }

    /// Finishes the event; every attribute of the space must be set.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DimensionMismatch`] if any attribute is
    /// missing (`expected` is the space dimensionality, `got` the number
    /// of attributes provided).
    pub fn build(self) -> Result<Point, BrokerError> {
        if self.values.len() != self.space.dims() {
            return Err(BrokerError::DimensionMismatch {
                expected: self.space.dims(),
                got: self.values.len(),
            });
        }
        // BTreeMap iterates keys (dimension indices) in order.
        Ok(Point::new(self.values.into_values().collect())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_geom::Rect;

    fn space() -> Space {
        Space::new(
            vec!["a".into(), "b".into(), "c".into()],
            Rect::from_corners(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn builds_in_space_order_regardless_of_set_order() {
        let s = space();
        let p = EventBuilder::new(&s)
            .set("c", 3.0)
            .unwrap()
            .set("a", 1.0)
            .unwrap()
            .set("b", 2.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(p.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_unknown_missing_duplicate_and_nonfinite() {
        let s = space();
        assert!(matches!(
            EventBuilder::new(&s).set("nope", 0.0),
            Err(BrokerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            EventBuilder::new(&s).set("a", 1.0).unwrap().build(),
            Err(BrokerError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            EventBuilder::new(&s).set("a", 1.0).unwrap().set("a", 2.0),
            Err(BrokerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            EventBuilder::new(&s).set("a", f64::NAN),
            Err(BrokerError::Geom(_))
        ));
        assert!(matches!(
            EventBuilder::new(&s).set("a", f64::INFINITY),
            Err(BrokerError::Geom(_))
        ));
    }
}
